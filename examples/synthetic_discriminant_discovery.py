"""Compare CAM, cCAM, dCAM and MTEX-grad on Type 1 and Type 2 benchmarks.

This example reproduces the core comparison of the paper (Section 5.4) at a
small scale: on *Type 1* data the discriminant patterns live in single
dimensions (so even cCAM does well), while on *Type 2* data the discriminant
factor is the temporal alignment of patterns across two dimensions — which
only dCAM can localise, because only the d-architectures compare dimensions.

Run with::

    python examples/synthetic_discriminant_discovery.py
"""

from __future__ import annotations

import numpy as np

from repro.data import SyntheticConfig, make_dataset
from repro.eval import dr_acc, random_baseline_dr_acc
from repro.explain import get_explainer
from repro.models import TrainingConfig, create_model

ARCHITECTURES = {
    "ResNet (CAM)": ("resnet", {"filters": (8, 16, 16)}),
    "cCNN (cCAM)": ("ccnn", {"filters": (8, 16, 16)}),
    "MTEX-CNN (grad-CAM)": ("mtex", {"block1_filters": (4, 8), "block2_filters": 8,
                                     "hidden_units": 16}),
    "dCNN (dCAM)": ("dcnn", {"filters": (8, 16, 16)}),
}

TRAINING = TrainingConfig(epochs=35, batch_size=8, learning_rate=3e-3, random_state=0)


def explanation_of(model, series, class_id):
    """One heatmap via the explainer registry — no per-family dispatch here."""
    explainer = get_explainer(model, k=24, rng=np.random.default_rng(0))
    return explainer.explain(series, class_id).heatmap


def evaluate(dataset_type: int) -> None:
    config = SyntheticConfig(seed_name="starlight", n_dimensions=6,
                             n_instances_per_class=20, series_length=64,
                             seed_instance_length=32, pattern_length=16,
                             random_state=7)
    train = make_dataset(dataset_type, config)
    test = make_dataset(dataset_type, SyntheticConfig(**{**config.__dict__,
                                                         "random_state": 77,
                                                         "n_instances_per_class": 6}))
    print(f"\n=== Type {dataset_type} dataset "
          f"({'different' if dataset_type == 1 else 'same'}-timestamp injections) ===")
    explained = [i for i in range(len(test)) if test.y[i] == 1][:4]
    baseline = np.mean([random_baseline_dr_acc(test.ground_truth[i]) for i in explained])
    print(f"{'architecture':24s} {'C-acc':>6s} {'Dr-acc':>7s}   (random baseline {baseline:.3f})")
    for label, (name, kwargs) in ARCHITECTURES.items():
        model = create_model(name, train.n_dimensions, train.length, train.n_classes,
                             rng=np.random.default_rng(0), **kwargs)
        model.fit(train.X, train.y, config=TRAINING)
        c_acc = model.score(test.X, test.y)
        scores = [dr_acc(explanation_of(model, test.X[i], 1), test.ground_truth[i])
                  for i in explained]
        print(f"{label:24s} {c_acc:6.2f} {np.mean(scores):7.3f}")


def main() -> None:
    for dataset_type in (1, 2):
        evaluate(dataset_type)


if __name__ == "__main__":
    main()
