"""Compare architecture families on (simulated) UEA classification datasets.

A small-scale version of the paper's Table 2: train recurrent, convolutional,
c- and d-architectures on a few simulated UEA datasets and compare their
classification accuracy and average rank.  The (dataset, model, run) cells
are independent work units, so the sweep fans out over a process pool when
asked to — with numbers identical to the serial run.

Run with::

    python examples/uea_classification.py [--workers 4]
"""

from __future__ import annotations

import argparse

from repro.experiments import get_scale, run_table2
from repro.runtime import make_executor


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (>1 enables the parallel executor)")
    args = parser.parse_args()

    scale = get_scale("tiny", random_state=0).with_overrides(
        table2_models=("gru", "cnn", "resnet", "ccnn", "cresnet", "dcnn", "dresnet"),
    )
    result = run_table2(scale, dataset_names=["BasicMotions", "RacketSports",
                                              "PenDigits", "Epilepsy"],
                        executor=make_executor(args.workers))
    print(result.format())
    print("\nInterpretation: the d-architectures should be competitive with the")
    print("plain architectures and better than the c-architectures, while also")
    print("being the only family that supports the dimension-wise dCAM explanation.")


if __name__ == "__main__":
    main()
