"""Compare architecture families on (simulated) UEA classification datasets.

A small-scale version of the paper's Table 2: train recurrent, convolutional,
c- and d-architectures on a few simulated UEA datasets and compare their
classification accuracy and average rank.

Run with::

    python examples/uea_classification.py
"""

from __future__ import annotations

from repro.experiments import get_scale, run_table2


def main() -> None:
    scale = get_scale("tiny", random_state=0).with_overrides(
        table2_models=("gru", "cnn", "resnet", "ccnn", "cresnet", "dcnn", "dresnet"),
    )
    result = run_table2(scale, dataset_names=["BasicMotions", "RacketSports",
                                              "PenDigits", "Epilepsy"])
    print(result.format())
    print("\nInterpretation: the d-architectures should be competitive with the")
    print("plain architectures and better than the c-architectures, while also")
    print("being the only family that supports the dimension-wise dCAM explanation.")


if __name__ == "__main__":
    main()
