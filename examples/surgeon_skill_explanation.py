"""Surgeon-skill use case: which sensors, during which gestures, mark a novice?

Reproduces the paper's Section 5.8 use case on the simulated JIGSAWS suturing
dataset: a dCNN is trained to classify surgeon skill (novice / intermediate /
expert) from 76 kinematic sensors, then dCAM is computed for every novice
instance and aggregated into global statistics per sensor and per gesture.

Run with::

    python examples/surgeon_skill_explanation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    compute_dcam,
    mean_activation_per_segment,
    top_discriminant_dimensions,
    top_discriminant_segments,
)
from repro.data import JigsawsConfig, make_jigsaws_dataset, train_validation_split
from repro.models import DCNNClassifier, TrainingConfig


def main() -> None:
    dataset = make_jigsaws_dataset(JigsawsConfig(n_novice=8, n_intermediate=5,
                                                 n_expert=5, gesture_length=8,
                                                 random_state=3)).znormalize()
    print(dataset.summary())
    train, test = train_validation_split(dataset, 0.75, random_state=0)

    model = DCNNClassifier(dataset.n_dimensions, dataset.length, dataset.n_classes,
                           filters=(8, 16), rng=np.random.default_rng(0))
    model.fit(train.X, train.y, validation_data=(test.X, test.y),
              config=TrainingConfig(epochs=15, batch_size=4, learning_rate=2e-3,
                                    random_state=0))
    print(f"train C-acc = {model.score(train.X, train.y):.2f}   "
          f"test C-acc = {model.score(test.X, test.y):.2f}")

    # dCAM for every novice-class instance (class 0).
    novice = [i for i in range(len(dataset)) if dataset.y[i] == 0]
    segments = dataset.metadata["gesture_segments"]
    results, novice_segments = [], []
    rng = np.random.default_rng(1)
    for index in novice:
        results.append(compute_dcam(model, dataset.X[index], class_id=0, k=16, rng=rng))
        novice_segments.append(segments[index])

    names = dataset.dim_names
    top_sensors = top_discriminant_dimensions(results, top_k=6)
    print("\nTop discriminant sensors (Figure 13(c)):")
    for sensor in top_sensors:
        print(f"  {names[sensor]}")

    top_gestures = top_discriminant_segments(results, novice_segments, top_k=3)
    print("\nTop discriminant gestures (Figure 13(d)):")
    for gesture, score in top_gestures:
        print(f"  {gesture}: mean activation {score:.3f}")

    per_gesture = mean_activation_per_segment(results, novice_segments)
    print("\nMost activated sensor per discriminant gesture:")
    for gesture, _ in top_gestures:
        best = int(np.argmax(per_gesture[gesture]))
        print(f"  {gesture}: {names[best]}")

    planted_gestures = dataset.metadata["discriminant_gestures"]
    planted_sensors = set(dataset.metadata["discriminant_sensors"])
    recovered = [g for g, _ in top_gestures if g in planted_gestures]
    print(f"\nPlanted discriminant gestures: {planted_gestures}  "
          f"(recovered {len(recovered)}/{len(top_gestures)} in the top gestures)")
    print(f"Planted sensors recovered in top sensors: "
          f"{len([s for s in top_sensors if s in planted_sensors])}/{len(top_sensors)}")


if __name__ == "__main__":
    main()
