"""Quickstart: train a dCNN and explain a classification with dCAM.

This example builds a small synthetic multivariate dataset in which class 2
differs from class 1 only by two patterns injected into two random dimensions,
trains a dCNN classifier, and uses dCAM to find which dimensions and which
time windows drove the decision.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import compute_dcam
from repro.data import SyntheticConfig, make_type1_dataset
from repro.eval import dr_acc, random_baseline_dr_acc
from repro.models import DCNNClassifier, TrainingConfig


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build a synthetic dataset with known discriminant features.
    # ------------------------------------------------------------------
    config = SyntheticConfig(seed_name="starlight", n_dimensions=5,
                             n_instances_per_class=20, series_length=64,
                             seed_instance_length=32, pattern_length=16,
                             random_state=5)
    dataset = make_type1_dataset(config)
    print(dataset.summary())

    # ------------------------------------------------------------------
    # 2. Train a dCNN (the paper's cube-input architecture).
    # ------------------------------------------------------------------
    model = DCNNClassifier(dataset.n_dimensions, dataset.length, dataset.n_classes,
                           filters=(8, 16, 16), rng=np.random.default_rng(0))
    history = model.fit(dataset.X, dataset.y,
                        config=TrainingConfig(epochs=25, batch_size=8,
                                              learning_rate=3e-3, random_state=0))
    print(f"trained for {history.epochs_run} epochs, "
          f"training accuracy = {model.score(dataset.X, dataset.y):.2f}")

    # ------------------------------------------------------------------
    # 3. Explain one instance of the injected class with dCAM.
    # ------------------------------------------------------------------
    index = int(np.flatnonzero(dataset.y == 1)[-1])
    series = dataset.X[index]
    result = compute_dcam(model, series, class_id=1, k=32,
                          rng=np.random.default_rng(1))
    print(f"dCAM shape: {result.dcam.shape}  (dimensions x time)")
    print(f"permutation success ratio n_g/k = {result.success_ratio:.2f} "
          "(label-free proxy of explanation quality)")

    # Which dimension / time window does dCAM point to?
    flat_index = int(np.argmax(result.dcam))
    dimension, timestamp = np.unravel_index(flat_index, result.dcam.shape)
    print(f"strongest activation: dimension {dimension}, around timestamp {timestamp}")

    truth = dataset.ground_truth[index]
    injected_dims = np.flatnonzero(truth.sum(axis=1) > 0)
    print(f"ground truth: patterns injected into dimensions {injected_dims.tolist()}")

    score = dr_acc(result.dcam, truth)
    baseline = random_baseline_dr_acc(truth)
    print(f"Dr-acc (PR-AUC) of dCAM = {score:.3f}  vs random baseline = {baseline:.3f}")


if __name__ == "__main__":
    main()
