#!/usr/bin/env python
"""Verify that relative markdown links in README and docs/ resolve.

Scans ``README.md``, ``ROADMAP.md`` and every ``docs/*.md`` for inline
markdown links (``[text](target)``), skips external URLs and pure anchors,
and checks that each relative target exists on disk (fragments stripped).
Exits non-zero listing every dead link — wired into CI so the docs tree
cannot silently rot as files move.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Tuple

REPO = Path(__file__).resolve().parent.parent

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _candidates() -> List[Path]:
    files = [REPO / "README.md", REPO / "ROADMAP.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def _dead_links(path: Path) -> List[Tuple[int, str]]:
    dead = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                dead.append((lineno, target))
    return dead


def main() -> int:
    failures = 0
    checked = 0
    for path in _candidates():
        checked += 1
        for lineno, target in _dead_links(path):
            print(f"error: {path.relative_to(REPO)}:{lineno}: dead link {target!r}")
            failures += 1
    if failures:
        return 1
    print(f"checked {checked} markdown files; all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
