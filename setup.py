"""Setup shim for environments without network access.

The project metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` keeps working with the legacy (non-PEP-517) code path in
fully offline environments where pip cannot create an isolated build
environment.
"""

from setuptools import setup

setup()
