"""Tests of adaptive serving: batch policies, per-group flush workers,
admission control / load-shedding, and graceful shutdown.

The load-bearing guarantees pinned here:

* the adaptive policy walks its flush bounds with hysteresis and respects
  the hard clamps, and neither policy ever changes response bytes (adaptive
  == serial byte parity under real concurrency);
* per-(model, kind) flush workers: one group's slow flush cannot stall
  another group's traffic (deterministic, event-controlled);
* bounded queues: submits over the in-flight watermark fail fast with
  :class:`QueueFullError`, and over HTTP a saturated ``/explain`` sheds with
  429 + ``Retry-After`` while ``/classify`` and ``/healthz`` stay live;
* shutdown: requests racing ``close()`` either complete or fail fast with a
  clear error — no future ever hangs.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import Future, ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve import (
    AdaptiveBatchPolicy,
    ExplanationCache,
    ExplanationService,
    MicroBatcher,
    ModelArtifactStore,
    QueueFullError,
    ServeConfig,
    StaticBatchPolicy,
    probe_batch_parity,
    serve_in_background,
)
from repro.serve.batcher import group_key_of


@pytest.fixture(scope="module")
def adaptive_store(tmp_path_factory, trained_ccnn, trained_dcnn):
    store = ModelArtifactStore(str(tmp_path_factory.mktemp("adaptive-store")))
    specs = {"ccnn": {"filters": (8, 16)}, "dcnn": {"filters": (8, 16)}}
    for model_name, model in (("ccnn", trained_ccnn), ("dcnn", trained_dcnn)):
        parity = probe_batch_parity(model)
        store.register(f"{model_name}-a", model, model_name=model_name,
                       metadata={"model_kwargs": dict(specs[model_name]),
                                 "batch_parity": parity.to_json()})
    return store


def make_service(store, **config_kwargs):
    return ExplanationService(store, cache=ExplanationCache(max_memory_bytes=None),
                              config=ServeConfig(**config_kwargs))


# ---------------------------------------------------------------------------
# Batch policies
# ---------------------------------------------------------------------------

class TestStaticPolicy:
    def test_constant_decision(self):
        policy = StaticBatchPolicy(max_batch_size=8, max_wait_ms=2.0)
        first = policy.decision(("m", "classify"))
        policy.observe(("m", "classify"), batch_size=8, flush_seconds=10.0,
                       queue_depth=10_000)
        assert policy.decision(("m", "classify")) == first
        assert first.max_batch_size == 8
        assert first.max_wait_s == pytest.approx(0.002)


class TestAdaptivePolicy:
    def make_policy(self, **kwargs):
        defaults = dict(initial_batch_size=8, min_batch_size=1, max_batch_size=64,
                        initial_wait_ms=2.0, min_wait_ms=0.0, max_wait_ms=8.0,
                        latency_budget_ms=0.0, hysteresis=3, ewma_alpha=1.0)
        defaults.update(kwargs)
        return AdaptiveBatchPolicy(**defaults)

    def test_grows_under_sustained_backlog_with_hysteresis(self):
        policy = self.make_policy()
        key = ("m", "classify")
        # Two backlogged observations: not enough (hysteresis = 3).
        for _ in range(2):
            policy.observe(key, batch_size=8, flush_seconds=0.001, queue_depth=50)
        assert policy.decision(key).max_batch_size == 8
        # The third consecutive signal trips the step.
        policy.observe(key, batch_size=8, flush_seconds=0.001, queue_depth=50)
        assert policy.decision(key).max_batch_size == 16
        # Under backlog the wait bound collapses to the minimum.
        assert policy.decision(key).max_wait_s == 0.0

    def test_interrupted_streak_does_not_step(self):
        policy = self.make_policy()
        key = ("m", "classify")
        policy.observe(key, batch_size=8, flush_seconds=0.001, queue_depth=50)
        policy.observe(key, batch_size=8, flush_seconds=0.001, queue_depth=50)
        # An idle observation breaks the grow streak.
        policy.observe(key, batch_size=8, flush_seconds=0.001, queue_depth=0)
        policy.observe(key, batch_size=8, flush_seconds=0.001, queue_depth=50)
        policy.observe(key, batch_size=8, flush_seconds=0.001, queue_depth=50)
        assert policy.decision(key).max_batch_size == 8

    def test_growth_respects_hard_bound(self):
        policy = self.make_policy(max_batch_size=16)
        key = ("m", "explain")
        for _ in range(30):
            policy.observe(key, batch_size=8, flush_seconds=0.001, queue_depth=1000)
        assert policy.decision(key).max_batch_size == 16

    def test_shrinks_when_idle_and_respects_floor(self):
        policy = self.make_policy(min_batch_size=2)
        key = ("m", "classify")
        for _ in range(40):
            policy.observe(key, batch_size=1, flush_seconds=0.001, queue_depth=0)
        decision = policy.decision(key)
        assert decision.max_batch_size == 2
        # Idle relaxes the wait back to the initial bound.
        assert decision.max_wait_s == pytest.approx(0.002)

    def test_latency_budget_shrinks_even_under_backlog(self):
        policy = self.make_policy(latency_budget_ms=10.0)
        key = ("m", "explain")
        # Deep queue but each flush blows the latency budget: the bound on
        # tail latency must win over goodput greed.
        for _ in range(6):
            policy.observe(key, batch_size=8, flush_seconds=0.5, queue_depth=1000)
        assert policy.decision(key).max_batch_size < 8

    def test_queue_time_over_budget_grows_despite_shallow_queue(self):
        # Flushes are fast but requests sit in the queue far past the budget:
        # the *end-to-end* latency signal must drive the batch size up so the
        # backlog drains, even though the instantaneous queue looks shallow.
        policy = self.make_policy(latency_budget_ms=10.0)
        key = ("m", "explain")
        for _ in range(3):
            policy.observe(key, batch_size=2, flush_seconds=0.002, queue_depth=2,
                           queue_seconds=0.050)
        assert policy.decision(key).max_batch_size == 16

    def test_shallow_queue_without_queue_time_does_not_grow(self):
        # Control for the test above: the same observations minus the
        # queueing time are an idle signal, not a grow signal.
        policy = self.make_policy(latency_budget_ms=10.0)
        key = ("m", "explain")
        for _ in range(3):
            policy.observe(key, batch_size=2, flush_seconds=0.002, queue_depth=2)
        assert policy.decision(key).max_batch_size <= 8

    def test_flush_over_budget_still_shrinks_despite_queue_pressure(self):
        # When the flush itself blows the budget, growing would make latency
        # worse — the shrink signal wins over any queueing pressure.
        policy = self.make_policy(latency_budget_ms=10.0)
        key = ("m", "explain")
        for _ in range(6):
            policy.observe(key, batch_size=8, flush_seconds=0.5, queue_depth=1000,
                           queue_seconds=1.0)
        assert policy.decision(key).max_batch_size < 8

    def test_groups_are_independent(self):
        policy = self.make_policy()
        hot, cold = ("m", "classify"), ("m", "explain")
        for _ in range(6):
            policy.observe(hot, batch_size=8, flush_seconds=0.001, queue_depth=500)
        assert policy.decision(hot).max_batch_size > 8
        assert policy.decision(cold).max_batch_size == 8

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError, match="min_batch_size"):
            AdaptiveBatchPolicy(min_batch_size=0)
        with pytest.raises(ValueError, match="max_batch_size"):
            AdaptiveBatchPolicy(min_batch_size=8, max_batch_size=4)
        with pytest.raises(ValueError, match="ewma_alpha"):
            AdaptiveBatchPolicy(ewma_alpha=0.0)

    def test_policy_publishes_telemetry(self):
        policy = self.make_policy()
        key = ("m", "classify")
        for _ in range(3):
            policy.observe(key, batch_size=8, flush_seconds=0.001, queue_depth=50)
        snapshot = policy.telemetry.snapshot()
        assert snapshot["policy_grow_steps"] >= 1
        assert snapshot["policy_batch_size[m/classify]"] == 16


class TestCostAwarePolicy:
    """Queue pressure weighted by per-request cost (a dCAM explain's ``k``)."""

    def make_policy(self, **kwargs):
        defaults = dict(initial_batch_size=8, min_batch_size=1, max_batch_size=64,
                        initial_wait_ms=2.0, min_wait_ms=0.0, max_wait_ms=8.0,
                        latency_budget_ms=0.0, hysteresis=1, ewma_alpha=1.0)
        defaults.update(kwargs)
        return AdaptiveBatchPolicy(**defaults)

    def test_uniform_cost_reproduces_count_based_decisions(self):
        """cost == 1.0 everywhere must be indistinguishable from no cost info."""
        count_based = self.make_policy(hysteresis=2)
        cost_aware = self.make_policy(hysteresis=2)
        key = ("m", "explain")
        depths = [50, 50, 50, 0, 0, 0, 2, 7, 50, 0, 50, 50]
        for depth in depths:
            count_based.observe(key, batch_size=4, flush_seconds=0.001,
                                queue_depth=depth)
            cost_aware.observe(key, batch_size=4, flush_seconds=0.001,
                               queue_depth=depth, batch_cost=4.0,
                               queue_cost=float(depth))
            assert cost_aware.decision(key) == count_based.decision(key)

    def test_heavy_backlog_grows_despite_shallow_queue(self):
        """Four queued k=100 explains press as hard as 400 cheap ones."""
        policy = self.make_policy()
        key = ("m", "explain")
        # Count-based view: depth 4 at width 8 is neither backlogged nor idle.
        # With cost reporting, a smoothed per-request cost of 1.0 against a
        # queued cost of 400 yields an effective depth of 400 -> grow.
        policy.observe(key, batch_size=8, flush_seconds=0.001, queue_depth=4,
                       batch_cost=8.0, queue_cost=400.0)
        assert policy.decision(key).max_batch_size == 16

    def test_heavy_history_discounts_shallow_cheap_queue(self):
        """After heavy flushes, a few cheap stragglers read as idle, not load."""
        policy = self.make_policy(hysteresis=3)
        key = ("m", "explain")
        # Heavy steady state: per-request cost 100, queue holding 6 heavies
        # (effective depth 6 at width 8 -> neither signal).
        for _ in range(3):
            policy.observe(key, batch_size=8, flush_seconds=0.001, queue_depth=6,
                           batch_cost=800.0, queue_cost=600.0)
        assert policy.decision(key).max_batch_size == 8
        # Six cheap requests now queue: effective depth 6/100 -> idle, shrink.
        for _ in range(3):
            policy.observe(key, batch_size=8, flush_seconds=0.001, queue_depth=6,
                           batch_cost=800.0, queue_cost=6.0)
        assert policy.decision(key).max_batch_size == 4

    def test_batcher_reports_costs_to_policy(self):
        """submit(cost=...) flows through to observe as batch/queue cost."""
        observed = []

        class RecordingPolicy(StaticBatchPolicy):
            def observe(self, group_key, batch_size, flush_seconds, queue_depth,
                        batch_cost=None, queue_cost=None, queue_seconds=None):
                observed.append((batch_size, batch_cost, queue_cost))

        with MicroBatcher(lambda key, requests: requests,
                          policy=RecordingPolicy(max_batch_size=4, max_wait_ms=1.0)
                          ) as batcher:
            key = group_key_of("m", "explain")
            batcher.submit(key, "a", cost=100.0).result(timeout=5)
        assert observed
        total_batch = sum(entry[1] for entry in observed)
        assert total_batch == pytest.approx(100.0)
        for _, batch_cost, queue_cost in observed:
            assert batch_cost > 0
            assert queue_cost >= 0.0

    def test_non_positive_cost_rejected(self):
        with MicroBatcher(lambda key, requests: requests) as batcher:
            with pytest.raises(ValueError, match="cost"):
                batcher.submit("g", 1, cost=0.0)
            with pytest.raises(ValueError, match="cost"):
                batcher.submit("g", 1, cost=-3.0)


class TestServeConfigPolicy:
    def test_make_batch_policy_dispatch(self):
        assert isinstance(ServeConfig().make_batch_policy(), StaticBatchPolicy)
        adaptive = ServeConfig(batch_policy="adaptive").make_batch_policy()
        assert isinstance(adaptive, AdaptiveBatchPolicy)
        with pytest.raises(ValueError, match="batch_policy"):
            ServeConfig(batch_policy="nope").make_batch_policy()

    def test_adaptive_inherits_bounds(self):
        config = ServeConfig(batch_policy="adaptive", max_batch_size=4,
                             max_adaptive_batch_size=32, policy_hysteresis=5)
        policy = config.make_batch_policy()
        assert policy.initial_batch_size == 4
        assert policy.max_batch_size == 32
        assert policy.hysteresis == 5


# ---------------------------------------------------------------------------
# Per-group flush workers
# ---------------------------------------------------------------------------

class TestPerGroupWorkers:
    def test_slow_group_does_not_stall_fast_group(self):
        """One blocked dCAM-style flush must not delay other groups."""
        release_slow = threading.Event()

        def execute(group_key, requests):
            if group_key == ("slow", "explain"):
                assert release_slow.wait(timeout=10)
            return requests

        with MicroBatcher(execute, max_batch_size=1, max_wait_ms=0) as batcher:
            slow = batcher.submit(("slow", "explain"), "s0")
            time.sleep(0.05)  # the slow worker is now blocked inside execute
            fast = [batcher.submit(("fast", "classify"), index) for index in range(4)]
            # Fast-group responses arrive while the slow flush is still stuck.
            assert [future.result(timeout=5) for future in fast] == [0, 1, 2, 3]
            assert not slow.done()
            release_slow.set()
            assert slow.result(timeout=5) == "s0"

    def test_one_worker_thread_per_group(self):
        seen_threads = {}

        def execute(group_key, requests):
            seen_threads.setdefault(group_key, set()).add(threading.get_ident())
            return requests

        with MicroBatcher(execute, max_batch_size=2, max_wait_ms=1) as batcher:
            futures = [batcher.submit(("m", kind), index)
                       for index, kind in enumerate(["classify", "explain"] * 6)]
            for future in futures:
                future.result(timeout=5)
        assert len(seen_threads) == 2
        for threads in seen_threads.values():
            assert len(threads) == 1
        assert seen_threads[("m", "classify")] != seen_threads[("m", "explain")]

    def test_adaptive_policy_drives_batcher_flush_size(self):
        """Sustained backlog must grow observed flush widths."""
        flush_widths = []
        gate = threading.Event()

        def execute(group_key, requests):
            flush_widths.append(len(requests))
            gate.wait(timeout=10)
            return requests

        policy = AdaptiveBatchPolicy(initial_batch_size=2, max_batch_size=16,
                                     initial_wait_ms=1.0, hysteresis=1,
                                     ewma_alpha=1.0, latency_budget_ms=0.0)
        with MicroBatcher(execute, policy=policy) as batcher:
            key = group_key_of("m", "classify")
            futures = [batcher.submit(key, index) for index in range(40)]
            gate.set()
            for future in futures:
                future.result(timeout=10)
        assert max(flush_widths) > 2  # grew beyond the initial width


# ---------------------------------------------------------------------------
# Admission control / load-shedding
# ---------------------------------------------------------------------------

class TestAdmissionControl:
    def test_submit_over_watermark_sheds(self):
        release = threading.Event()

        def execute(group_key, requests):
            release.wait(timeout=10)
            return requests

        batcher = MicroBatcher(execute, max_batch_size=1, max_wait_ms=0,
                               max_queue_depth=2)
        try:
            first = batcher.submit("g", 1)   # dequeued, blocked in execute
            second = batcher.submit("g", 2)  # queued
            time.sleep(0.05)
            with pytest.raises(QueueFullError) as excinfo:
                batcher.submit("g", 3)
            error = excinfo.value
            assert error.limit == 2
            assert error.retry_after_s > 0
            # Other groups are unaffected by the saturated one.
            other = batcher.submit("other", 9)
            release.set()
            assert first.result(timeout=5) == 1
            assert second.result(timeout=5) == 2
            assert other.result(timeout=5) == 9
            assert batcher.telemetry.snapshot()["requests_shed"] == 1
            # Once drained, the group admits again.
            assert batcher.submit("g", 4).result(timeout=5) == 4
        finally:
            release.set()
            batcher.close()

    def test_depth_gauge_tracks_in_flight(self):
        with MicroBatcher(lambda key, requests: requests, max_batch_size=1,
                          max_wait_ms=0, max_queue_depth=8) as batcher:
            batcher.submit(("m", "classify"), 1).result(timeout=5)
            # The slot is released just after the future resolves; poll.
            deadline = time.time() + 2
            while time.time() < deadline and batcher.queue_depth(("m", "classify")):
                time.sleep(0.005)
            snapshot = batcher.telemetry.snapshot()
            assert snapshot["queue_depth[m/classify]"] == 0

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            MicroBatcher(lambda key, requests: requests, max_queue_depth=0)

    def test_batcher_reports_queue_seconds_to_policy(self):
        """The policy sees the batcher-visible wait of each flushed batch."""
        observed = []

        class RecordingPolicy(StaticBatchPolicy):
            def observe(self, group_key, batch_size, flush_seconds, queue_depth,
                        batch_cost=None, queue_cost=None, queue_seconds=None):
                observed.append(queue_seconds)

        with MicroBatcher(lambda key, requests: requests,
                          policy=RecordingPolicy(max_batch_size=4, max_wait_ms=1.0)
                          ) as batcher:
            batcher.submit("g", 1).result(timeout=5)
        assert observed
        for queue_seconds in observed:
            assert isinstance(queue_seconds, float)
            assert queue_seconds >= 0.0


class TestPriorityShedding:
    """Under *global* pressure cheap traffic outlives expensive traffic.

    ``/classify`` submits with ``priority=1`` and keeps admitting up to the
    full ``max_total_depth``; ``/explain`` (priority 0) is shed earlier, at
    the watermark — the regression pinned here is that a flood of expensive
    explains can never starve the cheap classify path.
    """

    def test_low_priority_sheds_at_watermark_high_priority_admits(self):
        release = threading.Event()

        def execute(group_key, requests):
            release.wait(timeout=10)
            return requests

        batcher = MicroBatcher(execute, max_batch_size=1, max_wait_ms=0,
                               max_total_depth=4, shed_watermark=0.75)
        try:
            # Three explains fill the priority-0 share: int(4 * 0.75) == 3.
            explains = [batcher.submit(("m", "explain"), value) for value in range(3)]
            with pytest.raises(QueueFullError) as excinfo:
                batcher.submit(("m", "explain"), 99)
            assert excinfo.value.limit == 3
            assert excinfo.value.retry_after_s > 0
            # The cheap path still has headroom up to the full depth...
            classify = batcher.submit(("m", "classify"), "c", priority=1)
            # ...and only sheds when the batcher is truly full.
            with pytest.raises(QueueFullError) as excinfo:
                batcher.submit(("m", "classify"), "c2", priority=1)
            assert excinfo.value.limit == 4
            counters = batcher.telemetry.snapshot()
            assert counters["requests_shed"] == 2
            # Only the priority-0 shed counts as a priority shed.
            assert counters["requests_shed_priority"] == 1
            release.set()
            assert [f.result(timeout=5) for f in explains] == [0, 1, 2]
            assert classify.result(timeout=5) == "c"
            # Drained: both classes admit again.
            assert batcher.submit(("m", "explain"), 7).result(timeout=5) == 7
        finally:
            release.set()
            batcher.close()

    def test_invalid_total_depth_and_watermark_rejected(self):
        with pytest.raises(ValueError, match="max_total_depth"):
            MicroBatcher(lambda key, requests: requests, max_total_depth=0)
        with pytest.raises(ValueError, match="shed_watermark"):
            MicroBatcher(lambda key, requests: requests, max_total_depth=4,
                         shed_watermark=0.0)

    def test_service_submits_classify_above_explain_priority(self, adaptive_store):
        # The service-level half of the guarantee: /classify rides the
        # high-priority lane, /explain the default one.  (The batcher-level
        # test above pins what those lanes mean under pressure.)
        service = make_service(adaptive_store, max_total_depth=64)
        submitted = []
        real_submit = service.batcher.submit

        def recording_submit(group_key, request, cost=1.0, priority=0):
            submitted.append((group_key[1], priority))
            return real_submit(group_key, request, cost=cost, priority=priority)

        service.batcher.submit = recording_submit
        try:
            rng = np.random.default_rng(0)
            series = rng.normal(size=(4, 48)).tolist()
            service.classify("ccnn-a", series)
            service.explain("ccnn-a", series, k=4, seed=0)
        finally:
            service.batcher.submit = real_submit
            service.close()
        priorities = dict(submitted)
        assert priorities["classify"] == 1
        assert priorities["explain"] == 0


# ---------------------------------------------------------------------------
# Shutdown: no request may hang (ISSUE 6 regression)
# ---------------------------------------------------------------------------

class TestShutdownDrain:
    def test_queued_requests_complete_on_graceful_close(self):
        release = threading.Event()
        served = []

        def execute(group_key, requests):
            release.wait(timeout=10)
            served.extend(requests)
            return requests

        batcher = MicroBatcher(execute, max_batch_size=4, max_wait_ms=10_000)
        futures = [batcher.submit("g", index) for index in range(3)]
        release.set()
        batcher.close()  # graceful drain: flushes the partial batch
        assert [future.result(timeout=1) for future in futures] == [0, 1, 2]
        assert sorted(served) == [0, 1, 2]

    def test_requests_racing_close_complete_or_fail_fast(self):
        """Submits concurrent with close() never leave a hanging future."""

        def execute(group_key, requests):
            time.sleep(0.001)
            return requests

        batcher = MicroBatcher(execute, max_batch_size=4, max_wait_ms=1)
        outcomes = []
        outcomes_lock = threading.Lock()

        def client(worker):
            for index in range(50):
                try:
                    future = batcher.submit("g", (worker, index))
                except RuntimeError:
                    with outcomes_lock:
                        outcomes.append("rejected")
                    return
                with outcomes_lock:
                    outcomes.append(future)

        threads = [threading.Thread(target=client, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.01)
        batcher.close(timeout=10)
        for thread in threads:
            thread.join(timeout=5)
            assert not thread.is_alive()
        assert outcomes, "no requests were attempted"
        for outcome in outcomes:
            if isinstance(outcome, Future):
                # Every accepted future resolves promptly: a result (served
                # before/during the drain) — never a hang.
                assert outcome.result(timeout=1) is not None

    def test_close_timeout_fails_stuck_queue_fast(self):
        stuck = threading.Event()

        def execute(group_key, requests):
            stuck.wait(timeout=30)  # simulates a wedged engine
            return requests

        batcher = MicroBatcher(execute, max_batch_size=1, max_wait_ms=0)
        in_flight = batcher.submit("g", 1)   # worker blocks on this one
        time.sleep(0.05)
        queued = batcher.submit("g", 2)      # still in the queue
        start = time.perf_counter()
        batcher.close(timeout=0.2)
        assert time.perf_counter() - start < 5
        with pytest.raises(RuntimeError, match="closed"):
            queued.result(timeout=1)
        assert not in_flight.done()  # in execute's hands; must not double-fail
        stuck.set()
        assert in_flight.result(timeout=5) == 1

    def test_submit_after_close_fails_fast(self):
        batcher = MicroBatcher(lambda key, requests: requests)
        batcher.close()
        start = time.perf_counter()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit("g", 1)
        assert time.perf_counter() - start < 1
        batcher.close()  # idempotent


# ---------------------------------------------------------------------------
# Service-level: adaptive parity, shedding, HTTP backpressure
# ---------------------------------------------------------------------------

class TestAdaptiveServiceParity:
    def _mixed_load(self, service, dataset, n_requests=24):
        def one(index):
            series = dataset.X[index % len(dataset.X)]
            if index % 2 == 0:
                return ("classify", service.classify("ccnn-a", series).logits)
            response = service.explain("dcnn-a", series, class_id=1, k=6,
                                       seed=index % 5)
            return ("dcam", response.heatmap, response.success_ratio)

        with ThreadPoolExecutor(max_workers=8) as pool:
            return list(pool.map(one, range(n_requests)))

    def test_adaptive_equals_serial_bytes(self, adaptive_store, tiny_type1_dataset):
        adaptive = make_service(adaptive_store, batch_policy="adaptive",
                                max_batch_size=4, max_wait_ms=4.0,
                                policy_hysteresis=1)
        serial = make_service(adaptive_store, max_batch_size=1, max_wait_ms=0)
        try:
            left = self._mixed_load(adaptive, tiny_type1_dataset)
            right = self._mixed_load(serial, tiny_type1_dataset)
        finally:
            adaptive.close()
            serial.close()
        for a, b in zip(left, right):
            assert a[0] == b[0]
            assert np.array_equal(a[1], b[1])
            if len(a) > 2:
                assert a[2] == b[2]

    def test_metrics_expose_adaptive_state(self, adaptive_store, tiny_type1_dataset):
        service = make_service(adaptive_store, batch_policy="adaptive",
                               max_batch_size=2, max_wait_ms=1.0)
        try:
            for _ in range(3):
                service.classify("ccnn-a", tiny_type1_dataset.X[0])
            snapshot = service.metrics()
        finally:
            service.close()
        assert "queue_depth[ccnn-a/classify]" in snapshot
        assert "policy_batch_size[ccnn-a/classify]" in snapshot
        assert "flush_classify_seconds" in snapshot
        assert snapshot["requests_classify"] == 3


class TestHTTPBackpressure:
    @pytest.fixture()
    def gated_server(self, adaptive_store):
        """A live server whose explain flushes block until released."""
        service = make_service(adaptive_store, max_batch_size=1, max_wait_ms=0,
                               max_queue_depth=2)
        release = threading.Event()
        inner_execute = service.batcher._execute

        def gated_execute(group_key, requests):
            if group_key[1] == "explain":
                assert release.wait(timeout=30)
            return inner_execute(group_key, requests)

        service.batcher._execute = gated_execute
        server, thread = serve_in_background(service)
        host, port = server.server_address[:2]
        try:
            yield f"http://{host}:{port}", release
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            service.close()

    @staticmethod
    def _post(url, payload, timeout=30):
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode("utf-8"), method="POST",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, dict(response.headers), json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), json.loads(error.read())

    @staticmethod
    def _get(url):
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())

    def test_saturated_explain_sheds_while_classify_stays_live(
            self, gated_server, tiny_type1_dataset):
        base, release = gated_server
        series = tiny_type1_dataset.X[0]

        def explain(index):
            # Unique seeds: identical requests would collapse into the
            # response cache instead of occupying the queue.
            return self._post(f"{base}/explain",
                              {"model": "dcnn-a", "instance": series.tolist(),
                               "class_id": 1, "k": 4, "seed": index})

        with ThreadPoolExecutor(max_workers=6) as pool:
            pending = [pool.submit(explain, index) for index in range(6)]
            # Wait until the bounded queue (depth 2) is saturated and the
            # overflow requests have been shed.
            deadline = time.time() + 10
            shed = []
            while time.time() < deadline:
                shed = [f for f in pending if f.done() and f.result()[0] == 429]
                if len(shed) >= 4:
                    break
                time.sleep(0.02)
            assert len(shed) >= 1, "no request was shed"
            status, headers, body = shed[0].result()
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after_s"] > 0
            assert "overloaded" in body["error"]

            # While /explain is saturated, /classify and /healthz stay live.
            status, _, classified = self._post(
                f"{base}/classify",
                {"model": "ccnn-a", "instance": series.tolist()}, timeout=10)
            assert status == 200 and "logits" in classified
            status, health = self._get(f"{base}/healthz")
            assert status == 200 and health["status"] == "ok"
            status, metrics = self._get(f"{base}/metrics")
            assert status == 200
            assert metrics["requests_shed"] >= 1
            assert metrics["queue_depth[dcnn-a/explain]"] >= 1

            # Releasing the gate drains the admitted requests successfully.
            release.set()
            statuses = sorted(f.result()[0] for f in pending)
            assert statuses.count(200) == 2  # exactly the admitted watermark
            assert statuses.count(429) == 4
