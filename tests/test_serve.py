"""Tests of the online serving subsystem (repro.serve).

The load-bearing guarantees pinned here:

* store round-trip — a registered artifact reloads to a bit-identical model;
* exactness — responses assembled through the micro-batching scheduler and
  through the explanation cache are byte-identical to per-request execution,
  for every explainer family and for classify;
* real concurrency — N client threads against a batched service receive
  exactly the bytes a serial per-request service produces, while the batcher
  demonstrably coalesces;
* cache behaviour — warm vs cold byte-identity, LRU eviction of both tiers
  (shared with the runtime ResultCache), content keys that change with the
  model state;
* HTTP — a live ``ThreadingHTTPServer`` on an ephemeral port answers every
  route.
"""

from __future__ import annotations

import json
import pickle
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.explain import get_explainer
from repro.runtime import ResultCache
from repro.runtime.eviction import BoundedMemoryStore, enforce_disk_budget
from repro.serve import (
    ExplanationCache,
    ExplanationService,
    MicroBatcher,
    ModelArtifactStore,
    ServeConfig,
    probe_batch_parity,
    serve_in_background,
    serve_logits,
)
from repro.serve.cache import content_key, response_cache_key
from repro.serve.engine import (
    draw_request_permutations,
    explain_outputs,
    per_request_explain,
)

MODEL_SPECS = {
    "ccnn": {"filters": (8, 16)},
    "mtex": {"block1_filters": (4, 8), "block2_filters": 8, "hidden_units": 16},
    "dcnn": {"filters": (8, 16)},
}


@pytest.fixture(scope="session")
def serve_store(tmp_path_factory, trained_ccnn, trained_mtex, trained_dcnn):
    """A session store holding one artifact per explainer family."""
    store = ModelArtifactStore(str(tmp_path_factory.mktemp("serve-store")))
    for model_name, model in (("ccnn", trained_ccnn), ("mtex", trained_mtex),
                              ("dcnn", trained_dcnn)):
        parity = probe_batch_parity(model)
        store.register(
            f"{model_name}-t", model, model_name=model_name,
            metadata={"model_kwargs": dict(MODEL_SPECS[model_name]),
                      "batch_parity": parity.to_json()})
    return store


def make_service(store, **config_kwargs):
    return ExplanationService(store, cache=ExplanationCache(max_memory_bytes=None),
                              config=ServeConfig(**config_kwargs))


# ---------------------------------------------------------------------------
# Model artifact store
# ---------------------------------------------------------------------------

class TestModelArtifactStore:
    def test_round_trip_is_bit_identical(self, serve_store, trained_dcnn,
                                         tiny_type1_dataset):
        reloaded = serve_store.load("dcnn-t")
        assert reloaded is not trained_dcnn
        state, reloaded_state = trained_dcnn.state_dict(), reloaded.state_dict()
        assert list(state) == list(reloaded_state)
        for key in state:
            assert np.array_equal(state[key], reloaded_state[key])
        X = tiny_type1_dataset.X[:4]
        assert np.array_equal(trained_dcnn.logits(X), reloaded.logits(X))

    def test_warm_cache_returns_same_instance(self, serve_store):
        assert serve_store.load("ccnn-t") is serve_store.load("ccnn-t")

    def test_list_and_contains(self, serve_store):
        assert serve_store.list_names() == ["ccnn-t", "dcnn-t", "mtex-t"]
        assert "dcnn-t" in serve_store
        assert "nope" not in serve_store

    def test_artifact_metadata(self, serve_store):
        artifact = serve_store.artifact("dcnn-t")
        assert artifact.explainer_family == "dcam"
        assert artifact.model_name == "dcnn"
        assert len(artifact.state_hash) == 64
        assert artifact.metadata["batch_parity"]["explain"] is True

    def test_unknown_artifact_raises(self, serve_store):
        with pytest.raises(KeyError, match="nope"):
            serve_store.artifact("nope")

    def test_register_refuses_overwrite(self, serve_store, trained_ccnn):
        with pytest.raises(FileExistsError):
            serve_store.register("ccnn-t", trained_ccnn, model_name="ccnn")

    def test_invalid_name_rejected(self, serve_store, trained_ccnn):
        with pytest.raises(ValueError, match="invalid artifact name"):
            serve_store.register("../escape", trained_ccnn, model_name="ccnn")

    def test_integrity_check(self, tmp_path, trained_ccnn):
        store = ModelArtifactStore(str(tmp_path))
        store.register("model", trained_ccnn, model_name="ccnn",
                       metadata={"model_kwargs": dict(MODEL_SPECS["ccnn"])})
        # Corrupt the artifact record's hash: load must fail loudly.
        artifact_path = tmp_path / "model" / "artifact.json"
        record = json.loads(artifact_path.read_text())
        record["state_hash"] = "0" * 64
        artifact_path.write_text(json.dumps(record))
        fresh = ModelArtifactStore(str(tmp_path))  # no memoized record
        with pytest.raises(ValueError, match="integrity"):
            fresh.load("model")


# ---------------------------------------------------------------------------
# Explanation cache + shared LRU eviction
# ---------------------------------------------------------------------------

class TestExplanationCache:
    def test_memory_round_trip(self):
        cache = ExplanationCache()
        assert cache.get("k" * 64) is None
        cache.put("k" * 64, b"payload")
        assert cache.get("k" * 64) == b"payload"
        assert ("k" * 64) in cache and len(cache) == 1

    def test_disk_tier_survives_instances(self, tmp_path):
        first = ExplanationCache(directory=str(tmp_path))
        first.put("a" * 64, b"one")
        second = ExplanationCache(directory=str(tmp_path))
        assert second.get("a" * 64) == b"one"

    def test_memory_lru_eviction_order(self):
        cache = ExplanationCache(max_memory_bytes=8)
        cache.put("a" * 64, b"aaaa")
        cache.put("b" * 64, b"bbbb")
        assert cache.get("a" * 64) == b"aaaa"  # refresh a
        cache.put("c" * 64, b"cccc")           # evicts b, the LRU entry
        assert cache.get("b" * 64) is None
        assert cache.get("a" * 64) == b"aaaa"
        assert cache.get("c" * 64) == b"cccc"

    def test_disk_lru_eviction(self, tmp_path):
        cache = ExplanationCache(directory=str(tmp_path), max_disk_bytes=8)
        cache.put("a" * 64, b"aaaa")
        cache.put("b" * 64, b"bbbb")
        cache.put("c" * 64, b"cccc")
        names = {path.name[:1] for path in tmp_path.glob("*.blob")}
        assert len(names) <= 2 and "c" in names

    def test_telemetry_counters(self):
        cache = ExplanationCache()
        cache.get("x" * 64)
        cache.put("x" * 64, b"1")
        cache.get("x" * 64)
        snapshot = cache.telemetry.snapshot()
        assert snapshot["cache_misses"] == 1
        assert snapshot["cache_hits"] == 1
        assert snapshot["cache_stores"] == 1

    def test_content_key_sensitivity(self):
        array = np.arange(6, dtype=np.float64)
        base = content_key("tag", array, 1)
        assert base == content_key("tag", np.arange(6, dtype=np.float64), 1)
        assert base != content_key("tag", array, 2)
        assert base != content_key("tag", array.astype(np.float32), 1)
        assert base != content_key("tag", array.reshape(2, 3), 1)

    def test_response_key_separates_model_states(self):
        instance = np.zeros((2, 3))
        key_one = response_cache_key("hash-one", "explain", instance, 1, 8, 0)
        key_two = response_cache_key("hash-two", "explain", instance, 1, 8, 0)
        assert key_one != key_two


class TestSharedEviction:
    def test_bounded_memory_store(self):
        store = BoundedMemoryStore(max_bytes=10)
        store.put("a", b"12345")
        store.put("b", b"12345")
        store.get("a")
        store.put("c", b"12345")  # b is least recently used
        assert "b" not in store and "a" in store and "c" in store
        assert store.evictions == 1

    def test_bounded_memory_store_thread_safety(self):
        from concurrent.futures import ThreadPoolExecutor

        store = BoundedMemoryStore(max_bytes=64)  # constant churn

        def hammer(worker):
            for index in range(400):
                key = f"{worker}-{index % 7}"
                store.put(key, b"0123456789")
                store.get(key)  # must never KeyError against a racing evict

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(hammer, range(6)))
        assert store.total_bytes <= 64 + 10  # bound holds (± one in-flight entry)

    def test_result_cache_disk_lru(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path), max_disk_bytes=1)
        cache.store("first", {"payload": 1})
        cache.store("second", {"payload": 2})
        # Budget of one byte: only the newest entry file survives.
        remaining = sorted(path.name for path in tmp_path.glob("*.pkl"))
        assert remaining == ["second.pkl"]
        # The evicted entry still lives in the memory tier of this instance.
        hit, value = cache.lookup("first")
        assert hit and value == {"payload": 1}
        # ... but is gone for a fresh process/instance.
        fresh = ResultCache(directory=str(tmp_path))
        hit, _ = fresh.lookup("first")
        assert not hit

    def test_result_cache_memory_bound(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path), max_memory_bytes=1)
        cache.store("first", list(range(100)))
        cache.store("second", list(range(100)))
        # Disk is unbounded: both entries remain loadable.
        assert cache.lookup("first") == (True, list(range(100)))
        assert cache.lookup("second") == (True, list(range(100)))

    def test_enforce_disk_budget_none_is_noop(self, tmp_path):
        (tmp_path / "entry.pkl").write_bytes(b"x" * 100)
        assert enforce_disk_budget(str(tmp_path), None) == 0


# ---------------------------------------------------------------------------
# Engine exactness: scheduler-assembled == per-request, per family
# ---------------------------------------------------------------------------

class TestEngineExactness:
    @pytest.mark.parametrize("artifact_name", ["ccnn-t", "mtex-t", "dcnn-t"])
    def test_coalesced_explain_matches_per_request(self, serve_store, artifact_name,
                                                   tiny_type1_dataset):
        model = serve_store.load(artifact_name)
        family = serve_store.artifact(artifact_name).explainer_family
        X = tiny_type1_dataset.X[:5]
        class_ids = [int(label) for label in tiny_type1_dataset.y[:5]]
        ks = [4, 8, 4, 6, 8]          # heterogeneous on purpose
        seeds = [7, 1, 3, 3, 9]
        coalesced = explain_outputs(model, family, X, class_ids, ks, seeds,
                                    batch_size=32)
        for index, output in enumerate(coalesced):
            reference = per_request_explain(model, family, X[index],
                                            class_ids[index], ks[index],
                                            seeds[index], batch_size=32)
            assert np.array_equal(output.heatmap, reference.heatmap)
            assert output.success_ratio == reference.success_ratio

    def test_dcam_per_request_matches_plain_explainer(self, serve_store,
                                                      tiny_type1_dataset):
        """The serve reference path IS Explainer.explain with the seeded draw."""
        model = serve_store.load("dcnn-t")
        series = tiny_type1_dataset.X[0]
        explainer = get_explainer(model, keep_details=False)
        direct = explainer.explain(
            series, 1,
            permutations=draw_request_permutations(series.shape[0], 8, 42))
        served = per_request_explain(model, "dcam", series, 1, 8, 42, batch_size=32)
        assert np.array_equal(served.heatmap, direct.heatmap)
        # ... and the seeded draw equals an rng-driven explain, the way a
        # client would call it locally.
        rng_driven = get_explainer(model, k=8, keep_details=False,
                                   rng=np.random.default_rng(42)).explain(series, 1)
        assert np.array_equal(served.heatmap, rng_driven.heatmap)

    @pytest.mark.parametrize("artifact_name", ["ccnn-t", "mtex-t", "dcnn-t"])
    def test_serve_logits_width_invariant(self, serve_store, artifact_name,
                                          tiny_type1_dataset):
        model = serve_store.load(artifact_name)
        X = tiny_type1_dataset.X[:6]
        batched = serve_logits(model, X)
        singles = np.concatenate([serve_logits(model, X[i : i + 1])
                                  for i in range(len(X))])
        assert np.array_equal(batched, singles)
        # And close to the raw model path (the head contraction differs only
        # in BLAS kernel rounding).
        np.testing.assert_allclose(batched, model.logits(X), atol=1e-10)

    def test_probe_reports_parity(self, serve_store):
        for artifact_name in serve_store.list_names():
            report = probe_batch_parity(serve_store.load(artifact_name))
            assert report.classify is True
            assert report.explain is True


# ---------------------------------------------------------------------------
# Micro-batcher
# ---------------------------------------------------------------------------

class TestMicroBatcher:
    def test_flush_on_max_batch_size(self):
        flushes = []

        def execute(group_key, requests):
            flushes.append(len(requests))
            return [value * 2 for value in requests]

        with MicroBatcher(execute, max_batch_size=4, max_wait_ms=10_000) as batcher:
            futures = [batcher.submit("g", value) for value in range(4)]
            assert [future.result(timeout=5) for future in futures] == [0, 2, 4, 6]
        assert flushes == [4]

    def test_flush_on_max_wait(self):
        def execute(group_key, requests):
            return requests

        with MicroBatcher(execute, max_batch_size=64, max_wait_ms=5) as batcher:
            assert batcher.submit("g", "lonely").result(timeout=5) == "lonely"
        assert batcher.telemetry.snapshot()["flushes_timed_out"] >= 1

    def test_groups_never_mix(self):
        seen = {}

        def execute(group_key, requests):
            seen.setdefault(group_key, []).extend(requests)
            return requests

        with MicroBatcher(execute, max_batch_size=8, max_wait_ms=5) as batcher:
            futures = [batcher.submit(index % 2, index) for index in range(8)]
            for future in futures:
                future.result(timeout=5)
        assert sorted(seen[0]) == [0, 2, 4, 6]
        assert sorted(seen[1]) == [1, 3, 5, 7]

    def test_execute_error_fails_every_future(self):
        def execute(group_key, requests):
            raise RuntimeError("engine exploded")

        with MicroBatcher(execute, max_batch_size=2, max_wait_ms=10_000) as batcher:
            futures = [batcher.submit("g", index) for index in range(2)]
            for future in futures:
                with pytest.raises(RuntimeError, match="engine exploded"):
                    future.result(timeout=5)

    def test_one_bad_request_does_not_poison_companions(self):
        def execute(group_key, requests):
            if any(value == "bad" for value in requests):
                raise ValueError("malformed request")
            return [value * 2 for value in requests]

        with MicroBatcher(execute, max_batch_size=3, max_wait_ms=10_000) as batcher:
            good_one = batcher.submit("g", 1)
            bad = batcher.submit("g", "bad")
            good_two = batcher.submit("g", 2)
            assert good_one.result(timeout=5) == 2
            assert good_two.result(timeout=5) == 4
            with pytest.raises(ValueError, match="malformed request"):
                bad.result(timeout=5)

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(lambda key, requests: requests)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit("g", 1)


# ---------------------------------------------------------------------------
# Service: batched vs serial under real concurrency, cache identity
# ---------------------------------------------------------------------------

class TestServiceParity:
    def _run_mixed_load(self, service, dataset, n_clients=8, n_requests=24):
        """Mixed classify/explain requests from a thread pool, in request order."""
        X = dataset.X

        def one(index):
            series = X[index % len(X)]
            if index % 3 == 0:
                response = service.classify("ccnn-t", series)
                return ("classify", response.logits)
            if index % 3 == 1:
                response = service.explain("dcnn-t", series, class_id=1,
                                           k=6, seed=index % 5)
                return ("dcam", response.heatmap, response.success_ratio)
            response = service.explain("mtex-t", series, class_id=0)
            return ("gradcam", response.heatmap)

        with ThreadPoolExecutor(max_workers=n_clients) as pool:
            return list(pool.map(one, range(n_requests)))

    def test_batched_equals_serial_under_concurrency(self, serve_store,
                                                     tiny_type1_dataset):
        batched_service = make_service(serve_store, max_batch_size=8, max_wait_ms=20)
        serial_service = make_service(serve_store, max_batch_size=1, max_wait_ms=0)
        try:
            batched = self._run_mixed_load(batched_service, tiny_type1_dataset)
            serial = self._run_mixed_load(serial_service, tiny_type1_dataset)
        finally:
            batched_service.close()
            serial_service.close()
        assert len(batched) == len(serial)
        for left, right in zip(batched, serial):
            assert left[0] == right[0]
            assert np.array_equal(left[1], right[1])
            if len(left) > 2:
                assert left[2] == right[2]
        # The batched service must actually have coalesced something.
        snapshot = batched_service.metrics()
        assert snapshot["batches_flushed"] < snapshot["batched_requests"]

    def test_cache_warm_vs_cold_byte_identity(self, serve_store, tiny_type1_dataset):
        service = make_service(serve_store, max_batch_size=4, max_wait_ms=1)
        try:
            series = tiny_type1_dataset.X[0]
            cold = service.explain("dcnn-t", series, class_id=1, k=8, seed=3)
            warm = service.explain("dcnn-t", series, class_id=1, k=8, seed=3)
            assert not cold.cached and warm.cached
            assert np.array_equal(cold.heatmap, warm.heatmap)
            assert cold.success_ratio == warm.success_ratio
            assert pickle.dumps((cold.heatmap, cold.success_ratio)) == \
                pickle.dumps((warm.heatmap, warm.success_ratio))
            cold_logits = service.classify("ccnn-t", series)
            warm_logits = service.classify("ccnn-t", series)
            assert not cold_logits.cached and warm_logits.cached
            assert np.array_equal(cold_logits.logits, warm_logits.logits)
        finally:
            service.close()

    def test_explain_defaults_to_predicted_class(self, serve_store,
                                                 tiny_type1_dataset):
        service = make_service(serve_store, max_batch_size=1, max_wait_ms=0)
        try:
            series = tiny_type1_dataset.X[0]
            predicted = service.classify("dcnn-t", series).predicted
            response = service.explain("dcnn-t", series, k=4, seed=0)
            assert response.class_id == predicted
        finally:
            service.close()

    def test_request_validation(self, serve_store):
        service = make_service(serve_store)
        try:
            with pytest.raises(KeyError):
                service.classify("missing-model", np.zeros((4, 48)))
            with pytest.raises(ValueError, match="shape"):
                service.classify("ccnn-t", np.zeros((3, 48)))
            with pytest.raises(ValueError, match="class_id"):
                service.explain("dcnn-t", np.zeros((4, 48)), class_id=99)
            with pytest.raises(ValueError, match="k must be"):
                service.explain("dcnn-t", np.zeros((4, 48)), class_id=1, k=0)
            with pytest.raises(ValueError, match="k must be"):
                service.explain("dcnn-t", np.zeros((4, 48)), class_id=1,
                                k=10**9)
        finally:
            service.close()

    def test_classify_response_derivations(self, serve_store, tiny_type1_dataset):
        service = make_service(serve_store)
        try:
            response = service.classify("ccnn-t", tiny_type1_dataset.X[0])
            assert response.predicted == int(response.logits.argmax())
            np.testing.assert_allclose(response.probabilities.sum(), 1.0)
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Permutation-level caching (Figure 10's below-unit reuse)
# ---------------------------------------------------------------------------

class TestPermutationCache:
    def test_growing_k_reuses_permutation_cams(self, trained_dcnn,
                                               tiny_type1_test_dataset):
        from repro.explain.evaluation import evaluate_explainer

        cache = ExplanationCache(max_memory_bytes=None)
        cached = [
            evaluate_explainer(trained_dcnn, tiny_type1_test_dataset, k=k,
                               n_instances=3, random_state=11, cache=cache).dr_acc
            for k in (1, 2, 4, 8)
        ]
        plain = [
            evaluate_explainer(trained_dcnn, tiny_type1_test_dataset, k=k,
                               n_instances=3, random_state=11).dr_acc
            for k in (1, 2, 4, 8)
        ]
        assert cached == plain
        snapshot = cache.telemetry.snapshot()
        assert snapshot["cache_hits"] > 0
        # Each instance's k₁ draw is a prefix of its k₂ draw, so far fewer
        # than sum(k) forwards were paid.
        assert snapshot["cache_stores"] < 3 * (1 + 2 + 4 + 8)

    def test_cache_keys_depend_on_model_state(self, trained_dcnn):
        from repro.explain.dcam import permutation_cache_key

        series = np.zeros((4, 8))
        order = np.arange(4)
        key_one = permutation_cache_key("hash-one", series, 1, order)
        key_two = permutation_cache_key("hash-two", series, 1, order)
        assert key_one != key_two
        assert key_one != permutation_cache_key("hash-one", series, 0, order)
        assert key_one != permutation_cache_key("hash-one", series, 1,
                                                np.array([1, 0, 2, 3]))


# ---------------------------------------------------------------------------
# CLI: export-model (train-or-load through the runtime ResultCache)
# ---------------------------------------------------------------------------

class TestExportModelCLI:
    def test_export_then_cached_reexport(self, tmp_path):
        from repro.runtime.cli import main as cli_main

        store_dir = str(tmp_path / "models")
        cache_dir = str(tmp_path / "cache")
        argv = ["export-model", "--model", "dcnn", "--scale", "tiny",
                "--store", store_dir, "--cache-dir", cache_dir, "--epochs", "2"]
        assert cli_main(argv) == 0
        store = ModelArtifactStore(store_dir)
        assert store.list_names() == ["dcnn-tiny"]
        first_hash = store.artifact("dcnn-tiny").state_hash

        # Re-export hits the runtime ResultCache and reproduces the exact
        # same state (the artifact hash is content-addressed).
        assert cli_main(argv + ["--overwrite"]) == 0
        fresh = ModelArtifactStore(store_dir)
        assert fresh.artifact("dcnn-tiny").state_hash == first_hash
        # Without --overwrite the existing artifact is protected.
        with pytest.raises(FileExistsError):
            cli_main(argv)

    def test_export_unknown_model(self, tmp_path):
        from repro.runtime.cli import main as cli_main

        assert cli_main(["export-model", "--model", "not-a-model",
                         "--store", str(tmp_path)]) == 2

    def test_serve_refuses_empty_store(self, tmp_path):
        from repro.runtime.cli import main as cli_main

        assert cli_main(["serve", "--store", str(tmp_path)]) == 2

    def test_exported_artifact_serves(self, tmp_path, tiny_type1_dataset):
        from repro.runtime.cli import main as cli_main

        store_dir = str(tmp_path / "models")
        assert cli_main(["export-model", "--model", "ccnn", "--scale", "tiny",
                         "--store", store_dir, "--epochs", "2"]) == 0
        service = make_service(ModelArtifactStore(store_dir))
        try:
            response = service.classify("ccnn-tiny", tiny_type1_dataset.X[0])
            assert response.logits.shape == (2,)
        finally:
            service.close()


# ---------------------------------------------------------------------------
# HTTP front-end
# ---------------------------------------------------------------------------

class TestHTTP:
    @pytest.fixture()
    def live_server(self, serve_store):
        service = make_service(serve_store, max_batch_size=4, max_wait_ms=1)
        server, thread = serve_in_background(service)  # ephemeral port
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        service.close()

    @staticmethod
    def _get(url):
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())

    @staticmethod
    def _post(url, payload):
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode("utf-8"), method="POST",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_healthz_models_metrics(self, live_server):
        status, health = self._get(f"{live_server}/healthz")
        assert status == 200 and health == {"status": "ok", "models": 3}
        status, models = self._get(f"{live_server}/models")
        assert status == 200
        assert {record["name"] for record in models["models"]} == \
            {"ccnn-t", "mtex-t", "dcnn-t"}
        status, metrics = self._get(f"{live_server}/metrics")
        assert status == 200 and isinstance(metrics, dict)

    def test_classify_and_explain_round_trip(self, live_server, serve_store,
                                             tiny_type1_dataset):
        series = tiny_type1_dataset.X[0]
        status, classified = self._post(
            f"{live_server}/classify",
            {"model": "ccnn-t", "instance": series.tolist()})
        assert status == 200
        # JSON floats round-trip exactly: the served logits equal the
        # canonical serve_logits bytes.
        expected = serve_logits(serve_store.load("ccnn-t"), series[None])[0]
        assert np.array_equal(np.asarray(classified["logits"]), expected)
        assert classified["predicted"] == int(expected.argmax())

        status, explained = self._post(
            f"{live_server}/explain",
            {"model": "dcnn-t", "instance": series.tolist(),
             "class_id": 1, "k": 6, "seed": 2})
        assert status == 200 and explained["family"] == "dcam"
        reference = per_request_explain(serve_store.load("dcnn-t"), "dcam",
                                        series, 1, 6, 2, batch_size=32)
        assert np.array_equal(np.asarray(explained["heatmap"]), reference.heatmap)
        assert explained["success_ratio"] == reference.success_ratio

        # A repeat is a cache hit with identical bytes.
        status, repeat = self._post(
            f"{live_server}/explain",
            {"model": "dcnn-t", "instance": series.tolist(),
             "class_id": 1, "k": 6, "seed": 2})
        assert repeat["cached"] is True
        assert repeat["heatmap"] == explained["heatmap"]

    def test_http_errors(self, live_server):
        status, body = self._post(f"{live_server}/classify", {"model": "ccnn-t"})
        assert status == 400 and "instance" in body["error"]
        status, body = self._post(
            f"{live_server}/classify",
            {"model": "missing", "instance": [[0.0] * 48] * 4})
        assert status == 404
        status, body = self._get(f"{live_server}/metrics")
        assert status == 200
        status, body = self._post(f"{live_server}/nope", {})
        assert status == 404

    def test_concurrent_http_clients(self, live_server, tiny_type1_dataset):
        X = tiny_type1_dataset.X

        def call(index):
            return self._post(
                f"{live_server}/explain",
                {"model": "dcnn-t", "instance": X[index % 4].tolist(),
                 "class_id": 1, "k": 4, "seed": index % 3})

        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(call, range(16)))
        assert all(status == 200 for status, _ in responses)
        # Identical (instance, k, seed) requests must yield identical bytes.
        by_key = {}
        for index, (_, body) in enumerate(responses):
            key = (index % 4, index % 3)
            if key in by_key:
                assert by_key[key] == body["heatmap"]
            else:
                by_key[key] = body["heatmap"]
