"""Round-trip parity of repro.nn.serialization and the state hash.

Pins the serving layer's foundational guarantee: save → load of a trained
model reproduces ``logits`` and dCAM outputs *bit for bit*, including the
BatchNorm running statistics and the train/eval mode flag, and the content
:func:`~repro.nn.serialization.state_hash` is stable across the round trip
and sensitive to any state change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dcam import compute_dcam
from repro.core.input_transform import random_permutations
from repro.models import CCNNClassifier, DCNNClassifier, MTEXCNNClassifier
from repro.nn import load_state_dict, save_state_dict, state_hash

MODEL_BUILDERS = {
    "ccnn": lambda D, n, C, rng: CCNNClassifier(D, n, C, filters=(8, 16), rng=rng),
    "dcnn": lambda D, n, C, rng: DCNNClassifier(D, n, C, filters=(8, 16), rng=rng),
    "mtex": lambda D, n, C, rng: MTEXCNNClassifier(
        D, n, C, block1_filters=(4, 8), block2_filters=8, hidden_units=16, rng=rng),
}

TRAINED_FIXTURES = {"ccnn": "trained_ccnn", "dcnn": "trained_dcnn",
                    "mtex": "trained_mtex"}


@pytest.mark.parametrize("model_name", sorted(MODEL_BUILDERS))
def test_round_trip_reproduces_logits_exactly(model_name, request,
                                              tiny_type1_dataset, tmp_path):
    model = request.getfixturevalue(TRAINED_FIXTURES[model_name])
    path = str(tmp_path / f"{model_name}.npz")
    save_state_dict(model, path)
    dataset = tiny_type1_dataset
    reloaded = MODEL_BUILDERS[model_name](dataset.n_dimensions, dataset.length,
                                          dataset.n_classes,
                                          np.random.default_rng(99))
    load_state_dict(reloaded, path)

    state, reloaded_state = model.state_dict(), reloaded.state_dict()
    assert list(state) == list(reloaded_state)
    for key in state:
        assert np.array_equal(state[key], reloaded_state[key]), key
        assert state[key].dtype == reloaded_state[key].dtype, key
    # fit() leaves the model in eval mode; the archive restores that too, so
    # BatchNorm keeps selecting running statistics after a reload.
    assert reloaded.training == model.training
    X = dataset.X[:6]
    assert np.array_equal(model.logits(X), reloaded.logits(X))


def test_round_trip_restores_batchnorm_buffers(trained_ccnn, tmp_path):
    buffer_names = [name for name, _ in trained_ccnn.named_buffers()]
    assert any("running_mean" in name for name in buffer_names)
    path = str(tmp_path / "model.npz")
    save_state_dict(trained_ccnn, path)
    reloaded = CCNNClassifier(trained_ccnn.n_dimensions, trained_ccnn.length,
                              trained_ccnn.n_classes, filters=(8, 16),
                              rng=np.random.default_rng(3))
    load_state_dict(reloaded, path)
    original = dict(trained_ccnn.named_buffers())
    for name, buffer in reloaded.named_buffers():
        assert np.array_equal(buffer, original[name]), name


def test_round_trip_reproduces_dcam_exactly(trained_dcnn, tiny_type1_dataset,
                                            tmp_path):
    path = str(tmp_path / "dcnn.npz")
    save_state_dict(trained_dcnn, path)
    reloaded = DCNNClassifier(trained_dcnn.n_dimensions, trained_dcnn.length,
                              trained_dcnn.n_classes, filters=(8, 16),
                              rng=np.random.default_rng(5))
    load_state_dict(reloaded, path)
    series = tiny_type1_dataset.X[0]
    permutations = random_permutations(series.shape[0], 6, np.random.default_rng(0))
    original = compute_dcam(trained_dcnn, series, 1, permutations=permutations)
    round_tripped = compute_dcam(reloaded, series, 1, permutations=permutations)
    assert np.array_equal(original.dcam, round_tripped.dcam)
    assert np.array_equal(original.m_bar, round_tripped.m_bar)
    assert original.n_correct == round_tripped.n_correct


def test_training_mode_round_trips(tmp_path):
    model = CCNNClassifier(3, 16, 2, filters=(4, 4), rng=np.random.default_rng(0))
    model.train()
    path = str(tmp_path / "train-mode.npz")
    save_state_dict(model, path)
    other = CCNNClassifier(3, 16, 2, filters=(4, 4), rng=np.random.default_rng(1))
    other.eval()
    load_state_dict(other, path)
    assert other.training is True
    model.eval()
    save_state_dict(model, path)
    load_state_dict(other, path)
    assert other.training is False


def test_state_hash_round_trip_stable_and_sensitive(trained_ccnn, tmp_path):
    original_hash = state_hash(trained_ccnn)
    assert original_hash == state_hash(trained_ccnn.state_dict())
    path = str(tmp_path / "hash.npz")
    save_state_dict(trained_ccnn, path)
    reloaded = CCNNClassifier(trained_ccnn.n_dimensions, trained_ccnn.length,
                              trained_ccnn.n_classes, filters=(8, 16),
                              rng=np.random.default_rng(1))
    load_state_dict(reloaded, path)
    assert state_hash(reloaded) == original_hash
    # Any parameter perturbation must change the hash.
    reloaded.classifier.weight.data[0, 0] += 1e-12
    assert state_hash(reloaded) != original_hash
