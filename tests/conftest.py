"""Shared fixtures: tiny datasets and pre-trained tiny models.

Session-scoped so that the expensive fixtures (trained models) are built once
and reused by every test module that needs them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticConfig, make_type1_dataset, make_type2_dataset
from repro.models import (
    CCNNClassifier,
    CNNClassifier,
    DCNNClassifier,
    MTEXCNNClassifier,
    TrainingConfig,
)

from tests.helpers import numerical_gradient  # noqa: F401  (re-exported for tests)

TINY_CONFIG = SyntheticConfig(
    seed_name="starlight",
    n_dimensions=4,
    n_instances_per_class=10,
    series_length=48,
    seed_instance_length=24,
    pattern_length=12,
    random_state=0,
)

TINY_TRAINING = TrainingConfig(epochs=10, batch_size=8, learning_rate=3e-3,
                               patience=10, random_state=0)


@pytest.fixture(scope="session")
def tiny_type1_dataset():
    return make_type1_dataset(TINY_CONFIG)


@pytest.fixture(scope="session")
def tiny_type2_dataset():
    return make_type2_dataset(TINY_CONFIG)


@pytest.fixture(scope="session")
def tiny_type1_test_dataset():
    config = SyntheticConfig(**{**TINY_CONFIG.__dict__, "random_state": 123,
                                "n_instances_per_class": 6})
    return make_type1_dataset(config)


@pytest.fixture(scope="session")
def trained_dcnn(tiny_type1_dataset):
    model = DCNNClassifier(tiny_type1_dataset.n_dimensions, tiny_type1_dataset.length,
                           tiny_type1_dataset.n_classes, filters=(8, 16),
                           rng=np.random.default_rng(0))
    model.fit(tiny_type1_dataset.X, tiny_type1_dataset.y, config=TINY_TRAINING)
    return model


@pytest.fixture(scope="session")
def trained_cnn(tiny_type1_dataset):
    model = CNNClassifier(tiny_type1_dataset.n_dimensions, tiny_type1_dataset.length,
                          tiny_type1_dataset.n_classes, filters=(8, 16),
                          rng=np.random.default_rng(0))
    model.fit(tiny_type1_dataset.X, tiny_type1_dataset.y, config=TINY_TRAINING)
    return model


@pytest.fixture(scope="session")
def trained_ccnn(tiny_type1_dataset):
    model = CCNNClassifier(tiny_type1_dataset.n_dimensions, tiny_type1_dataset.length,
                           tiny_type1_dataset.n_classes, filters=(8, 16),
                           rng=np.random.default_rng(0))
    model.fit(tiny_type1_dataset.X, tiny_type1_dataset.y, config=TINY_TRAINING)
    return model


@pytest.fixture(scope="session")
def trained_mtex(tiny_type1_dataset):
    model = MTEXCNNClassifier(tiny_type1_dataset.n_dimensions, tiny_type1_dataset.length,
                              tiny_type1_dataset.n_classes, block1_filters=(4, 8),
                              block2_filters=8, hidden_units=16,
                              rng=np.random.default_rng(0))
    model.fit(tiny_type1_dataset.X, tiny_type1_dataset.y,
              config=TrainingConfig(epochs=4, batch_size=8, learning_rate=3e-3,
                                    random_state=0))
    return model


