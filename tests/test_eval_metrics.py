"""Unit tests of the evaluation metrics (repro.eval)."""

import numpy as np
import pytest

from repro.eval import (
    classification_accuracy,
    dr_acc,
    dr_acc_batch,
    harmonic_mean,
    pr_auc,
    precision_recall_curve,
    random_baseline_dr_acc,
    roc_auc,
)
from repro.eval.ranking import average_ranks, mean_scores, rank_scores


class TestAccuracy:
    def test_perfect_and_partial(self):
        assert classification_accuracy([0, 1, 2], [0, 1, 2]) == 1.0
        assert classification_accuracy([0, 1, 2, 3], [0, 1, 0, 0]) == 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            classification_accuracy([0, 1], [0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classification_accuracy([], [])


class TestPRCurveAndAUC:
    def test_perfect_ranking_gives_auc_one(self):
        labels = np.array([0, 0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.3, 0.8, 0.9])
        assert pr_auc(labels, scores) == 1.0

    def test_worst_ranking_gives_low_auc(self):
        labels = np.array([1, 0, 0, 0, 0, 0, 0, 0, 0, 0])
        scores = -np.arange(10.0)  # the positive has the highest... reversed
        scores = np.arange(10.0)   # positive gets the lowest score
        assert pr_auc(labels, scores) <= 0.2

    def test_random_scores_approximate_positive_rate(self):
        rng = np.random.default_rng(0)
        labels = np.zeros(2000)
        labels[:100] = 1
        scores = rng.random(2000)
        value = pr_auc(labels, scores)
        assert 0.02 < value < 0.12  # positive rate is 0.05

    def test_known_small_example(self):
        # Ranking: [1, 0, 1, 0]; AP = (1/1)*0.5 + (2/3)*0.5 = 0.8333...
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        assert abs(pr_auc(labels, scores) - (0.5 + 0.5 * 2 / 3)) < 1e-10

    def test_curve_monotone_recall(self):
        labels = np.array([0, 1, 1, 0, 1])
        scores = np.array([0.2, 0.9, 0.4, 0.5, 0.7])
        precision, recall, thresholds = precision_recall_curve(labels, scores)
        assert (np.diff(recall) >= 0).all()
        assert recall[-1] == 1.0
        assert len(precision) == len(recall) == len(thresholds)

    def test_requires_positive_labels(self):
        with pytest.raises(ValueError):
            pr_auc(np.zeros(5), np.arange(5.0))

    def test_requires_binary_labels(self):
        with pytest.raises(ValueError):
            pr_auc(np.array([0, 1, 2]), np.arange(3.0))

    def test_ties_handled(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.5, 0.5, 0.5, 0.1])
        value = pr_auc(labels, scores)
        assert 0.0 < value <= 1.0


class TestROCAUC:
    def test_perfect_separation(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_reverse_separation(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, size=5000)
        labels[0], labels[1] = 0, 1
        scores = rng.random(5000)
        assert abs(roc_auc(labels, scores) - 0.5) < 0.05

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc(np.ones(4), np.arange(4.0))


class TestHarmonicMean:
    def test_equal_values(self):
        assert harmonic_mean(0.8, 0.8) == pytest.approx(0.8)

    def test_zero_dominates(self):
        assert harmonic_mean(0.0, 1.0) == 0.0

    def test_less_than_arithmetic_mean(self):
        assert harmonic_mean(0.2, 0.8) < 0.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean(-0.1, 0.5)


class TestDrAcc:
    def test_perfect_explanation(self):
        ground_truth = np.zeros((3, 10))
        ground_truth[1, 2:5] = 1
        explanation = ground_truth * 10.0
        assert dr_acc(explanation, ground_truth) == 1.0

    def test_uninformative_explanation_is_low(self):
        ground_truth = np.zeros((5, 40))
        ground_truth[0, :2] = 1
        rng = np.random.default_rng(0)
        scores = [dr_acc(rng.random((5, 40)), ground_truth) for _ in range(20)]
        assert np.mean(scores) < 0.2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dr_acc(np.zeros((2, 5)), np.zeros((3, 5)))

    def test_empty_ground_truth_rejected(self):
        with pytest.raises(ValueError):
            dr_acc(np.ones((2, 5)), np.zeros((2, 5)))

    def test_batch_average(self):
        ground_truth = np.zeros((2, 8))
        ground_truth[0, :2] = 1
        perfect = ground_truth * 5
        batch = dr_acc_batch([perfect, perfect], [ground_truth, ground_truth])
        assert batch == 1.0

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            dr_acc_batch([np.ones((2, 4))], [])
        with pytest.raises(ValueError):
            dr_acc_batch([], [])

    def test_random_baseline_close_to_positive_rate(self):
        ground_truth = np.zeros((4, 50))
        ground_truth[0, :10] = 1  # positive rate 0.05
        baseline = random_baseline_dr_acc(ground_truth, np.random.default_rng(0), repeats=20)
        assert 0.02 < baseline < 0.12


class TestRanking:
    def test_rank_scores_higher_is_better(self):
        ranks = rank_scores({"a": 0.9, "b": 0.5, "c": 0.7})
        assert ranks["a"] == 1.0 and ranks["b"] == 3.0 and ranks["c"] == 2.0

    def test_rank_scores_lower_is_better(self):
        ranks = rank_scores({"a": 10.0, "b": 5.0}, higher_is_better=False)
        assert ranks["b"] == 1.0 and ranks["a"] == 2.0

    def test_ties_share_average_rank(self):
        ranks = rank_scores({"a": 0.5, "b": 0.5, "c": 0.1})
        assert ranks["a"] == ranks["b"] == 1.5
        assert ranks["c"] == 3.0

    def test_average_ranks_and_means(self):
        per_dataset = [{"a": 0.9, "b": 0.1}, {"a": 0.2, "b": 0.8}]
        averaged = average_ranks(per_dataset)
        assert averaged["a"] == averaged["b"] == 1.5
        means = mean_scores(per_dataset)
        assert means["a"] == pytest.approx(0.55)

    def test_average_ranks_requires_consistent_methods(self):
        with pytest.raises(ValueError):
            average_ranks([{"a": 1.0}, {"b": 1.0}])

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            rank_scores({})
        with pytest.raises(ValueError):
            average_ranks([])
        with pytest.raises(ValueError):
            mean_scores([])
