"""Unit tests of dataset-level explanation aggregation (repro.core.aggregate)."""

import numpy as np
import pytest

from repro.core import (
    DCAMResult,
    activation_per_segment,
    max_activation_per_dimension,
    mean_activation_per_dimension,
    mean_activation_per_segment,
    top_discriminant_dimensions,
    top_discriminant_segments,
)


def _fake_result(dcam: np.ndarray) -> DCAMResult:
    n_dims, length = dcam.shape
    return DCAMResult(dcam=dcam, m_bar=np.zeros((n_dims, n_dims, length)),
                      averaged_cam=dcam.mean(axis=0), class_id=0, k=1, n_correct=1)


@pytest.fixture
def synthetic_results():
    # Three instances, 4 dimensions, length 12.  Dimension 2 carries the
    # strongest activation, localized in the second half of the series.
    results = []
    for scale in (1.0, 1.2, 0.8):
        dcam = np.full((4, 12), 0.1)
        dcam[2, 6:] = 2.0 * scale
        dcam[0, :3] = 0.5 * scale
        results.append(_fake_result(dcam))
    return results


SEGMENTS = [("G1", 0, 6), ("G2", 6, 12)]


class TestPerDimensionAggregates:
    def test_max_activation_shape_and_values(self, synthetic_results):
        table = max_activation_per_dimension(synthetic_results)
        assert table.shape == (3, 4)
        assert table[:, 2].min() > table[:, 1].max()

    def test_mean_activation(self, synthetic_results):
        means = mean_activation_per_dimension(synthetic_results)
        assert means.shape == (4,)
        assert means.argmax() == 2

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            max_activation_per_dimension([])
        with pytest.raises(ValueError):
            mean_activation_per_dimension([])

    def test_top_discriminant_dimensions(self, synthetic_results):
        top = top_discriminant_dimensions(synthetic_results, top_k=2)
        assert top[0] == 2
        assert len(top) == 2


class TestPerSegmentAggregates:
    def test_activation_per_segment(self, synthetic_results):
        per_segment = activation_per_segment(synthetic_results[0], SEGMENTS)
        assert set(per_segment) == {"G1", "G2"}
        assert per_segment["G2"][2] > per_segment["G1"][2]

    def test_segment_bounds_validated(self, synthetic_results):
        with pytest.raises(ValueError):
            activation_per_segment(synthetic_results[0], [("bad", 5, 50)])

    def test_repeated_segment_labels_are_averaged(self, synthetic_results):
        segments = [("G1", 0, 3), ("G1", 3, 6)]
        per_segment = activation_per_segment(synthetic_results[0], segments)
        assert set(per_segment) == {"G1"}

    def test_mean_activation_per_segment_across_instances(self, synthetic_results):
        per_segment = mean_activation_per_segment(synthetic_results,
                                                  [SEGMENTS] * len(synthetic_results))
        assert per_segment["G2"].shape == (4,)
        assert per_segment["G2"][2] > per_segment["G2"][0]

    def test_alignment_validated(self, synthetic_results):
        with pytest.raises(ValueError):
            mean_activation_per_segment(synthetic_results, [SEGMENTS])

    def test_top_discriminant_segments(self, synthetic_results):
        top = top_discriminant_segments(synthetic_results,
                                        [SEGMENTS] * len(synthetic_results), top_k=1)
        assert top[0][0] == "G2"
