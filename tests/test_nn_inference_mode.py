"""Tests of the graph-free inference mode (repro.nn.tensor grad switch)."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Conv2d,
    Tensor,
    inference_mode,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)
from repro.nn.functional import conv2d, max_pool2d


class TestGradModeSwitch:
    def test_enabled_by_default(self):
        assert is_grad_enabled()

    def test_set_grad_enabled_returns_previous(self):
        assert set_grad_enabled(False) is True
        assert set_grad_enabled(True) is False
        assert is_grad_enabled()

    def test_context_disables_and_restores(self):
        with inference_mode():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with inference_mode():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_nested_contexts(self):
        with inference_mode():
            with inference_mode():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_single_instance_reused_nested(self):
        mode = inference_mode()
        with mode:
            with mode:
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_alias(self):
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestGraphFreeOps:
    def test_ops_record_no_parents(self):
        x = Tensor(np.arange(3.0), requires_grad=True)
        with inference_mode():
            y = (x * x).sum()
        assert not y.requires_grad
        assert y._parents == ()
        assert y._backward_fn is None

    def test_values_match_grad_mode(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        expected = (x.relu() * 2.0 + x.tanh()).mean(axis=1)
        with inference_mode():
            observed = (x.relu() * 2.0 + x.tanh()).mean(axis=1)
        np.testing.assert_allclose(observed.data, expected.data)
        assert not observed.requires_grad

    def test_backward_works_after_exit(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        with inference_mode():
            (x * x).sum()
        y = (x * x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [2.0, 4.0])

    def test_conv2d_inference_matches_grad_path(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((2, 3, 4, 10)))
        layer = Conv2d(3, 5, (1, 3), padding=(0, 1), rng=rng)
        expected = layer(x)
        with inference_mode():
            observed = layer(x)
        np.testing.assert_allclose(observed.data, expected.data, atol=1e-12)
        assert observed._parents == ()

    def test_conv2d_grad_path_unaffected(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.standard_normal((1, 2, 3, 6)), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 2, 1, 3)), requires_grad=True)
        out = conv2d(x, w, padding=(0, 1))
        out.sum().backward()
        assert x.grad is not None and w.grad is not None

    def test_max_pool_inference_matches_grad_path(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.standard_normal((2, 3, 4, 8)), requires_grad=True)
        expected = max_pool2d(x, (1, 2))
        with inference_mode():
            observed = max_pool2d(x, (1, 2))
        np.testing.assert_allclose(observed.data, expected.data)
        assert observed._parents == ()

    def test_batchnorm_eval_inference_matches_grad_path(self):
        rng = np.random.default_rng(4)
        layer = BatchNorm(3)
        layer.running_mean = rng.standard_normal(3)
        layer.running_var = rng.random(3) + 0.5
        layer.weight.data[...] = rng.standard_normal(3)
        layer.bias.data[...] = rng.standard_normal(3)
        layer.eval()
        x = Tensor(rng.standard_normal((4, 3, 6)))
        expected = layer(x)
        with inference_mode():
            observed = layer(x)
        np.testing.assert_allclose(observed.data, expected.data, atol=1e-12)
