"""Unit tests of modules / layers (repro.nn.layers) and serialization."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Conv1d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAveragePooling,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool1d,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    load_state_dict,
    save_state_dict,
)


class TestModuleDiscovery:
    def test_named_parameters_nested(self):
        model = Sequential(Linear(4, 3), ReLU(), Linear(3, 2))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == 4  # two weights + two biases
        assert all("children_list" in name for name in names)

    def test_parameters_in_lists_are_discovered(self):
        class WithList(Module):
            def __init__(self):
                super().__init__()
                self.layers = [Linear(2, 2), Linear(2, 2)]

            def forward(self, x):
                return self.layers[1](self.layers[0](x))

        model = WithList()
        assert len(model.parameters()) == 4

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), Dropout(0.5), BatchNorm(2))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_zero_grad_clears_all(self):
        layer = Linear(3, 2)
        out = layer(Tensor(np.ones((1, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        model = Sequential(Linear(3, 4), BatchNorm(4), Linear(4, 2))
        state = model.state_dict()
        clone = Sequential(Linear(3, 4), BatchNorm(4), Linear(4, 2))
        clone.load_state_dict(state)
        x = np.random.default_rng(0).standard_normal((5, 3))
        model.eval()
        clone.eval()
        np.testing.assert_allclose(model(Tensor(x)).data, clone(Tensor(x)).data)

    def test_load_state_dict_rejects_unknown_key(self):
        model = Linear(2, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({"nonexistent": np.zeros(2)})

    def test_load_state_dict_rejects_shape_mismatch(self):
        model = Linear(2, 2)
        state = model.state_dict()
        bad = {name: np.zeros((7, 7)) for name in state if not name.startswith("buffer.")}
        with pytest.raises(ValueError):
            model.load_state_dict(bad)

    def test_save_and_load_to_disk(self, tmp_path):
        model = Sequential(Linear(3, 3), BatchNorm(3))
        path = str(tmp_path / "weights.npz")
        save_state_dict(model, path)
        clone = Sequential(Linear(3, 3), BatchNorm(3))
        load_state_dict(clone, path)
        x = np.ones((2, 3))
        model.eval()
        clone.eval()
        np.testing.assert_allclose(model(Tensor(x)).data, clone(Tensor(x)).data)


class TestLinearConv:
    def test_linear_shapes(self):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((2, 5))))
        assert out.shape == (2, 3)

    def test_linear_no_bias(self):
        layer = Linear(5, 3, bias=False)
        assert layer.bias is None

    def test_conv1d_same_padding_preserves_length(self):
        layer = Conv1d(2, 4, 3, padding=1, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((1, 2, 9))))
        assert out.shape == (1, 4, 9)

    def test_conv2d_kernel_1xk(self):
        layer = Conv2d(3, 6, (1, 5), padding=(0, 2), rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((2, 3, 4, 11))))
        assert out.shape == (2, 6, 4, 11)

    def test_conv_training_reduces_loss(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((8, 1, 16))
        target = x[:, :, ::2] * 2.0
        layer = Conv1d(1, 1, 3, padding=1, rng=rng)
        from repro.nn import Adam
        optimizer = Adam(layer.parameters(), lr=0.05)
        first_loss = None
        for _ in range(30):
            out = layer(Tensor(x))[:, :, ::2]
            loss = ((out - Tensor(target)) ** 2).mean()
            if first_loss is None:
                first_loss = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss


class TestBatchNorm:
    def test_training_normalises_batch(self):
        layer = BatchNorm(3)
        x = np.random.default_rng(2).standard_normal((32, 3, 20)) * 5 + 7
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2)), np.zeros(3), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2)), np.ones(3), atol=1e-3)

    def test_running_stats_updated(self):
        layer = BatchNorm(2, momentum=0.5)
        x = np.ones((4, 2, 5)) * 3.0
        layer(Tensor(x))
        assert np.all(layer.running_mean > 0)

    def test_eval_uses_running_stats(self):
        layer = BatchNorm(2)
        x = np.random.default_rng(3).standard_normal((16, 2, 10)) + 4.0
        for _ in range(20):
            layer(Tensor(x))
        layer.eval()
        out_eval = layer(Tensor(x)).data
        # With converged running statistics, eval output is close to normalized.
        assert abs(out_eval.mean()) < 0.5

    def test_channel_mismatch_raises(self):
        layer = BatchNorm(3)
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((2, 4, 5))))

    def test_2d_input_supported(self):
        layer = BatchNorm(4)
        out = layer(Tensor(np.random.default_rng(4).standard_normal((8, 4))))
        assert out.shape == (8, 4)


class TestActivationsAndPooling:
    def test_identity(self):
        x = Tensor(np.ones(3))
        assert Identity()(x) is x

    @pytest.mark.parametrize("layer, value, expected", [
        (ReLU(), -1.0, 0.0),
        (LeakyReLU(0.1), -1.0, -0.1),
        (Tanh(), 0.0, 0.0),
        (Sigmoid(), 0.0, 0.5),
    ])
    def test_activation_values(self, layer, value, expected):
        out = layer(Tensor(np.array([value])))
        np.testing.assert_allclose(out.data, [expected], atol=1e-12)

    def test_max_pool_layers(self):
        x1 = Tensor(np.arange(8.0).reshape(1, 1, 8))
        assert MaxPool1d(2)(x1).shape == (1, 1, 4)
        x2 = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        assert MaxPool2d((2, 2))(x2).shape == (1, 1, 2, 2)

    def test_gap_layer(self):
        x = Tensor(np.ones((2, 5, 3, 4)))
        assert GlobalAveragePooling()(x).shape == (2, 5)

    def test_flatten_layer(self):
        x = Tensor(np.ones((2, 3, 4)))
        assert Flatten()(x).shape == (2, 12)

    def test_dropout_layer_respects_mode(self):
        layer = Dropout(0.9, rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(layer(x).data, x.data)


class TestSequential:
    def test_iteration_and_indexing(self):
        block = Sequential(Linear(2, 3), ReLU())
        assert len(block) == 2
        assert isinstance(block[1], ReLU)
        assert [type(m).__name__ for m in block] == ["Linear", "ReLU"]

    def test_append(self):
        block = Sequential(Linear(2, 2))
        block.append(ReLU())
        assert len(block) == 2

    def test_forward_composition(self):
        block = Sequential(Linear(3, 3, rng=np.random.default_rng(0)), ReLU())
        out = block(Tensor(np.ones((1, 3))))
        assert (out.data >= 0).all()
