"""Tests of the experiment drivers (configs, reporting, micro-scale runs).

The drivers are exercised at a micro scale (1-2 epochs, 2-4 dimensions) so
this module stays fast; the benchmark harness under ``benchmarks/`` runs the
same drivers at a larger scale.
"""

import numpy as np
import pytest

from repro.experiments import (
    EXTRACTION_VARIANTS,
    extract_variant,
    format_series,
    format_table,
    get_scale,
    paper_scale,
    run_extraction_ablation,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_figure13,
    run_ng_filter_ablation,
    run_table2,
    run_table3,
    small_scale,
    tiny_scale,
)
from repro.models import TrainingConfig


@pytest.fixture(scope="module")
def micro_scale():
    """Even smaller than the tiny preset: 2 epochs, minimal widths."""
    scale = tiny_scale(random_state=0)
    return scale.with_overrides(
        name="micro",
        k_permutations=4,
        n_explained_instances=2,
        dimension_sweep=(3,),
        training=TrainingConfig(epochs=2, batch_size=8, learning_rate=3e-3,
                                patience=5, random_state=0),
    )


class TestScales:
    def test_presets_exist(self):
        assert get_scale("tiny").name == "tiny"
        assert get_scale("small").name == "small"
        assert get_scale("paper").name == "paper"
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_paper_scale_matches_section_5(self):
        scale = paper_scale()
        assert scale.k_permutations == 100
        assert scale.n_runs == 10
        assert scale.training.batch_size == 16
        assert scale.cnn_kwargs["filters"] == (64, 128, 256, 256, 256)
        assert scale.dimension_sweep == (10, 20, 40, 60, 100)

    def test_model_kwargs_dispatch(self):
        scale = small_scale()
        assert scale.model_kwargs("dcnn") == scale.cnn_kwargs
        assert scale.model_kwargs("cResNet") == scale.resnet_kwargs
        assert scale.model_kwargs("dInceptionTime") == scale.inception_kwargs
        assert scale.model_kwargs("lstm") == scale.recurrent_kwargs
        assert scale.model_kwargs("mtex") == scale.mtex_kwargs

    def test_with_overrides_returns_copy(self):
        scale = tiny_scale()
        other = scale.with_overrides(k_permutations=99)
        assert other.k_permutations == 99
        assert scale.k_permutations != 99


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        rows = [{"name": "a", "value": 0.123456}, {"name": "bbb", "value": 1.0}]
        text = format_table(rows, title="My table")
        assert "My table" in text
        assert "0.123" in text
        assert text.count("\n") >= 3

    def test_format_table_empty(self):
        assert format_table([], title="empty") == "empty"

    def test_format_table_unions_keys_from_later_rows(self):
        rows = [{"name": "a"}, {"name": "b", "extra": 3.0}]
        text = format_table(rows)
        assert "extra" in text
        assert "3.000" in text

    def test_format_series(self):
        text = format_series({"m1": [0.1, 0.2], "m2": [0.3, 0.4]}, "D", [10, 20])
        assert "m1" in text and "m2" in text and "10" in text


class TestTableDrivers:
    def test_table2_structure(self, micro_scale):
        result = run_table2(micro_scale, dataset_names=["PenDigits"],
                            models=["gru", "cnn", "dcnn"])
        assert "PenDigits" in result.accuracies
        scores = result.accuracies["PenDigits"]
        assert set(scores) == {"gru", "cnn", "dcnn"}
        assert all(0.0 <= value <= 1.0 for value in scores.values())
        assert set(result.mean_row) == {"gru", "cnn", "dcnn"}
        assert set(result.rank_row) == {"gru", "cnn", "dcnn"}
        assert "Table 2" in result.format()

    def test_table3_structure(self, micro_scale):
        result = run_table3(micro_scale, seeds=["starlight"], dataset_types=(1,),
                            dimensions=[3], models=["resnet", "dcnn"])
        assert len(result.rows) == 1
        row = result.rows[0]
        assert set(row.c_acc) == {"resnet", "dcnn"}
        assert set(row.dr_acc) == {"resnet", "dcnn"}
        assert 0.0 <= row.random_dr_acc <= 1.0
        assert "dcnn" in row.success_ratio
        assert "Table 3" in result.format()
        assert set(result.c_acc_ranks()) == {"resnet", "dcnn"}


class TestFigureDrivers:
    def test_figure8(self, micro_scale):
        result = run_figure8(micro_scale, dataset_names=["PenDigits"],
                             pairs={"dcnn": ["cnn"]})
        assert ("dcnn", "cnn") in result.points
        assert len(result.points[("dcnn", "cnn")]) == 1
        assert result.wins("dcnn", "cnn") in (0, 1)
        assert "Figure 8" in result.format()

    def test_figure9(self, micro_scale):
        result = run_figure9(micro_scale, dimensions=[3], models=["dcnn"])
        series = result.series("c_acc", 1)
        assert series["dcnn"][0] >= 0.0
        harmonic = result.harmonic_series("dr_acc")
        assert len(harmonic["dcnn"]) == 1
        assert "Figure 9" in result.format()

    def test_figure10(self, micro_scale):
        result = run_figure10(micro_scale, dimensions=[3], models=["dcnn"],
                              dataset_types=(1,), k_values=[1, 3])
        assert result.k_values == [1, 3]
        key = ("dcnn", 1, 3)
        assert key in result.curves
        assert len(result.curves[key]) == 2
        needed = result.permutations_to_reach(0.9)
        assert needed[key] in (1, 3)
        assert "Figure 10" in result.format()

    def test_figure11(self, micro_scale):
        result = run_figure11(micro_scale, models=["dcnn"], seeds=["starlight"],
                              dataset_types=(1,), dimensions=[3])
        assert len(result.points) == 1
        point = result.points[0]
        assert 0.0 <= point.c_acc <= 1.0
        assert 0.0 <= point.dr_acc <= 1.0
        assert 0.0 <= point.success_ratio <= 1.0
        assert "Figure 11" in result.format()

    def test_figure12(self, micro_scale):
        result = run_figure12(micro_scale, models=["cnn", "dcnn"], lengths=[16, 24],
                              dimensions=[3, 4], k_values=[1, 2],
                              include_convergence=True)
        assert len(result.epoch_time_vs_length["cnn"]) == 2
        assert len(result.epoch_time_vs_dimensions["dcnn"]) == 2
        assert len(result.dcam_time_vs_k["dcnn"]) == 2
        assert all(value > 0 for value in result.dcam_time_vs_k["dcnn"])
        assert len(result.convergence) == 2
        assert "Figure 12" in result.format()

    def test_figure12_dcam_time_grows_with_k(self, micro_scale):
        # The batched pipeline folds all permutations of one dCAM call into
        # micro-batches of `dcam_batch_size`, so two k values only differ
        # measurably once the larger one spans several micro-batches.
        result = run_figure12(micro_scale, models=[], lengths=[16], dimensions=[4],
                              k_values=[1, 256], include_convergence=False)
        times = result.dcam_time_vs_k["dcnn"]
        assert times[1] > times[0]

    def test_figure13(self, micro_scale):
        from repro.data import JigsawsConfig
        result = run_figure13(micro_scale,
                              jigsaws_config=JigsawsConfig(n_novice=3, n_intermediate=2,
                                                           n_expert=2, gesture_length=4,
                                                           random_state=0),
                              top_k_sensors=4, top_k_gestures=2)
        assert 0.0 <= result.test_accuracy <= 1.0
        assert result.max_activation.shape[1] == 76
        assert len(result.top_sensors) == 4
        assert len(result.top_gestures) == 2
        assert set(result.per_gesture_activation) == set(f"G{i}" for i in range(1, 12))
        assert 0.0 <= result.sensor_recovery_rate() <= 1.0
        assert "Figure 13" in result.format()


class TestAblations:
    def test_extraction_variants(self):
        m_bar = np.random.default_rng(0).standard_normal((3, 3, 5))
        for variant in EXTRACTION_VARIANTS:
            heatmap = extract_variant(m_bar, variant)
            assert heatmap.shape == (3, 5)
        with pytest.raises(ValueError):
            extract_variant(m_bar, "nope")

    def test_extraction_ablation_driver(self, micro_scale):
        result = run_extraction_ablation(micro_scale, dataset_types=(1,))
        assert len(result.rows) == 1
        row = result.rows[0]
        assert all(variant in row for variant in EXTRACTION_VARIANTS)
        assert "ablation" in result.format("extraction ablation").lower()

    def test_ng_filter_ablation_driver(self, micro_scale):
        result = run_ng_filter_ablation(micro_scale, dataset_types=(1,))
        row = result.rows[0]
        assert "all_permutations" in row and "only_correct" in row
        assert 0.0 <= row["ng/k"] <= 1.0
