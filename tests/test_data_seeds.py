"""Unit tests of the seed series generators (repro.data.seeds)."""

import numpy as np
import pytest

from repro.data import SEED_NAMES, seed_background, seed_instance


class TestSeedInstance:
    @pytest.mark.parametrize("seed_name", SEED_NAMES)
    @pytest.mark.parametrize("class_id", [0, 1])
    def test_length_and_finiteness(self, seed_name, class_id):
        series = seed_instance(seed_name, class_id, 64, np.random.default_rng(0))
        assert series.shape == (64,)
        assert np.isfinite(series).all()

    @pytest.mark.parametrize("seed_name", SEED_NAMES)
    def test_classes_are_distinguishable(self, seed_name):
        """The two classes should differ much more than two draws of one class."""
        rng = np.random.default_rng(1)
        class0 = np.stack([seed_instance(seed_name, 0, 128, rng) for _ in range(20)])
        class1 = np.stack([seed_instance(seed_name, 1, 128, rng) for _ in range(20)])
        within = np.abs(class0.mean(axis=0) - class0[10:].mean(axis=0)).mean()
        between = np.abs(class0.mean(axis=0) - class1.mean(axis=0)).mean()
        assert between > within

    @pytest.mark.parametrize("seed_name", SEED_NAMES)
    def test_invalid_class_raises(self, seed_name):
        with pytest.raises(ValueError):
            seed_instance(seed_name, 2, 32, np.random.default_rng(0))

    def test_unknown_seed_name_raises(self):
        with pytest.raises(KeyError):
            seed_instance("does-not-exist", 0, 32)

    def test_randomness_controlled_by_rng(self):
        a = seed_instance("starlight", 0, 64, np.random.default_rng(5))
        b = seed_instance("starlight", 0, 64, np.random.default_rng(5))
        c = seed_instance("starlight", 0, 64, np.random.default_rng(6))
        np.testing.assert_allclose(a, b)
        assert not np.allclose(a, c)


class TestSeedBackground:
    def test_total_length(self):
        background = seed_background("shapes", 0, 100, 32, np.random.default_rng(0))
        assert background.shape == (100,)

    def test_exact_multiple_length(self):
        background = seed_background("fish", 1, 96, 32, np.random.default_rng(0))
        assert background.shape == (96,)

    def test_concatenation_of_distinct_instances(self):
        background = seed_background("starlight", 0, 128, 32, np.random.default_rng(2))
        # Consecutive chunks come from different random instances.
        assert not np.allclose(background[:32], background[32:64])
