"""Work kinds used by the fleet tests — importable by subprocess workers.

Workers started via ``python -m repro worker --provider fleet_provider``
import this module by name, which registers the test kinds below as a side
effect (the test process imports it too, so fingerprints agree on both
sides).  Keep this module dependency-free beyond :mod:`repro` itself: it is
imported inside bare worker processes that only have ``src`` and ``tests``
on their path.
"""

import os

from repro.runtime import register_work


@register_work("_fleet_echo")
def _fleet_echo(scale, *, value):
    """Return ``value`` unchanged; the cheapest possible distributed unit."""
    return value


@register_work("_fleet_square")
def _fleet_square(scale, *, value):
    """Deterministic arithmetic so fleet-vs-serial identity is checkable."""
    return value * value


@register_work("_fleet_touch_count")
def _fleet_touch_count(scale, *, value, counter_dir):
    """Append one file per execution — counts *executions* across processes.

    The warm-store dedupe tests assert on the number of files: a unit served
    from the shared cache never runs this body, so it leaves no trace.
    """
    os.makedirs(counter_dir, exist_ok=True)
    with open(os.path.join(counter_dir, f"{os.getpid()}-{value}-{os.urandom(4).hex()}"), "w"):
        pass
    return value


@register_work("_fleet_fail")
def _fleet_fail(scale, *, value):
    """Always raise — exercises the fail/requeue/max-attempts path."""
    raise RuntimeError(f"fleet unit {value} exploded")


@register_work("_fleet_suicide")
def _fleet_suicide(scale, *, value, marker):
    """Kill the hosting worker process on the first attempt, succeed after.

    The first worker to lease this unit writes ``marker`` and dies without
    replying — exactly the silent mid-unit crash the lease-expiry path must
    survive.  Any later attempt (the marker now exists) just returns.
    """
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(1)
    return value
