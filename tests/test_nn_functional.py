"""Unit tests of convolution / pooling / softmax ops (repro.nn.functional)."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from tests.helpers import numerical_gradient


def _loss_of(builder):
    return float((builder().data ** 2).sum())


class TestConv2d:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.x = rng.standard_normal((2, 3, 4, 7))
        self.w = rng.standard_normal((5, 3, 2, 3))
        self.b = rng.standard_normal(5)

    def _forward(self, stride=(1, 1), padding=(0, 0)):
        return F.conv2d(Tensor(self.x), Tensor(self.w), Tensor(self.b),
                        stride=stride, padding=padding)

    def test_output_shape_no_padding(self):
        assert self._forward().shape == (2, 5, 3, 5)

    def test_output_shape_with_padding(self):
        assert self._forward(padding=(1, 1)).shape == (2, 5, 5, 7)

    def test_output_shape_with_stride(self):
        assert self._forward(stride=(1, 2)).shape == (2, 5, 3, 3)

    def test_matches_naive_convolution(self):
        out = self._forward().data
        batch, out_ch, out_h, out_w = out.shape
        naive = np.zeros_like(out)
        for b in range(batch):
            for o in range(out_ch):
                for i in range(out_h):
                    for j in range(out_w):
                        patch = self.x[b, :, i: i + 2, j: j + 3]
                        naive[b, o, i, j] = (patch * self.w[o]).sum() + self.b[o]
        np.testing.assert_allclose(out, naive, rtol=1e-10)

    def test_gradients_match_numerical(self):
        x_t = Tensor(self.x.copy(), requires_grad=True)
        w_t = Tensor(self.w.copy(), requires_grad=True)
        b_t = Tensor(self.b.copy(), requires_grad=True)
        out = F.conv2d(x_t, w_t, b_t, padding=(0, 1))
        (out * out).sum().backward()

        def loss():
            return _loss_of(lambda: F.conv2d(Tensor(x_t.data), Tensor(w_t.data),
                                             Tensor(b_t.data), padding=(0, 1)))

        np.testing.assert_allclose(numerical_gradient(loss, x_t.data), x_t.grad,
                                   rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(numerical_gradient(loss, w_t.data), w_t.grad,
                                   rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(numerical_gradient(loss, b_t.data), b_t.grad,
                                   rtol=1e-4, atol=1e-6)

    def test_gradients_with_stride(self):
        x_t = Tensor(self.x.copy(), requires_grad=True)
        w_t = Tensor(self.w.copy(), requires_grad=True)
        out = F.conv2d(x_t, w_t, None, stride=(1, 2))
        (out * out).sum().backward()

        def loss():
            return _loss_of(lambda: F.conv2d(Tensor(x_t.data), Tensor(w_t.data),
                                             None, stride=(1, 2)))

        np.testing.assert_allclose(numerical_gradient(loss, x_t.data), x_t.grad,
                                   rtol=1e-4, atol=1e-6)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((3, 5, 1, 1))))


class TestConv1d:
    def test_shape_and_values(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 3, 10))
        w = rng.standard_normal((4, 3, 3))
        out = F.conv1d(Tensor(x), Tensor(w), padding=1)
        assert out.shape == (2, 4, 10)
        # Compare against conv2d on an expanded input.
        expected = F.conv2d(Tensor(x[:, :, None, :]), Tensor(w[:, :, None, :]),
                            padding=(0, 1)).data[:, :, 0, :]
        np.testing.assert_allclose(out.data, expected)

    def test_gradient_flow(self):
        x = Tensor(np.random.default_rng(2).standard_normal((1, 2, 8)), requires_grad=True)
        w = Tensor(np.random.default_rng(3).standard_normal((3, 2, 3)), requires_grad=True)
        F.conv1d(x, w, padding=1).sum().backward()
        assert x.grad is not None and x.grad.shape == x.shape
        assert w.grad is not None and w.grad.shape == w.shape


class TestPooling:
    def test_max_pool2d_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, (2, 2))
        np.testing.assert_allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool2d_gradient_routes_to_max(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, (2, 2)).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_max_pool1d(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 5.0]]]))
        out = F.max_pool1d(x, 2)
        np.testing.assert_allclose(out.data, [[[3.0, 5.0]]])

    def test_global_average_pool_3d_and_4d(self):
        x3 = Tensor(np.ones((2, 3, 5)) * 2.0)
        x4 = Tensor(np.ones((2, 3, 4, 5)) * 3.0)
        np.testing.assert_allclose(F.global_average_pool(x3).data, np.full((2, 3), 2.0))
        np.testing.assert_allclose(F.global_average_pool(x4).data, np.full((2, 3), 3.0))

    def test_global_average_pool_gradient(self):
        x = Tensor(np.random.default_rng(4).standard_normal((2, 3, 5)), requires_grad=True)
        F.global_average_pool(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3, 5), 1.0 / 5.0))


class TestSoftmaxDropoutLinear:
    def test_softmax_sums_to_one(self):
        x = Tensor(np.random.default_rng(5).standard_normal((4, 6)) * 10)
        probs = F.softmax(x).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), rtol=1e-12)
        assert (probs >= 0).all()

    def test_softmax_is_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        probs = F.softmax(x).data
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(6).standard_normal((3, 4)))
        np.testing.assert_allclose(F.log_softmax(x).data, np.log(F.softmax(x).data),
                                   rtol=1e-10)

    def test_dropout_disabled_in_eval(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_linear_matches_manual(self):
        x = Tensor(np.random.default_rng(8).standard_normal((4, 3)))
        w = Tensor(np.random.default_rng(9).standard_normal((2, 3)))
        b = Tensor(np.array([1.0, -1.0]))
        np.testing.assert_allclose(F.linear(x, w, b).data, x.data @ w.data.T + b.data)
