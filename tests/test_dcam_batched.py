"""Equivalence tests: batched no-grad dCAM vs the legacy per-permutation path."""

import numpy as np
import pytest

from repro.core.dcam import (
    _m_transform,
    _permutation_cam,
    compute_dcam,
    compute_dcam_batch,
    extract_dcam,
    merge_permutation_cams,
)
from repro.core.input_transform import random_permutations
from repro.nn import is_grad_enabled

ATOL = 1e-10


def legacy_dcam(model, series, class_id, permutations):
    """The seed implementation: k graph-recording batch-size-1 passes plus a
    Python-loop merge of (D, D, n) M-transform temporaries."""
    model.eval()
    collected = []
    n_correct = 0
    for order in permutations:
        cam_rows, predicted = _permutation_cam(model, series, class_id, order)
        collected.append((cam_rows, order))
        if predicted == class_id:
            n_correct += 1
    total = None
    for cam_rows, order in collected:
        transformed = _m_transform(cam_rows, np.asarray(order))
        total = transformed if total is None else total + transformed
    m_bar = total / len(collected)
    dcam, averaged_cam = extract_dcam(m_bar)
    return dcam, m_bar, averaged_cam, n_correct


class TestBatchedEquivalence:
    def test_matches_legacy_path(self, trained_dcnn, tiny_type1_dataset):
        series = tiny_type1_dataset.X[0]
        perms = random_permutations(tiny_type1_dataset.n_dimensions, 12,
                                    np.random.default_rng(7))
        dcam, m_bar, averaged_cam, n_correct = legacy_dcam(trained_dcnn, series, 1, perms)
        result = compute_dcam(trained_dcnn, series, 1, permutations=perms)
        assert result.n_correct == n_correct
        np.testing.assert_allclose(result.dcam, dcam, rtol=0, atol=ATOL)
        np.testing.assert_allclose(result.m_bar, m_bar, rtol=0, atol=ATOL)
        np.testing.assert_allclose(result.averaged_cam, averaged_cam, rtol=0, atol=ATOL)

    def test_matches_legacy_with_only_correct_filter(self, trained_dcnn, tiny_type1_dataset):
        series = tiny_type1_dataset.X[1]
        perms = random_permutations(tiny_type1_dataset.n_dimensions, 8,
                                    np.random.default_rng(3))
        result = compute_dcam(trained_dcnn, series, 1, permutations=perms,
                              use_only_correct=True)
        # Reference: filter manually, merge with the public API.
        trained_dcnn.eval()
        kept = []
        for order in perms:
            cam_rows, predicted = _permutation_cam(trained_dcnn, series, 1, order)
            if predicted == 1:
                kept.append((cam_rows, order))
        if kept:
            expected, _ = extract_dcam(merge_permutation_cams(kept))
            np.testing.assert_allclose(result.dcam, expected, rtol=0, atol=ATOL)

    @pytest.mark.parametrize("batch_size", [1, 2, 3, 5, 12, 64])
    def test_independent_of_batch_size(self, trained_dcnn, tiny_type1_dataset, batch_size):
        series = tiny_type1_dataset.X[2]
        perms = random_permutations(tiny_type1_dataset.n_dimensions, 12,
                                    np.random.default_rng(11))
        reference = compute_dcam(trained_dcnn, series, 1, permutations=perms, batch_size=12)
        result = compute_dcam(trained_dcnn, series, 1, permutations=perms,
                              batch_size=batch_size)
        assert result.n_correct == reference.n_correct
        np.testing.assert_allclose(result.dcam, reference.dcam, rtol=0, atol=ATOL)

    def test_batch_pipeline_matches_instance_loop(self, trained_dcnn, tiny_type1_dataset):
        X = tiny_type1_dataset.X[:4]
        y = tiny_type1_dataset.y[:4]
        batched = compute_dcam_batch(trained_dcnn, X, y, k=5,
                                     rng=np.random.default_rng(9), batch_size=7)
        looped = [
            compute_dcam(trained_dcnn, X[index], int(y[index]), k=5,
                         rng=np.random.default_rng(9))
            for index in [0]
        ]
        # Same generator state sequence: instance 0 must agree exactly.
        np.testing.assert_allclose(batched[0].dcam, looped[0].dcam, rtol=0, atol=ATOL)
        assert batched[0].n_correct == looped[0].n_correct
        assert len(batched) == 4

    def test_grad_mode_restored_after_compute(self, trained_dcnn, tiny_type1_dataset):
        compute_dcam(trained_dcnn, tiny_type1_dataset.X[0], 1, k=3,
                     rng=np.random.default_rng(0))
        assert is_grad_enabled()

    def test_rejects_ragged_permutations(self, trained_dcnn, tiny_type1_dataset):
        with pytest.raises(ValueError):
            compute_dcam(trained_dcnn, tiny_type1_dataset.X[0], 1,
                         permutations=[np.arange(4), np.arange(3)])

    def test_rejects_non_permutation(self, trained_dcnn, tiny_type1_dataset):
        with pytest.raises(ValueError, match="not a permutation"):
            compute_dcam(trained_dcnn, tiny_type1_dataset.X[0], 1,
                         permutations=[np.array([0, 0, 1, 2])])

    def test_rejects_float_permutation(self, trained_dcnn, tiny_type1_dataset):
        with pytest.raises(ValueError, match="integer"):
            compute_dcam(trained_dcnn, tiny_type1_dataset.X[0], 1,
                         permutations=[np.array([0.9, 1.2, 2.0, 3.0])])


class TestMergeValidation:
    def test_requires_matching_cam_shapes(self):
        rng = np.random.default_rng(0)
        pairs = [
            (rng.standard_normal((4, 6)), np.arange(4)),
            (rng.standard_normal((4, 7)), np.arange(4)),
        ]
        with pytest.raises(ValueError, match="shape"):
            merge_permutation_cams(pairs)

    def test_requires_matching_order_length(self):
        rng = np.random.default_rng(0)
        pairs = [(rng.standard_normal((4, 6)), np.arange(3))]
        with pytest.raises(ValueError, match="order #0"):
            merge_permutation_cams(pairs)

    def test_rejects_non_permutation_order(self):
        rng = np.random.default_rng(0)
        pairs = [(rng.standard_normal((4, 6)), np.array([0, 1, 1, 3]))]
        with pytest.raises(ValueError, match="not a permutation"):
            merge_permutation_cams(pairs)

    def test_rejects_one_dimensional_cam(self):
        pairs = [(np.zeros(4), np.arange(4))]
        with pytest.raises(ValueError, match="cam_rows #0"):
            merge_permutation_cams(pairs)

    def test_matches_per_pair_m_transform_average(self):
        rng = np.random.default_rng(5)
        pairs = [
            (rng.standard_normal((5, 9)), rng.permutation(5))
            for _ in range(7)
        ]
        expected = np.mean(
            [_m_transform(cam, np.asarray(order)) for cam, order in pairs], axis=0
        )
        np.testing.assert_allclose(merge_permutation_cams(pairs), expected,
                                   rtol=0, atol=ATOL)
