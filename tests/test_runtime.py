"""Tests of the repro.runtime job-graph executor (specs, cache, determinism, CLI).

The key guarantees pinned here:

* serial and parallel execution produce *identical* (exact float equality)
  results — per-unit seeds derive from the unit parameters alone;
* cache hits are byte-identical to cold runs;
* drivers sharing a protocol (Table 3 / Figure 9) share cache entries.
"""

import json
import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.experiments import (
    get_scale,
    run_figure9,
    run_table3,
    table2_spec,
    table3_spec,
    tiny_scale,
)
from repro.models import TrainingConfig
from repro.models.registry import kwargs_family_of_model
from repro.runtime import (
    ExperimentSpec,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    WorkUnit,
    canonicalize,
    decanonicalize,
    execute_unit,
    register_work,
    resolve_work,
    run,
    unit_fingerprint,
)
from repro.runtime.cli import main as cli_main
from repro.runtime.executor import executor_label, make_executor


@register_work("_test_maybe_fail")
def _maybe_fail(scale, *, value, fail=False):
    """Tiny work function for the partial-failure caching tests."""
    if fail:
        raise RuntimeError("boom")
    return value


_COUNTING_CALLS = []


@register_work("_test_counting")
def _counting(scale, *, value):
    """Tiny work function recording its invocations (dedup tests)."""
    _COUNTING_CALLS.append(value)
    return value


@pytest.fixture(scope="module")
def micro_scale():
    """Micro preset shared by the determinism tests: 2 epochs, D=3."""
    scale = tiny_scale(random_state=0)
    return scale.with_overrides(
        name="micro",
        k_permutations=4,
        n_explained_instances=2,
        dimension_sweep=(3,),
        training=TrainingConfig(epochs=2, batch_size=8, learning_rate=3e-3,
                                patience=5, random_state=0),
    )


def table3_numbers(result):
    """Flatten a Table3Result into a comparable structure."""
    return [
        (row.seed_name, row.dataset_type, row.n_dimensions,
         row.c_acc, row.dr_acc, row.success_ratio, row.random_dr_acc)
        for row in result.rows
    ]


class TestWorkUnit:
    def test_create_is_canonical_and_hashable(self):
        a = WorkUnit.create("kind", x=1, y=[1, 2], z="s")
        b = WorkUnit.create("kind", z="s", y=(1, 2), x=1)
        assert a == b
        assert hash(a) == hash(b)
        assert a.kwargs == {"x": 1, "y": (1, 2), "z": "s"}

    def test_numpy_scalars_collapse(self):
        unit = WorkUnit.create("kind", seed=np.int64(7), score=np.float64(0.5))
        assert unit.kwargs == {"seed": 7, "score": 0.5}

    def test_mapping_roundtrip(self):
        unit = WorkUnit.create("kind", config={"b": 2, "a": [1, {"c": 3}]})
        assert unit.kwargs == {"config": {"b": 2, "a": (1, {"c": 3})}}

    def test_rejects_payload_parameters(self):
        with pytest.raises(TypeError):
            WorkUnit.create("kind", data=np.zeros(3))

    def test_decanonicalize_inverts_canonicalize(self):
        value = {"a": [1, 2], "b": {"c": "x"}}
        assert decanonicalize(canonicalize(value)) == {"a": (1, 2), "b": {"c": "x"}}

    def test_describe_mentions_kind_and_params(self):
        unit = WorkUnit.create("synthetic_cell", model_name="dcnn")
        assert "synthetic_cell" in unit.describe()
        assert "dcnn" in unit.describe()


class TestFingerprints:
    def test_stable_across_processes_inputs(self):
        scale = tiny_scale()
        unit = WorkUnit.create("synthetic_cell", model_name="dcnn", config_seed=3)
        assert unit_fingerprint(scale, unit) == unit_fingerprint(scale, unit)

    def test_sensitive_to_params_and_scale(self):
        scale = tiny_scale()
        unit = WorkUnit.create("synthetic_cell", model_name="dcnn", config_seed=3)
        other_unit = WorkUnit.create("synthetic_cell", model_name="dcnn", config_seed=4)
        other_scale = scale.with_overrides(k_permutations=99)
        assert unit_fingerprint(scale, unit) != unit_fingerprint(scale, other_unit)
        assert unit_fingerprint(scale, unit) != unit_fingerprint(other_scale, unit)

    def test_spec_fingerprints_align_with_units(self):
        spec = table3_spec(tiny_scale(), seeds=["starlight"], dataset_types=(1,),
                           dimensions=[3], models=["dcnn"])
        prints = spec.fingerprints()
        assert len(prints) == len(spec.units)
        assert len(set(prints)) == len(prints)  # all units distinct


class TestRegistry:
    def test_known_kinds_resolve(self):
        for kind in ("synthetic_cell", "synthetic_random_baseline", "uea_cell",
                     "figure10_curve", "figure12_epoch_time", "figure13_usecase"):
            assert callable(resolve_work(kind))

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown work kind"):
            resolve_work("no_such_kind")

    def test_duplicate_registration_rejected(self):
        @register_work("_test_dup_kind")
        def fn(scale):
            return 0

        with pytest.raises(ValueError):
            @register_work("_test_dup_kind")
            def gn(scale):
                return 1

    def test_execute_unit_runs_baseline(self, micro_scale):
        unit = WorkUnit.create("synthetic_random_baseline", seed_name="starlight",
                               dataset_type=1, n_dimensions=3, config_seed=103)
        value = execute_unit(micro_scale, unit)
        assert 0.0 <= value <= 1.0


class TestExecutors:
    def test_make_executor(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        parallel = make_executor(3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.workers == 3
        assert executor_label(parallel) == "parallel[3]"
        assert executor_label(SerialExecutor()) == "serial"

    def test_parallel_degrades_to_serial_for_single_payload(self):
        executor = ParallelExecutor(workers=4)
        assert executor.map(lambda x: x + 1, [41]) == [42]

    def test_repeated_units_execute_once(self, micro_scale):
        # Specs may repeat a unit (Figure 12's base-config timing appears in
        # two panels); run() must evaluate each distinct unit only once.
        _COUNTING_CALLS.clear()
        spec = ExperimentSpec("dups", micro_scale, (
            WorkUnit.create("_test_counting", value=1),
            WorkUnit.create("_test_counting", value=2),
            WorkUnit.create("_test_counting", value=1),
        ))
        assert run(spec) == [1, 2, 1]
        assert _COUNTING_CALLS == [1, 2]

    def test_parallel_preserves_order(self, micro_scale):
        spec = ExperimentSpec(
            name="baselines", scale=micro_scale,
            units=tuple(WorkUnit.create("synthetic_random_baseline",
                                        seed_name="starlight", dataset_type=1,
                                        n_dimensions=3, config_seed=seed)
                        for seed in (1, 2, 3, 4)))
        serial = run(spec, executor=SerialExecutor())
        parallel = run(spec, executor=ParallelExecutor(workers=2))
        assert serial == parallel


class TestSerialParallelDeterminism:
    def test_table3_serial_vs_parallel_identical(self, micro_scale):
        kwargs = dict(seeds=["starlight"], dataset_types=(1, 2), dimensions=[3],
                      models=["resnet", "dcnn"], base_seed=0)
        serial = run_table3(micro_scale, executor=SerialExecutor(), **kwargs)
        parallel = run_table3(micro_scale, executor=ParallelExecutor(workers=2),
                              **kwargs)
        legacy_default = run_table3(micro_scale, **kwargs)  # executor=None
        assert table3_numbers(serial) == table3_numbers(parallel)
        assert table3_numbers(serial) == table3_numbers(legacy_default)

    def test_figure9_serial_vs_parallel_identical(self, micro_scale):
        serial = run_figure9(micro_scale, dimensions=[3], models=["dcnn"],
                             executor=SerialExecutor())
        parallel = run_figure9(micro_scale, dimensions=[3], models=["dcnn"],
                               executor=ParallelExecutor(workers=2))
        assert serial.c_acc == parallel.c_acc
        assert serial.dr_acc == parallel.dr_acc

    def test_uea_dataset_stable_across_hash_seeds(self):
        # The simulated UEA datasets must not depend on Python's randomized
        # str hash: spawned workers and cached CLI runs would otherwise see
        # different data than the parent process.
        src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))
        code = (
            "from repro.data.uea import make_uea_dataset, UEASimulationConfig\n"
            "config = UEASimulationConfig(instances_per_class=2, max_length=16,\n"
            "                             max_dimensions=3, max_classes=2,\n"
            "                             random_state=0)\n"
            "print(float(make_uea_dataset('BasicMotions', config).X.sum()))\n"
        )
        outputs = []
        for hash_seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=src)
            proc = subprocess.run([sys.executable, "-c", code],
                                  capture_output=True, text=True, env=env)
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]


class TestResultCache:
    def test_memory_roundtrip_and_stats(self):
        cache = ResultCache()
        hit, _ = cache.lookup("k1")
        assert not hit
        cache.store("k1", {"x": 1.5})
        hit, value = cache.lookup("k1")
        assert hit and value == {"x": 1.5}
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert "k1" in cache and len(cache) == 1

    def test_disk_persistence(self, tmp_path):
        directory = str(tmp_path / "cache")
        first = ResultCache(directory=directory)
        first.store("deadbeef", [1, 2, 3])
        second = ResultCache(directory=directory)  # fresh process stand-in
        hit, value = second.lookup("deadbeef")
        assert hit and value == [1, 2, 3]

    def test_cold_vs_warm_runs_byte_identical(self, micro_scale, tmp_path):
        cache = ResultCache(directory=str(tmp_path / "cache"))
        kwargs = dict(seeds=["starlight"], dataset_types=(1,), dimensions=[3],
                      models=["dcnn"], base_seed=0)
        cold = run_table3(micro_scale, cache=cache, **kwargs)
        assert cache.stats.misses == len(table3_spec(micro_scale, **kwargs).units)
        cache.reset_stats()
        warm = run_table3(micro_scale, cache=cache, **kwargs)
        assert cache.stats.misses == 0
        assert cache.stats.hits == len(table3_spec(micro_scale, **kwargs).units)
        assert pickle.dumps(table3_numbers(warm)) == pickle.dumps(table3_numbers(cold))

    def test_figure9_reuses_table3_entries(self, micro_scale):
        cache = ResultCache()
        run_table3(micro_scale, seeds=["starlight"], dataset_types=(1, 2),
                   dimensions=[3], models=["dcnn"], base_seed=0, cache=cache)
        cache.reset_stats()
        figure9 = run_figure9(micro_scale, dimensions=[3], models=["dcnn"],
                              base_seed=0, cache=cache)
        assert cache.stats.misses == 0, "figure9 should be fully served by table3's cache"
        assert cache.stats.hits > 0
        assert figure9.series("c_acc", 1)["dcnn"][0] >= 0.0

    def test_failed_sweep_keeps_completed_entries(self, micro_scale):
        cache = ResultCache()
        spec = ExperimentSpec("flaky", micro_scale, (
            WorkUnit.create("_test_maybe_fail", value=1),
            WorkUnit.create("_test_maybe_fail", value=2),
            WorkUnit.create("_test_maybe_fail", value=3, fail=True),
        ))
        with pytest.raises(RuntimeError, match="boom"):
            run(spec, cache=cache)
        fingerprints = spec.fingerprints()
        assert cache.lookup(fingerprints[0]) == (True, 1)
        assert cache.lookup(fingerprints[1]) == (True, 2)
        assert cache.lookup(fingerprints[2])[0] is False

    def test_cache_keys_depend_on_scale(self, micro_scale):
        cache = ResultCache()
        run_table3(micro_scale, seeds=["starlight"], dataset_types=(1,),
                   dimensions=[3], models=["dcnn"], cache=cache)
        other_scale = micro_scale.with_overrides(k_permutations=8)
        cache.reset_stats()
        run_table3(other_scale, seeds=["starlight"], dataset_types=(1,),
                   dimensions=[3], models=["dcnn"], cache=cache)
        assert cache.stats.hits == 0, "a different scale must not reuse results"


class TestSpecBuilders:
    def test_table3_spec_unit_count(self, micro_scale):
        spec = table3_spec(micro_scale, seeds=["starlight"], dataset_types=(1, 2),
                           dimensions=[3, 4], models=["resnet", "dcnn"])
        # 4 configurations x (1 baseline + 2 models x n_runs)
        expected = 4 * (1 + 2 * micro_scale.n_runs)
        assert len(spec.units) == expected
        assert spec.name == "table3"

    def test_table2_spec_seed_derivation(self, micro_scale):
        spec = table2_spec(micro_scale, dataset_names=["BasicMotions", "Epilepsy"],
                           models=["cnn"], base_seed=5)
        kwargs = [unit.kwargs for unit in spec.units]
        assert kwargs[0]["split_seed"] == 5 and kwargs[0]["run_seed"] == 5
        assert kwargs[1]["split_seed"] == 6 and kwargs[1]["run_seed"] == 105

    def test_units_pickle(self, micro_scale):
        spec = table3_spec(micro_scale, seeds=["starlight"], dataset_types=(1,),
                           dimensions=[3], models=["dcnn"])
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.units == spec.units
        assert clone.fingerprints() == spec.fingerprints()


class TestCLI:
    def test_list_command(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table2", "table3", "figure13", "ablation-ng-filter"):
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert cli_main(["run", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unsupported_filter_flag_rejected(self, capsys):
        assert cli_main(["run", "figure13", "--models", "dresnet"]) == 2
        err = capsys.readouterr().err
        assert "does not support --models" in err
        assert cli_main(["run", "figure9", "--seeds", "shapes"]) == 2
        assert "does not support --seeds" in capsys.readouterr().err

    def test_run_table3_with_workers_and_json(self, tmp_path, capsys):
        json_path = str(tmp_path / "out.json")
        code = cli_main([
            "run", "table3", "--scale", "tiny", "--epochs", "2",
            "--models", "dcnn", "--dimensions", "3", "--seeds", "starlight",
            "--workers", "2", "--json", json_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        with open(json_path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["experiment"] == "table3"
        assert record["workers"] == 2
        assert record["result"][0]["dimensions"] == 3
        assert 0.0 <= record["result"][0]["C-acc:dcnn"] <= 1.0

    def test_run_with_cache_dir_hits_on_second_invocation(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["run", "ablation-ng-filter", "--scale", "tiny", "--epochs", "2",
                "--cache-dir", cache_dir, "--quiet"]
        assert cli_main(argv) == 0
        first = capsys.readouterr().err
        assert "misses=2" in first
        assert cli_main(argv) == 0
        second = capsys.readouterr().err
        assert "hits=2" in second and "misses=0" in second


class TestKwargsFamily:
    def test_families_declared_in_registry(self):
        assert kwargs_family_of_model("dcnn") == "cnn"
        assert kwargs_family_of_model("cnn") == "cnn"
        assert kwargs_family_of_model("ccnn") == "cnn"
        assert kwargs_family_of_model("cResNet") == "resnet"
        assert kwargs_family_of_model("dinceptiontime") == "inception"
        assert kwargs_family_of_model("gru") == "recurrent"
        assert kwargs_family_of_model("mtex") == "mtex"

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            kwargs_family_of_model("transformer")

    def test_scale_kwargs_follow_family(self):
        scale = get_scale("tiny")
        assert scale.model_kwargs("dresnet") == scale.resnet_kwargs
        assert scale.model_kwargs("mtex") == scale.mtex_kwargs
