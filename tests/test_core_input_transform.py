"""Unit tests of the C(T) cube construction and the idx mapping."""

import numpy as np
import pytest

from repro.core import (
    build_cube,
    build_cube_batch,
    idx,
    inverse_order,
    random_permutations,
    rotation_order,
    row_for_slot,
)


class TestBuildCube:
    def setup_method(self):
        self.series = np.arange(12.0).reshape(3, 4)  # dims 0,1,2 easily identified

    def test_shape(self):
        assert build_cube(self.series).shape == (3, 3, 4)

    def test_first_row_is_original_order(self):
        cube = build_cube(self.series)
        np.testing.assert_allclose(cube[0], self.series)

    def test_rows_are_rotations(self):
        cube = build_cube(self.series)
        np.testing.assert_allclose(cube[1], self.series[[1, 2, 0]])
        np.testing.assert_allclose(cube[2], self.series[[2, 0, 1]])

    def test_dimension_never_at_same_position_twice(self):
        cube = build_cube(self.series)
        for dimension in range(3):
            positions = []
            for row in range(3):
                for position in range(3):
                    if np.allclose(cube[row, position], self.series[dimension]):
                        positions.append(position)
            assert sorted(positions) == [0, 1, 2]

    def test_with_permutation_order(self):
        order = np.array([2, 0, 1])
        cube = build_cube(self.series, order)
        np.testing.assert_allclose(cube[0], self.series[order])

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            build_cube(np.zeros((2, 3, 4)))
        with pytest.raises(ValueError):
            build_cube(self.series, order=[0, 0, 1])

    def test_batch_matches_single(self):
        batch = np.stack([self.series, self.series * 2])
        cube_batch = build_cube_batch(batch)
        assert cube_batch.shape == (2, 3, 3, 4)
        np.testing.assert_allclose(cube_batch[0], build_cube(self.series))
        np.testing.assert_allclose(cube_batch[1], build_cube(self.series * 2))

    def test_batch_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            build_cube_batch(self.series)


class TestIdxMapping:
    def test_row_for_slot_formula(self):
        assert row_for_slot(0, 0, 4) == 0
        assert row_for_slot(2, 1, 4) == 1
        assert row_for_slot(0, 3, 4) == 1

    def test_idx_identity_order(self):
        series = np.arange(8.0).reshape(4, 2)
        cube = build_cube(series)
        for dimension in range(4):
            for position in range(4):
                row = idx(dimension, position, None, 4)
                np.testing.assert_allclose(cube[row, position], series[dimension])

    def test_idx_with_permutation(self):
        series = np.arange(10.0).reshape(5, 2)
        order = np.array([3, 1, 4, 0, 2])
        cube = build_cube(series, order)
        for dimension in range(5):
            for position in range(5):
                row = idx(dimension, position, order, 5)
                np.testing.assert_allclose(cube[row, position], series[dimension])

    def test_inverse_order(self):
        order = np.array([2, 0, 1])
        np.testing.assert_array_equal(inverse_order(order), [1, 2, 0])


class TestRandomPermutations:
    def test_count_and_identity_first(self):
        permutations = random_permutations(5, 4, np.random.default_rng(0))
        assert len(permutations) == 4
        np.testing.assert_array_equal(permutations[0], np.arange(5))

    def test_identity_can_be_excluded(self):
        permutations = random_permutations(6, 3, np.random.default_rng(1),
                                           include_identity=False)
        assert len(permutations) == 3

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            random_permutations(4, 0)

    def test_rotation_order(self):
        np.testing.assert_array_equal(rotation_order(4, 1), [1, 2, 3, 0])
        np.testing.assert_array_equal(rotation_order(4, 0), [0, 1, 2, 3])
