"""Parity and plumbing tests of the fused training engine.

The engine's contract is *float-identity* with the legacy per-batch-prepare
loop: same rng consumption, same loss curves, same early-stopping epochs,
bitwise-equal final weights.  These tests pin that for one architecture per
``input_kind`` (raw / channel / cube), for the non-fused fallback paths
(grad-CAM and recurrent architectures), for early stopping and gradient
clipping, and for buffer reuse under partial last batches — plus the
engine-specific plumbing: prepare-once semantics, slot reuse, the
lazy (memory-capped) prepared-input fallback and train/eval mode restoring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.base import TrainingConfig
from repro.models.registry import create_model
from repro.nn import Tensor, Workspace
from repro.nn.fused import batch_norm_training
from repro.nn.layers import BatchNorm
from repro.training import PreparedInputs, TrainingEngine, fit_legacy

MODEL_KWARGS = {
    "cnn": {"filters": (4, 6)},
    "ccnn": {"filters": (4, 6)},
    "dcnn": {"filters": (4, 6)},
    "resnet": {"filters": (4, 6)},
    "dresnet": {"filters": (4, 6)},
    "inceptiontime": {"depth": 2, "n_filters": 3},
    "dinceptiontime": {"depth": 2, "n_filters": 3},
    "mtex": {"block1_filters": (3, 4), "block2_filters": 4, "hidden_units": 8},
    "gru": {"hidden_size": 8},
}

#: One architecture per input kind (the tentpole's parity matrix).
KIND_MODELS = [("raw", "cnn"), ("channel", "ccnn"), ("cube", "dcnn")]

#: Graphs whose fused BatchNorm sits under multi-consumer gradient flow —
#: residual adds (ResNet) and inception concatenates — pinned so a change to
#: the fused accumulation order cannot silently shift table2/3 numerics.
STRUCTURED_MODELS = ["resnet", "dresnet", "inceptiontime", "dinceptiontime"]


def make_data(n=24, n_dimensions=3, length=16, n_classes=2, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, n_dimensions, length))
    y = rng.integers(0, n_classes, size=n)
    return X, y


def make_model(name, n_dimensions=3, length=16, n_classes=2, seed=0):
    return create_model(name, n_dimensions, length, n_classes,
                        rng=np.random.default_rng(seed),
                        **MODEL_KWARGS.get(name, {}))


def fit_both(name, config, validation=True, n=24, **data_kwargs):
    """Train twin models through the legacy loop and the engine."""
    X, y = make_data(n=n, **data_kwargs)
    val = (X[: max(4, n // 4)], y[: max(4, n // 4)]) if validation else None
    results = []
    for engine in ("legacy", "fused"):
        model = make_model(name, n_dimensions=data_kwargs.get("n_dimensions", 3),
                           length=data_kwargs.get("length", 16))
        cfg = TrainingConfig(**{**vars(config), "engine": engine})
        history = model.fit(X, y, validation_data=val, config=cfg)
        results.append((history, model.state_dict()))
    return results


def assert_parity(legacy, fused):
    history_a, state_a = legacy
    history_b, state_b = fused
    assert history_a.train_loss == history_b.train_loss
    assert history_a.validation_loss == history_b.validation_loss
    assert history_a.validation_accuracy == history_b.validation_accuracy
    assert history_a.best_epoch == history_b.best_epoch
    assert history_a.stopped_early == history_b.stopped_early
    assert set(state_a) == set(state_b)
    for key in state_a:
        assert np.array_equal(state_a[key], state_b[key]), key


BASE = dict(epochs=6, batch_size=8, learning_rate=3e-3, random_state=0)


class TestEngineParity:
    @pytest.mark.parametrize("kind,name", KIND_MODELS)
    def test_float_identical_per_input_kind(self, kind, name):
        legacy, fused = fit_both(name, TrainingConfig(**BASE))
        assert_parity(legacy, fused)

    @pytest.mark.parametrize("name", STRUCTURED_MODELS)
    def test_float_identical_residual_and_inception(self, name):
        legacy, fused = fit_both(name, TrainingConfig(**{**BASE, "epochs": 3}))
        assert_parity(legacy, fused)

    @pytest.mark.parametrize("name", ["cnn", "dcnn"])
    def test_without_validation(self, name):
        legacy, fused = fit_both(name, TrainingConfig(**BASE), validation=False)
        assert_parity(legacy, fused)

    def test_without_shuffle(self):
        legacy, fused = fit_both("ccnn", TrainingConfig(**BASE, shuffle=False))
        assert_parity(legacy, fused)

    def test_early_stopping(self):
        config = TrainingConfig(**{**BASE, "epochs": 30}, patience=2, min_delta=0.5)
        legacy, fused = fit_both("cnn", config)
        assert legacy[0].stopped_early and fused[0].stopped_early
        assert legacy[0].epochs_run == fused[0].epochs_run
        assert_parity(legacy, fused)

    @pytest.mark.parametrize("clip", [0.05, None])
    def test_gradient_clip(self, clip):
        legacy, fused = fit_both("dcnn", TrainingConfig(**BASE, gradient_clip=clip))
        assert_parity(legacy, fused)

    def test_partial_last_batch(self):
        # 21 instances at batch 8 -> batches of 8, 8, 5: the gather slot is
        # sliced per batch, so the trailing partial batch exercises reuse
        # under a changing effective batch size.
        legacy, fused = fit_both("dcnn", TrainingConfig(**BASE), n=21)
        assert_parity(legacy, fused)

    def test_batch_larger_than_dataset(self):
        legacy, fused = fit_both("cnn", TrainingConfig(**{**BASE, "batch_size": 64}),
                                 n=10)
        assert_parity(legacy, fused)

    @pytest.mark.parametrize("name", ["mtex", "gru"])
    def test_fallback_forward_models(self, name):
        # No fused GAP head: mtex exercises the dropout rng consumption and
        # the fused BatchNorm/conv kernels inside a custom forward; gru the
        # plain recurrent path.
        legacy, fused = fit_both(name, TrainingConfig(**BASE))
        assert_parity(legacy, fused)

    def test_weight_decay(self):
        legacy, fused = fit_both("cnn", TrainingConfig(**BASE, weight_decay=1e-3))
        assert_parity(legacy, fused)

    def test_unknown_engine_rejected(self):
        X, y = make_data()
        model = make_model("cnn")
        with pytest.raises(ValueError, match="unknown training engine"):
            model.fit(X, y, config=TrainingConfig(**BASE, engine="turbo"))

    def test_shape_validation(self):
        model = make_model("cnn")
        engine = TrainingEngine(model, TrainingConfig(**BASE))
        with pytest.raises(ValueError, match="instances, dimensions, length"):
            engine.fit(np.zeros((4, 3)), np.zeros(4))
        with pytest.raises(ValueError, match="model built for"):
            engine.fit(np.zeros((4, 5, 16)), np.zeros(4))


class TestPreparedInputs:
    def test_prepare_once_and_slot_reuse(self):
        X, y = make_data()
        model = make_model("dcnn")
        calls = []
        original = model.prepare_input

        def counting(batch, order=None):
            calls.append(np.shape(batch))
            return original(batch, order)

        model.prepare_input = counting
        engine = TrainingEngine(model, TrainingConfig(**BASE))
        engine.fit(X, y, validation_data=(X[:8], y[:8]))
        # One prepare for the training set, one for the validation set —
        # not one per batch per epoch.
        assert len(calls) == 2
        assert engine.slot_allocations == 1
        assert engine.train_inputs.materialized
        # The conv scratch buffers are checked out and returned per step, not
        # reallocated: far fewer fresh allocations than training steps.
        n_steps = 6 * len(range(0, len(X), 8))
        assert 0 < engine.workspace.allocations < n_steps
        assert engine.workspace.in_use == 0

    def test_lazy_fallback_is_float_identical(self):
        X, y = make_data()
        config = TrainingConfig(**BASE)
        legacy_model = make_model("dcnn")
        history_a = fit_legacy(legacy_model, X, y, (X[:8], y[:8]), config)

        model = make_model("dcnn")
        engine = TrainingEngine(model, config, max_materialize_bytes=0)
        history_b = engine.fit(X, y, validation_data=(X[:8], y[:8]))
        assert not engine.train_inputs.materialized
        assert engine.train_inputs.data is None
        assert_parity((history_a, legacy_model.state_dict()),
                      (history_b, model.state_dict()))

    def test_gather_matches_per_batch_prepare(self):
        X, _ = make_data()
        model = make_model("dcnn")
        prepared = PreparedInputs(model, X)
        slot = prepared.make_slot(8)
        idx = np.array([5, 2, 11, 7])
        gathered = prepared.batch(idx, slot)
        reference = model.prepare_input(X[idx]).data
        assert np.array_equal(gathered, reference)
        assert np.shares_memory(gathered, slot)
        assert np.array_equal(prepared.slice(3, 9),
                              model.prepare_input(X[3:9]).data)


class TestFusedKernels:
    @pytest.mark.parametrize("shape", [(8, 5, 12), (8, 5, 4, 12)])
    @pytest.mark.parametrize("relu", [False, True])
    def test_fused_batch_norm_bit_exact(self, shape, relu):
        rng = np.random.default_rng(3)
        x_data = rng.standard_normal(shape)

        def run(fused):
            bn = BatchNorm(shape[1])
            bn.weight.data[...] = rng_w
            bn.bias.data[...] = rng_b
            x = Tensor(x_data.copy(), requires_grad=True)
            if fused:
                out = batch_norm_training(bn, x, relu=relu)
            else:
                out = bn.forward(x)
                if relu:
                    out = out.relu()
            ((out * out).sum()).backward()
            return (out.data, x.grad, bn.weight.grad, bn.bias.grad,
                    bn.running_mean, bn.running_var)

        rng_w = rng.standard_normal(shape[1])
        rng_b = rng.standard_normal(shape[1])
        for a, b in zip(run(False), run(True)):
            assert np.array_equal(a, b)

    def test_fused_batch_norm_channel_mismatch(self):
        bn = BatchNorm(4)
        with pytest.raises(ValueError, match="expected 4 channels"):
            batch_norm_training(bn, Tensor(np.zeros((2, 3, 5))))


class TestWorkspace:
    def test_checkout_semantics(self):
        workspace = Workspace()
        a = workspace.acquire((4, 4), np.float64)
        b = workspace.acquire((4, 4), np.float64)
        assert a is not b  # no aliasing within a step
        assert workspace.allocations == 2
        assert workspace.in_use == 2
        workspace.release_all()
        assert workspace.in_use == 0
        c = workspace.acquire((4, 4), np.float64)
        assert c is a or c is b  # reused across steps
        assert workspace.allocations == 2
        assert workspace.nbytes() == 2 * 4 * 4 * 8


class TestModeRestore:
    def test_predict_restores_training_mode(self):
        X, y = make_data()
        model = make_model("cnn")
        model.train()
        model.predict(X[:4])
        assert model.training, "predict must not leave the model in eval mode"
        model.eval()
        model.predict(X[:4])
        assert not model.training

    def test_evaluate_loss_restores_training_mode(self):
        X, y = make_data()
        model = make_model("cnn")
        model.train()
        model._evaluate_loss(X[:8], y[:8], batch_size=4)
        assert model.training

    def test_fit_leaves_model_in_eval_mode(self):
        X, y = make_data()
        model = make_model("cnn")
        model.fit(X, y, config=TrainingConfig(**{**BASE, "epochs": 2}))
        assert not model.training
