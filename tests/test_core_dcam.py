"""Unit tests of dCAM (repro.core.dcam)."""

import numpy as np
import pytest

from repro.core import (
    DCAMResult,
    compute_dcam,
    compute_dcam_batch,
    explanation_quality_proxy,
    extract_dcam,
    merge_permutation_cams,
)
from repro.core.dcam import _m_transform


class TestMTransform:
    def test_shape(self):
        cam_rows = np.random.default_rng(0).standard_normal((5, 12))
        transformed = _m_transform(cam_rows, np.arange(5))
        assert transformed.shape == (5, 5, 12)

    def test_identity_order_mapping(self):
        """With the identity order, M[d, p] must be cam row (d - p) mod D."""
        n_dims, length = 4, 6
        cam_rows = np.arange(n_dims)[:, None] * np.ones((n_dims, length))
        transformed = _m_transform(cam_rows, np.arange(n_dims))
        for dimension in range(n_dims):
            for position in range(n_dims):
                expected_row = (dimension - position) % n_dims
                np.testing.assert_allclose(transformed[dimension, position],
                                           cam_rows[expected_row])

    def test_permuted_order_mapping(self):
        n_dims, length = 4, 3
        cam_rows = np.random.default_rng(1).standard_normal((n_dims, length))
        order = np.array([2, 0, 3, 1])
        slots = {original: slot for slot, original in enumerate(order)}
        transformed = _m_transform(cam_rows, order)
        for dimension in range(n_dims):
            for position in range(n_dims):
                expected_row = (slots[dimension] - position) % n_dims
                np.testing.assert_allclose(transformed[dimension, position],
                                           cam_rows[expected_row])


class TestMergeAndExtract:
    def test_merge_requires_input(self):
        with pytest.raises(ValueError):
            merge_permutation_cams([])

    def test_merge_averages(self):
        n_dims, length = 3, 4
        zeros = np.zeros((n_dims, length))
        twos = np.full((n_dims, length), 2.0)
        merged = merge_permutation_cams([(zeros, np.arange(3)), (twos, np.arange(3))])
        np.testing.assert_allclose(merged, np.ones((n_dims, n_dims, length)))

    def test_extract_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            extract_dcam(np.zeros((3, 4, 5)))

    def test_extract_formulas(self):
        rng = np.random.default_rng(2)
        m_bar = rng.standard_normal((4, 4, 7))
        dcam, averaged = extract_dcam(m_bar)
        np.testing.assert_allclose(averaged, m_bar.sum(axis=(0, 1)) / 8.0)
        np.testing.assert_allclose(dcam, m_bar.var(axis=1) * averaged[None, :])

    def test_discriminant_position_gets_high_score(self):
        """A dimension whose activation depends strongly on its position should
        score higher than one with constant activation (Section 4.4.3)."""
        n_dims, length = 5, 10
        m_bar = np.ones((n_dims, n_dims, length))
        # Dimension 2 at time 4: activation varies a lot across positions.
        m_bar[2, :, 4] = np.linspace(0.0, 4.0, n_dims)
        dcam, _ = extract_dcam(m_bar)
        assert dcam[2, 4] > dcam[2, 3]
        assert dcam[2, 4] > dcam[1, 4]


class TestComputeDCAM:
    def test_result_structure(self, trained_dcnn, tiny_type1_dataset):
        result = compute_dcam(trained_dcnn, tiny_type1_dataset.X[-1], class_id=1,
                              k=6, rng=np.random.default_rng(0))
        assert isinstance(result, DCAMResult)
        assert result.dcam.shape == (tiny_type1_dataset.n_dimensions,
                                     tiny_type1_dataset.length)
        assert result.m_bar.shape == (tiny_type1_dataset.n_dimensions,
                                      tiny_type1_dataset.n_dimensions,
                                      tiny_type1_dataset.length)
        assert result.averaged_cam.shape == (tiny_type1_dataset.length,)
        assert result.k == 6
        assert 0 <= result.n_correct <= 6
        assert 0.0 <= result.success_ratio <= 1.0
        assert explanation_quality_proxy(result) == result.success_ratio
        assert result.n_dimensions == tiny_type1_dataset.n_dimensions
        assert result.length == tiny_type1_dataset.length

    def test_requires_cube_model(self, trained_cnn, tiny_type1_dataset):
        with pytest.raises(TypeError):
            compute_dcam(trained_cnn, tiny_type1_dataset.X[0], 0)

    def test_rejects_bad_series(self, trained_dcnn):
        with pytest.raises(ValueError):
            compute_dcam(trained_dcnn, np.zeros(16), 0)

    def test_deterministic_given_rng(self, trained_dcnn, tiny_type1_dataset):
        series = tiny_type1_dataset.X[0]
        a = compute_dcam(trained_dcnn, series, 1, k=5, rng=np.random.default_rng(3))
        b = compute_dcam(trained_dcnn, series, 1, k=5, rng=np.random.default_rng(3))
        np.testing.assert_allclose(a.dcam, b.dcam)

    def test_explicit_permutations_override_k(self, trained_dcnn, tiny_type1_dataset):
        n_dims = tiny_type1_dataset.n_dimensions
        permutations = [np.arange(n_dims), np.roll(np.arange(n_dims), 1)]
        result = compute_dcam(trained_dcnn, tiny_type1_dataset.X[0], 1, k=50,
                              permutations=permutations)
        assert result.k == 2

    def test_use_only_correct_changes_nothing_when_all_wrong_or_all_right(
            self, trained_dcnn, tiny_type1_dataset):
        series = tiny_type1_dataset.X[0]
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        all_perms = compute_dcam(trained_dcnn, series, 1, k=4, rng=rng_a,
                                 use_only_correct=False)
        filtered = compute_dcam(trained_dcnn, series, 1, k=4, rng=rng_b,
                                use_only_correct=True)
        if all_perms.n_correct in (0, all_perms.k):
            np.testing.assert_allclose(all_perms.dcam, filtered.dcam)

    def test_batch_helper(self, trained_dcnn, tiny_type1_dataset):
        results = compute_dcam_batch(trained_dcnn, tiny_type1_dataset.X[:3],
                                     tiny_type1_dataset.y[:3], k=4,
                                     rng=np.random.default_rng(0))
        assert len(results) == 3
        assert all(isinstance(r, DCAMResult) for r in results)

    def test_batch_rejects_misaligned_labels(self, trained_dcnn, tiny_type1_dataset):
        with pytest.raises(ValueError):
            compute_dcam_batch(trained_dcnn, tiny_type1_dataset.X[:3], [0, 1], k=2)

    def test_single_permutation(self, trained_dcnn, tiny_type1_dataset):
        result = compute_dcam(trained_dcnn, tiny_type1_dataset.X[0], 0, k=1)
        assert result.k == 1
        assert result.dcam.shape == (tiny_type1_dataset.n_dimensions,
                                     tiny_type1_dataset.length)
