"""Streaming incremental explanation (:mod:`repro.stream`).

The contract under test: the incremental engine — ring buffer, rolled
``C(T)`` cubes, shifted conv feature maps, delta-updated CAM stacks — emits
the same results as the naive per-window oracle.  Cold starts are bitwise;
steady-state hops agree to 1e-10 at float64 (the documented float32-tier
tolerance on the single-precision tier).  Untrained seeded models are used
throughout: explanation parity is a property of the arithmetic, not the
weights.
"""

import json
import pickle

import numpy as np
import pytest

from repro.models import (
    CCNNClassifier,
    CNNClassifier,
    DCNNClassifier,
    DResNetClassifier,
    GRUClassifier,
)
from repro.serve import ExplanationCache
from repro.serve.cache import stream_window_key
from repro.serve.store import ModelArtifactStore
from repro.stream import (
    IncrementalTrunk,
    StreamConfig,
    StreamSession,
    UnsupportedArchitectureError,
    supports_incremental,
)
from repro.stream.session import _RingWindow

D, CLASSES = 4, 3


def make_model(cls=DCNNClassifier, length=32, seed=1, filters=(4, 8)):
    return cls(D, length, CLASSES, filters=filters, rng=np.random.default_rng(seed))


def make_feed(total, seed=0):
    return np.random.default_rng(seed).standard_normal((D, total))


def run_stream(session, feed, chunk=1):
    results = []
    for offset in range(0, feed.shape[1], chunk):
        results.extend(session.push(feed[:, offset : offset + chunk]))
    return results


def assert_emissions_match(left, right, atol=1e-10, rtol=1e-10):
    assert len(left) == len(right) and left
    for a, b in zip(left, right):
        assert (a.index, a.t_start, a.t_end) == (b.index, b.t_start, b.t_end)
        assert a.predicted == b.predicted
        assert a.class_id == b.class_id
        assert a.success_ratio == b.success_ratio
        np.testing.assert_allclose(a.logits, b.logits, atol=atol, rtol=rtol)
        if a.heatmap is None:
            assert b.heatmap is None
        else:
            np.testing.assert_allclose(a.heatmap, b.heatmap, atol=atol, rtol=rtol)


def both_engines(model_factory, config_kwargs, feed, chunk=1):
    incremental = run_stream(
        StreamSession(model_factory(), StreamConfig(**config_kwargs)), feed, chunk
    )
    naive = run_stream(
        StreamSession(model_factory(), StreamConfig(engine="naive", **config_kwargs)),
        feed,
        chunk,
    )
    return incremental, naive


class TestRingWindow:
    def test_window_is_last_capacity_columns(self):
        ring = _RingWindow(2, 5)
        feed = np.arange(2 * 13, dtype=float).reshape(2, 13)
        # Odd chunk sizes force wraparound splits.
        for lo, hi in ((0, 3), (3, 4), (4, 9), (9, 13)):
            ring.push(feed[:, lo:hi])
        np.testing.assert_array_equal(ring.window(), feed[:, -5:])
        np.testing.assert_array_equal(ring.tail(2), feed[:, -2:])

    def test_oversized_push_keeps_tail(self):
        ring = _RingWindow(2, 4)
        feed = np.arange(2 * 11, dtype=float).reshape(2, 11)
        ring.push(feed)
        np.testing.assert_array_equal(ring.window(), feed[:, -4:])

    def test_not_full_raises(self):
        ring = _RingWindow(2, 4)
        ring.push(np.zeros((2, 3)))
        assert not ring.full
        with pytest.raises(RuntimeError):
            ring.window()
        with pytest.raises(ValueError):
            ring.tail(4)


class TestIncrementalSupport:
    def test_cnn_family_supported(self):
        for cls in (CNNClassifier, CCNNClassifier, DCNNClassifier):
            assert supports_incremental(make_model(cls))

    def test_resnet_and_recurrent_unsupported(self):
        resnet = DResNetClassifier(D, 32, CLASSES, rng=np.random.default_rng(0))
        assert not supports_incremental(resnet)
        assert not supports_incremental(
            GRUClassifier(D, 32, CLASSES, rng=np.random.default_rng(0))
        )

    def test_fallback_policy(self):
        resnet = DResNetClassifier(D, 32, CLASSES, rng=np.random.default_rng(0))
        session = StreamSession(resnet, StreamConfig(hop=8, k=4))
        assert session.engine == "naive"
        with pytest.raises(UnsupportedArchitectureError):
            StreamSession(resnet, StreamConfig(on_unsupported="error"))

    def test_trunk_reset_matches_model_features(self):
        model = make_model()
        model.eval()  # fused inference path: BN consumes running statistics
        trunk = IncrementalTrunk(model)
        window = make_feed(32)
        from repro.nn import inference_mode

        with inference_mode():
            expected = model.features(model.prepare_input(window[None])).data
        cube = model.prepare_input(window[None]).data
        features, (a, b) = trunk.reset(cube)
        assert (a, b) == (32, 0)
        np.testing.assert_array_equal(features, expected)


class TestDcamParity:
    @pytest.mark.parametrize("length,hop", [(32, 1), (32, 3), (31, 4), (32, 32), (32, 40)])
    def test_incremental_matches_naive(self, length, hop):
        # Streams long enough that the ring buffer wraps several times.
        feed = make_feed(length * 3 + 7)
        kwargs = dict(hop=hop, k=6, seed=5)
        incremental, naive = both_engines(
            lambda: make_model(length=length), kwargs, feed
        )
        assert_emissions_match(incremental, naive)

    def test_first_window_bitwise(self):
        feed = make_feed(32)
        incremental, naive = both_engines(make_model, dict(k=6), feed)
        assert np.array_equal(incremental[0].heatmap, naive[0].heatmap)
        assert incremental[0].t_start == 0 and incremental[0].t_end == 32

    def test_block_push_equals_per_sample_push(self):
        feed = make_feed(80)
        per_sample = run_stream(
            StreamSession(make_model(), StreamConfig(hop=3, k=5)), feed, chunk=1
        )
        blocks = run_stream(
            StreamSession(make_model(), StreamConfig(hop=3, k=5)), feed, chunk=17
        )
        assert_emissions_match(per_sample, blocks, atol=0.0, rtol=0.0)

    def test_pinned_explain_class(self):
        feed = make_feed(70)
        kwargs = dict(hop=2, k=5, explain_class=1)
        incremental, naive = both_engines(make_model, kwargs, feed)
        assert all(r.class_id == 1 for r in incremental)
        assert_emissions_match(incremental, naive)

    def test_incremental_hops_actually_incremental(self):
        session = StreamSession(make_model(), StreamConfig(hop=2, k=4))
        run_stream(session, make_feed(60))
        assert session.stats["cold_starts"] == 1
        assert session.stats["incremental_hops"] == session.stats["emissions"] - 1


class TestCamParity:
    @pytest.mark.parametrize("cls", [CNNClassifier, CCNNClassifier])
    def test_incremental_matches_naive(self, cls):
        feed = make_feed(90)
        incremental, naive = both_engines(
            lambda: make_model(cls), dict(hop=2), feed
        )
        assert_emissions_match(incremental, naive)
        shape = incremental[0].heatmap.shape
        assert shape == ((32,) if cls is CNNClassifier else (D, 32))

    def test_heatmaps_are_copies(self):
        session = StreamSession(make_model(CNNClassifier), StreamConfig(hop=1))
        results = run_stream(session, make_feed(34))
        results[0].heatmap[:] = np.nan
        assert np.isfinite(results[1].heatmap).all()


class TestFloat32Tier:
    def test_parity_within_tier_tolerance(self):
        feed = make_feed(70)
        incremental = run_stream(
            StreamSession(make_model().astype(np.float32), StreamConfig(hop=2, k=5)),
            feed,
        )
        naive = run_stream(
            StreamSession(
                make_model().astype(np.float32),
                StreamConfig(hop=2, k=5, engine="naive"),
            ),
            feed,
        )
        assert incremental[0].logits.dtype == np.float32
        for a, b in zip(incremental, naive):
            np.testing.assert_allclose(a.logits, b.logits, atol=1e-4, rtol=1e-3)
            np.testing.assert_allclose(a.heatmap, b.heatmap, atol=1e-4, rtol=1e-3)

    def test_float32_hash_qualified(self):
        cache = ExplanationCache()
        f64 = StreamSession(make_model(), StreamConfig(k=4), cache=cache)
        f32 = StreamSession(
            make_model().astype(np.float32), StreamConfig(k=4), cache=cache
        )
        assert f32._qualified_hash().endswith(":float32")
        assert not f64._qualified_hash().endswith(":float32")


class TestModelSwap:
    def test_swap_matches_naive(self):
        feed = make_feed(100)
        sessions = [
            StreamSession(make_model(seed=1), StreamConfig(hop=3, k=5)),
            StreamSession(make_model(seed=1), StreamConfig(hop=3, k=5, engine="naive")),
        ]
        collected = [[], []]
        for t in range(feed.shape[1]):
            if t == 60:
                for session in sessions:
                    session.set_model(make_model(seed=9))
            for results, session in zip(collected, sessions):
                results.extend(session.push(feed[:, t]))
        assert_emissions_match(*collected)
        assert sessions[0].stats["cold_starts"] == 2

    def test_swap_rejects_shape_mismatch(self):
        session = StreamSession(make_model(), StreamConfig(k=4))
        with pytest.raises(ValueError, match="length"):
            session.set_model(make_model(length=48))


class TestCache:
    def test_engines_share_entries_and_recover_after_hits(self):
        feed = make_feed(80)
        cache = ExplanationCache()
        kwargs = dict(hop=3, k=5, seed=2)
        # Naive populates a prefix of the stream ...
        naive = StreamSession(
            make_model(), StreamConfig(engine="naive", **kwargs), cache=cache
        )
        run_stream(naive, feed[:, :50])
        # ... the incremental session hits it, then recovers parity once the
        # cache runs out (its state is stale by the hit prefix).
        incremental = StreamSession(make_model(), StreamConfig(**kwargs), cache=cache)
        results = run_stream(incremental, feed)
        oracle = run_stream(
            StreamSession(make_model(), StreamConfig(engine="naive", **kwargs)), feed
        )
        assert incremental.stats["cache_hits"] > 0
        assert [r.cached for r in results].count(True) == incremental.stats["cache_hits"]
        assert_emissions_match(results, oracle)

    @pytest.mark.parametrize(
        "cls,family",
        [(DCNNClassifier, "dcam"), (CNNClassifier, "cam"), (CCNNClassifier, "cam")],
    )
    def test_mid_stream_hits_shift_by_accumulated_gap(self, cls, family):
        # Regression: cache hits after a computed emission leave incremental
        # state behind by a multiple of hop; the next miss slides the trunk
        # and inputs by that accumulated gap, and the cached CAM/M̄ stacks
        # must shift by the same amount (they used to shift by hop
        # unconditionally, silently emitting misaligned heatmaps whenever
        # hop < gap < window).
        feed = make_feed(80)
        kwargs = dict(hop=3, k=5, seed=2, explain_class=0)
        oracle = run_stream(
            StreamSession(make_model(cls), StreamConfig(engine="naive", **kwargs)), feed
        )
        # Seed the cache with ONLY emissions 2 and 3: the incremental session
        # computes 0-1, hits 2-3, and resumes at 4 having to slide its state
        # by 3 * hop = 9 < window columns.
        from repro.nn.serialization import state_hash

        cache = ExplanationCache()
        h = state_hash(make_model(cls))
        for r in (oracle[2], oracle[3]):
            key = stream_window_key(
                h, feed[:, r.t_start : r.t_end], family, 0,
                kwargs["k"] if family == "dcam" else None,
                kwargs["seed"] if family == "dcam" else None,
            )
            cache.put(key, pickle.dumps({
                "logits": r.logits, "predicted": r.predicted,
                "class_id": r.class_id, "heatmap": r.heatmap,
                "success_ratio": r.success_ratio,
            }))
        session = StreamSession(make_model(cls), StreamConfig(**kwargs), cache=cache)
        results = run_stream(session, feed)
        assert session.stats["cache_hits"] == 2
        assert session.stats["cold_starts"] == 1  # the gap slid, not reset
        assert_emissions_match(results, oracle)

    def test_key_depends_on_window_and_model(self):
        window_a, window_b = make_feed(32, seed=0), make_feed(32, seed=1)
        key = stream_window_key("h", window_a, "dcam", None, 8, 0)
        assert key != stream_window_key("h", window_b, "dcam", None, 8, 0)
        assert key != stream_window_key("h2", window_a, "dcam", None, 8, 0)
        assert key != stream_window_key("h", window_a, "dcam", None, 8, 1)
        assert key == stream_window_key("h", window_a, "dcam", None, 8, 0)


class TestConfigAndModes:
    def test_validation_errors(self):
        for bad in (
            dict(hop=0),
            dict(window=1),
            dict(engine="turbo"),
            dict(explain="loud"),
            dict(k=0),
            dict(batch_size=0),
            dict(on_unsupported="shrug"),
        ):
            with pytest.raises(ValueError):
                StreamConfig(**bad).validate()

    def test_window_must_match_model_length(self):
        with pytest.raises(ValueError, match="length"):
            StreamSession(make_model(), StreamConfig(window=64))

    def test_explain_none_classifies_any_model(self):
        gru = GRUClassifier(D, 32, CLASSES, rng=np.random.default_rng(0))
        session = StreamSession(gru, StreamConfig(explain="none", hop=8))
        results = run_stream(session, make_feed(48), chunk=8)
        assert results and all(
            r.heatmap is None and r.class_id is None for r in results
        )

    def test_unexplainable_family_suggests_none(self):
        gru = GRUClassifier(D, 32, CLASSES, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="explain='none'"):
            StreamSession(gru, StreamConfig())


class TestStreamCLI:
    @pytest.fixture
    def store_dir(self, tmp_path):
        store = ModelArtifactStore(str(tmp_path / "models"))
        store.register(
            "dcnn-demo",
            make_model(length=48),
            model_name="dcnn",
            metadata={"model_kwargs": {"filters": (4, 8)}, "default_k": 5},
        )
        return str(tmp_path / "models")

    def test_stream_smoke(self, store_dir, tmp_path, capsys):
        from repro.runtime import cli

        heatmaps = str(tmp_path / "heatmaps.npz")
        code = cli.main(
            ["stream", "--store", store_dir, "--hop", "8", "--samples", "96",
             "--json-lines", "--heatmaps", heatmaps]
        )
        captured = capsys.readouterr()
        assert code == 0
        lines = [json.loads(line) for line in captured.out.splitlines()]
        assert len(lines) == 7  # (96 - 48) / 8 + 1
        assert lines[0]["t_end"] == 48 and lines[-1]["t_end"] == 96
        assert all(line["engine"] == "incremental" for line in lines)
        assert all(line["heatmap_shape"] == [D, 48] for line in lines)
        archive = np.load(heatmaps)
        assert len(archive.files) == 7
        assert "incremental hops 6" in captured.err

    def test_stream_empty_store_fails(self, tmp_path, capsys):
        from repro.runtime import cli

        code = cli.main(["stream", "--store", str(tmp_path / "empty")])
        assert code == 2
        assert "no model artifacts" in capsys.readouterr().err

    def test_stream_unknown_artifact_fails(self, store_dir, capsys):
        from repro.runtime import cli

        code = cli.main(["stream", "--store", store_dir, "--model", "nope"])
        assert code == 2
        assert "unknown artifact" in capsys.readouterr().err
