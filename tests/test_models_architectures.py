"""Unit tests of every classifier architecture (repro.models)."""

import numpy as np
import pytest

from repro.models import (
    CCNNClassifier,
    CNNClassifier,
    DCNNClassifier,
    DResNetClassifier,
    InceptionTimeClassifier,
    PAPER_CNN_FILTERS,
    ResNetClassifier,
    available_models,
    create_model,
)
from repro.models.registry import BASELINE_MODELS, C_BASELINE_MODELS, D_MODELS

N_DIMS, LENGTH, N_CLASSES = 4, 24, 3
RNG = np.random.default_rng(0)
BATCH = RNG.standard_normal((5, N_DIMS, LENGTH))

SMALL_KWARGS = {
    "cnn": {"filters": (4, 8)},
    "ccnn": {"filters": (4, 8)},
    "dcnn": {"filters": (4, 8)},
    "resnet": {"filters": (4, 8)},
    "cresnet": {"filters": (4, 8)},
    "dresnet": {"filters": (4, 8)},
    "inceptiontime": {"depth": 2, "n_filters": 3},
    "cinceptiontime": {"depth": 2, "n_filters": 3},
    "dinceptiontime": {"depth": 2, "n_filters": 3},
    "rnn": {"hidden_size": 8},
    "gru": {"hidden_size": 8},
    "lstm": {"hidden_size": 8},
    "mtex": {"block1_filters": (3, 4), "block2_filters": 4, "hidden_units": 8},
}


def _build(name):
    return create_model(name, N_DIMS, LENGTH, N_CLASSES,
                        rng=np.random.default_rng(0), **SMALL_KWARGS[name])


class TestRegistry:
    def test_all_13_architectures_registered(self):
        assert len(available_models()) == 13
        assert set(BASELINE_MODELS + C_BASELINE_MODELS + D_MODELS) == set(available_models())

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            create_model("transformer", 2, 10, 2)

    def test_name_normalisation(self):
        model = create_model("d-CNN", N_DIMS, LENGTH, N_CLASSES, filters=(4,))
        assert isinstance(model, DCNNClassifier)

    def test_paper_cnn_filters_constant(self):
        assert PAPER_CNN_FILTERS == (64, 128, 256, 256, 256)


class TestForwardShapes:
    @pytest.mark.parametrize("name", sorted(SMALL_KWARGS))
    def test_logits_shape(self, name):
        model = _build(name)
        logits = model.logits(BATCH)
        assert logits.shape == (5, N_CLASSES)

    @pytest.mark.parametrize("name", sorted(SMALL_KWARGS))
    def test_predict_and_proba(self, name):
        model = _build(name)
        proba = model.predict_proba(BATCH)
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(5), rtol=1e-9)
        predictions = model.predict(BATCH)
        assert predictions.shape == (5,)
        assert set(predictions.tolist()).issubset(set(range(N_CLASSES)))

    @pytest.mark.parametrize("name", ["cnn", "resnet", "inceptiontime"])
    def test_plain_feature_maps_are_1d(self, name):
        model = _build(name)
        features = model.features(model.prepare_input(BATCH[:1]))
        assert features.ndim == 3
        assert features.shape[2] == LENGTH

    @pytest.mark.parametrize("name", ["ccnn", "cresnet", "cinceptiontime",
                                      "dcnn", "dresnet", "dinceptiontime"])
    def test_2d_feature_maps_cover_dimensions_and_time(self, name):
        model = _build(name)
        features = model.features(model.prepare_input(BATCH[:1]))
        assert features.ndim == 4
        assert features.shape[2] == N_DIMS
        assert features.shape[3] == LENGTH

    @pytest.mark.parametrize("name", ["dcnn", "dresnet", "dinceptiontime"])
    def test_cube_models_accept_permutations(self, name):
        model = _build(name)
        order = np.array([1, 0, 3, 2])
        prepared = model.prepare_input(BATCH[:1], order)
        assert prepared.shape == (1, N_DIMS, N_DIMS, LENGTH)

    @pytest.mark.parametrize("name", ["cnn", "ccnn", "rnn", "mtex"])
    def test_non_cube_models_reject_permutations(self, name):
        model = _build(name)
        with pytest.raises(ValueError):
            model.prepare_input(BATCH[:1], np.array([1, 0, 3, 2]))

    def test_class_weights_shape(self):
        model = _build("dcnn")
        assert model.class_weights.shape == (N_CLASSES, model.feature_channels)

    def test_mtex_block_features(self):
        model = _build("mtex")
        prepared = model.prepare_input(BATCH[:1])
        assert model.block1_features(prepared).shape[2:] == (N_DIMS, LENGTH)
        assert model.block2_features(prepared).shape[2] == LENGTH

    def test_recurrent_models_do_not_expose_cam_features(self):
        model = _build("gru")
        with pytest.raises(NotImplementedError):
            model.features(model.prepare_input(BATCH[:1]))

    def test_supports_cam_flags(self):
        assert _build("dcnn").supports_cam
        assert _build("resnet").supports_cam
        assert not _build("gru").supports_cam
        assert not _build("mtex").supports_cam


class TestConstructionValidation:
    def test_invalid_problem_shape(self):
        with pytest.raises(ValueError):
            CNNClassifier(0, 10, 2)
        with pytest.raises(ValueError):
            CNNClassifier(2, 10, 1)

    def test_empty_filters_rejected(self):
        for cls in (CNNClassifier, CCNNClassifier, DCNNClassifier):
            with pytest.raises(ValueError):
                cls(N_DIMS, LENGTH, N_CLASSES, filters=())
        with pytest.raises(ValueError):
            ResNetClassifier(N_DIMS, LENGTH, N_CLASSES, filters=())

    def test_inception_depth_validation(self):
        with pytest.raises(ValueError):
            InceptionTimeClassifier(N_DIMS, LENGTH, N_CLASSES, depth=0)

    def test_resnet_even_kernels_keep_length(self):
        model = DResNetClassifier(N_DIMS, LENGTH, N_CLASSES, filters=(4,),
                                  kernel_sizes=(8, 5, 3), rng=np.random.default_rng(0))
        features = model.features(model.prepare_input(BATCH[:1]))
        assert features.shape[-1] == LENGTH

    def test_fit_rejects_wrong_shape(self):
        model = _build("cnn")
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, N_DIMS + 1, LENGTH)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, N_DIMS * LENGTH)), np.zeros(4, dtype=int))
