"""Property-based tests (hypothesis) of the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor
from repro.nn import functional as F

FLOATS = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False,
                   width=64)


def small_arrays(max_side=4, min_dims=1, max_dims=3):
    return hnp.arrays(dtype=np.float64,
                      shape=hnp.array_shapes(min_dims=min_dims, max_dims=max_dims,
                                             min_side=1, max_side=max_side),
                      elements=FLOATS)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_addition_gradient_is_ones(array):
    x = Tensor(array, requires_grad=True)
    (x + x).sum().backward()
    np.testing.assert_allclose(x.grad, 2.0 * np.ones_like(array))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_then_backward_gives_unit_gradient(array):
    x = Tensor(array, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(array))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_mul_gradient_equals_other_operand(array):
    other = np.full_like(array, 3.0)
    x = Tensor(array, requires_grad=True)
    (x * Tensor(other)).sum().backward()
    np.testing.assert_allclose(x.grad, other)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_relu_output_nonnegative_and_grad_binary(array):
    x = Tensor(array, requires_grad=True)
    out = x.relu()
    assert (out.data >= 0).all()
    out.sum().backward()
    assert set(np.unique(x.grad)).issubset({0.0, 1.0})


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_exp_log_roundtrip(array):
    positive = np.abs(array) + 1.0
    x = Tensor(positive)
    np.testing.assert_allclose(x.exp().log().data, positive, rtol=1e-10)


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_side=5, min_dims=2, max_dims=2))
def test_softmax_rows_are_distributions(array):
    probs = F.softmax(Tensor(array), axis=-1).data
    assert (probs >= 0).all()
    np.testing.assert_allclose(probs.sum(axis=-1), np.ones(array.shape[0]), rtol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_side=5, min_dims=2, max_dims=2))
def test_softmax_invariant_to_constant_shift(array):
    shifted = array + 100.0
    a = F.softmax(Tensor(array)).data
    b = F.softmax(Tensor(shifted)).data
    np.testing.assert_allclose(a, b, rtol=1e-8, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_side=4, min_dims=2, max_dims=2))
def test_reshape_preserves_values_and_gradients(array):
    x = Tensor(array, requires_grad=True)
    out = x.reshape(-1)
    np.testing.assert_allclose(out.data, array.reshape(-1))
    out.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(array))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4),
       st.integers(min_value=3, max_value=8))
def test_conv1d_output_length_with_same_padding(in_channels, out_channels, length):
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((2, in_channels, length)))
    w = Tensor(rng.standard_normal((out_channels, in_channels, 3)))
    out = F.conv1d(x, w, padding=1)
    assert out.shape == (2, out_channels, length)


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_side=4, min_dims=3, max_dims=3))
def test_global_average_pool_matches_mean(array):
    pooled = F.global_average_pool(Tensor(array)).data
    np.testing.assert_allclose(pooled, array.mean(axis=-1), rtol=1e-10)


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_side=4, min_dims=2, max_dims=2))
def test_conv_is_linear_in_input(array):
    """conv(a x) == a conv(x): convolution without bias is linear."""
    rng = np.random.default_rng(1)
    x = array[None, None, :, :]
    w = Tensor(rng.standard_normal((2, 1, 1, min(3, array.shape[1]))))
    base = F.conv2d(Tensor(x), w).data
    scaled = F.conv2d(Tensor(3.0 * x), w).data
    np.testing.assert_allclose(scaled, 3.0 * base, rtol=1e-8, atol=1e-9)
