"""End-to-end integration tests: train, explain, evaluate.

These tests tie every subsystem together: data generation → training →
explanation (CAM / dCAM) → Dr-acc evaluation, mirroring the paper's pipeline
on a miniature problem with fixed seeds.
"""

import numpy as np
import pytest

from repro.core import compute_dcam
from repro.data import SyntheticConfig, make_type1_dataset
from repro.eval import (
    classification_accuracy,
    dr_acc,
    evaluate_classification,
    evaluate_explanation,
    explanation_for,
    fit_on_dataset,
    random_baseline_dr_acc,
    repeated_runs,
)
from repro.models import DCNNClassifier, TrainingConfig, create_model


class TestProtocolHelpers:
    def test_fit_on_dataset_uses_split(self, tiny_type1_dataset):
        model = create_model("cnn", tiny_type1_dataset.n_dimensions,
                             tiny_type1_dataset.length, tiny_type1_dataset.n_classes,
                             rng=np.random.default_rng(0), filters=(4,))
        history = fit_on_dataset(model, tiny_type1_dataset,
                                 TrainingConfig(epochs=2, batch_size=8, random_state=0),
                                 random_state=0)
        assert history.epochs_run >= 1
        assert len(history.validation_loss) == history.epochs_run

    def test_evaluate_classification_returns_model_and_result(self, tiny_type1_dataset,
                                                              tiny_type1_test_dataset):
        model, result = evaluate_classification(
            "cnn", tiny_type1_dataset, tiny_type1_test_dataset,
            training=TrainingConfig(epochs=2, batch_size=8, random_state=0),
            model_kwargs={"filters": (4,)}, random_state=0)
        assert result.model_name == "cnn"
        assert 0.0 <= result.c_acc <= 1.0
        assert result.epochs_run >= 1
        assert result.train_seconds > 0

    def test_repeated_runs(self, tiny_type1_dataset, tiny_type1_test_dataset):
        results = repeated_runs("cnn", tiny_type1_dataset, tiny_type1_test_dataset,
                                n_runs=2,
                                training=TrainingConfig(epochs=1, batch_size=8,
                                                        random_state=0),
                                model_kwargs={"filters": (4,)})
        assert len(results) == 2

    def test_explanation_for_dispatch(self, trained_dcnn, trained_cnn, trained_ccnn,
                                      trained_mtex, tiny_type1_dataset):
        series = tiny_type1_dataset.X[-1]
        shape = (tiny_type1_dataset.n_dimensions, tiny_type1_dataset.length)
        dcam_map, ratio = explanation_for(trained_dcnn, "dcnn", series, 1, k=4,
                                          rng=np.random.default_rng(0))
        assert dcam_map.shape == shape and ratio is not None
        cam_map, ratio = explanation_for(trained_cnn, "cnn", series, 1)
        assert cam_map.shape == shape and ratio is None
        ccam_map, _ = explanation_for(trained_ccnn, "ccnn", series, 1)
        assert ccam_map.shape == shape
        mtex_map, _ = explanation_for(trained_mtex, "mtex", series, 1)
        assert mtex_map.shape == shape

    def test_evaluate_explanation(self, trained_dcnn, tiny_type1_dataset):
        score, ratio = evaluate_explanation(trained_dcnn, "dcnn", tiny_type1_dataset,
                                            target_class=1, n_instances=2, k=4,
                                            random_state=0)
        assert 0.0 <= score <= 1.0
        assert 0.0 <= ratio <= 1.0

    def test_evaluate_explanation_requires_ground_truth(self, trained_dcnn,
                                                        tiny_type1_dataset):
        stripped = tiny_type1_dataset.subset(range(len(tiny_type1_dataset)))
        stripped.ground_truth = None
        with pytest.raises(ValueError):
            evaluate_explanation(trained_dcnn, "dcnn", stripped)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def well_trained_setup(self):
        """A dCNN trained long enough to classify Type 1 data reliably."""
        config = SyntheticConfig(seed_name="starlight", n_dimensions=5,
                                 n_instances_per_class=20, series_length=64,
                                 seed_instance_length=32, pattern_length=16,
                                 random_state=5)
        train = make_type1_dataset(config)
        test = make_type1_dataset(SyntheticConfig(**{**config.__dict__,
                                                     "random_state": 99,
                                                     "n_instances_per_class": 8}))
        model = DCNNClassifier(train.n_dimensions, train.length, train.n_classes,
                               filters=(8, 16, 16), rng=np.random.default_rng(0))
        model.fit(train.X, train.y,
                  config=TrainingConfig(epochs=25, batch_size=8, learning_rate=3e-3,
                                        patience=25, random_state=0))
        return model, train, test

    def test_dcnn_learns_type1_problem(self, well_trained_setup):
        model, train, test = well_trained_setup
        assert model.score(train.X, train.y) >= 0.9
        assert model.score(test.X, test.y) >= 0.75

    def test_dcam_success_ratio_is_high_for_accurate_model(self, well_trained_setup):
        model, _, test = well_trained_setup
        index = int(np.flatnonzero(test.y == 1)[0])
        result = compute_dcam(model, test.X[index], class_id=1, k=16,
                              rng=np.random.default_rng(0))
        assert result.success_ratio >= 0.5

    def test_dcam_beats_random_baseline_on_average(self, well_trained_setup):
        model, _, test = well_trained_setup
        indices = np.flatnonzero(test.y == 1)[:4]
        rng = np.random.default_rng(0)
        dcam_scores, random_scores = [], []
        for index in indices:
            result = compute_dcam(model, test.X[index], class_id=1, k=24, rng=rng)
            dcam_scores.append(dr_acc(result.dcam, test.ground_truth[index]))
            random_scores.append(random_baseline_dr_acc(test.ground_truth[index],
                                                        np.random.default_rng(1)))
        assert np.mean(dcam_scores) > np.mean(random_scores)

    def test_classification_accuracy_helper_agrees_with_score(self, well_trained_setup):
        model, _, test = well_trained_setup
        manual = classification_accuracy(test.y, model.predict(test.X))
        assert manual == pytest.approx(model.score(test.X, test.y))
