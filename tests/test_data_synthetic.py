"""Unit tests of the Type 1 / Type 2 synthetic benchmarks (repro.data.synthetic)."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, make_dataset, make_type1_dataset, make_type2_dataset


CONFIG = SyntheticConfig(seed_name="starlight", n_dimensions=6, n_instances_per_class=8,
                         series_length=80, seed_instance_length=20, pattern_length=16,
                         random_state=3)


class TestType1:
    def setup_method(self):
        self.dataset = make_type1_dataset(CONFIG)

    def test_shapes_and_labels(self):
        assert self.dataset.X.shape == (16, 6, 80)
        assert set(np.unique(self.dataset.y)) == {0, 1}
        assert self.dataset.class_counts() == {0: 8, 1: 8}

    def test_class0_has_no_ground_truth(self):
        class0 = self.dataset.ground_truth[self.dataset.y == 0]
        assert class0.sum() == 0

    def test_class1_has_two_injected_dimensions(self):
        for mask in self.dataset.ground_truth[self.dataset.y == 1]:
            injected_dims = np.flatnonzero(mask.sum(axis=1) > 0)
            assert len(injected_dims) == 2

    def test_injection_length_matches_pattern_length(self):
        for mask in self.dataset.ground_truth[self.dataset.y == 1]:
            for dim in np.flatnonzero(mask.sum(axis=1) > 0):
                assert mask[dim].sum() == CONFIG.pattern_length

    def test_injections_at_different_positions(self):
        """Type 1: the two injected patterns never share the same start index."""
        for mask in self.dataset.ground_truth[self.dataset.y == 1]:
            starts = [np.flatnonzero(mask[dim])[0]
                      for dim in np.flatnonzero(mask.sum(axis=1) > 0)]
            assert starts[0] != starts[1]

    def test_reproducible_with_same_seed(self):
        again = make_type1_dataset(CONFIG)
        np.testing.assert_allclose(self.dataset.X, again.X)

    def test_different_seed_changes_data(self):
        other = make_type1_dataset(SyntheticConfig(**{**CONFIG.__dict__, "random_state": 99}))
        assert not np.allclose(self.dataset.X, other.X)


class TestType2:
    def setup_method(self):
        self.dataset = make_type2_dataset(CONFIG)

    def test_shapes(self):
        assert self.dataset.X.shape == (16, 6, 80)
        assert self.dataset.ground_truth.shape == self.dataset.X.shape

    def test_class1_ground_truth_marks_two_aligned_dimensions(self):
        for mask in self.dataset.ground_truth[self.dataset.y == 1]:
            injected_dims = np.flatnonzero(mask.sum(axis=1) > 0)
            assert len(injected_dims) == 2
            starts = [np.flatnonzero(mask[dim])[0] for dim in injected_dims]
            assert starts[0] == starts[1]  # same timestamp: the discriminant factor

    def test_class0_mask_is_empty_even_though_patterns_are_injected(self):
        class0 = self.dataset.ground_truth[self.dataset.y == 0]
        assert class0.sum() == 0

    def test_dispatch_helper(self):
        assert make_dataset(1, CONFIG).metadata["type"] == 1
        assert make_dataset(2, CONFIG).metadata["type"] == 2
        with pytest.raises(ValueError):
            make_dataset(3, CONFIG)


class TestConfigValidation:
    def test_pattern_longer_than_series_rejected(self):
        config = SyntheticConfig(n_dimensions=3, series_length=16, pattern_length=32,
                                 random_state=0)
        with pytest.raises(ValueError):
            make_type1_dataset(config)

    def test_names_encode_seed_type_and_dimensions(self):
        assert make_type1_dataset(CONFIG).name == "starlight-type1-D6"
        assert make_type2_dataset(CONFIG).name == "starlight-type2-D6"

    def test_small_dimension_count_still_works(self):
        config = SyntheticConfig(n_dimensions=2, n_instances_per_class=3,
                                 series_length=48, pattern_length=8, random_state=0)
        dataset = make_type2_dataset(config)
        assert dataset.n_dimensions == 2
