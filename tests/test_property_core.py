"""Property-based tests of the C(T) cube, idx mapping and dCAM extraction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    build_cube,
    extract_dcam,
    idx,
    inverse_order,
    merge_permutation_cams,
    random_permutations,
    rotation_order,
)
from repro.core.dcam import _m_transform
from repro.eval import pr_auc

DIMS = st.integers(min_value=2, max_value=8)
LENGTHS = st.integers(min_value=3, max_value=12)


@settings(max_examples=50, deadline=None)
@given(DIMS, LENGTHS, st.integers(min_value=0, max_value=10_000))
def test_every_row_and_column_of_cube_contains_all_dimensions(n_dims, length, seed):
    rng = np.random.default_rng(seed)
    series = rng.standard_normal((n_dims, length))
    cube = build_cube(series)
    for row in range(n_dims):
        row_ids = {int(series_id) for series_id in _identify_rows(cube[row], series)}
        assert row_ids == set(range(n_dims))
    for position in range(n_dims):
        column_ids = {int(series_id) for series_id in _identify_rows(cube[:, position], series)}
        assert column_ids == set(range(n_dims))


def _identify_rows(stack, series):
    """Map each univariate series in ``stack`` back to its dimension index."""
    for row in stack:
        matches = np.flatnonzero((series == row).all(axis=1))
        assert len(matches) >= 1
        yield matches[0]


@settings(max_examples=50, deadline=None)
@given(DIMS, LENGTHS, st.integers(min_value=0, max_value=10_000))
def test_idx_locates_dimensions_in_the_cube(n_dims, length, seed):
    rng = np.random.default_rng(seed)
    series = rng.standard_normal((n_dims, length))
    order = rng.permutation(n_dims)
    cube = build_cube(series, order)
    for dimension in range(n_dims):
        for position in range(n_dims):
            row = idx(dimension, position, order, n_dims)
            np.testing.assert_allclose(cube[row, position], series[dimension])


@settings(max_examples=50, deadline=None)
@given(DIMS, st.integers(min_value=0, max_value=10_000))
def test_inverse_order_roundtrip(n_dims, seed):
    order = np.random.default_rng(seed).permutation(n_dims)
    inverse = inverse_order(order)
    np.testing.assert_array_equal(order[inverse], np.arange(n_dims))
    np.testing.assert_array_equal(inverse[order], np.arange(n_dims))


@settings(max_examples=50, deadline=None)
@given(DIMS, st.integers(min_value=0, max_value=20))
def test_rotation_order_is_a_permutation(n_dims, shift):
    order = rotation_order(n_dims, shift)
    assert sorted(order.tolist()) == list(range(n_dims))


@settings(max_examples=30, deadline=None)
@given(DIMS, st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=10_000))
def test_random_permutations_are_valid_and_include_identity(n_dims, k, seed):
    permutations = random_permutations(n_dims, k, np.random.default_rng(seed))
    assert len(permutations) == k
    np.testing.assert_array_equal(permutations[0], np.arange(n_dims))
    for permutation in permutations:
        assert sorted(permutation.tolist()) == list(range(n_dims))


@settings(max_examples=40, deadline=None)
@given(DIMS, LENGTHS, st.integers(min_value=0, max_value=10_000))
def test_m_transform_constant_cam_gives_constant_m(n_dims, length, seed):
    """A CAM that is identical in every row carries no positional information."""
    rng = np.random.default_rng(seed)
    cam_row = rng.standard_normal(length)
    cam_rows = np.tile(cam_row, (n_dims, 1))
    order = rng.permutation(n_dims)
    transformed = _m_transform(cam_rows, order)
    assert transformed.shape == (n_dims, n_dims, length)
    for dimension in range(n_dims):
        for position in range(n_dims):
            np.testing.assert_allclose(transformed[dimension, position], cam_row)


@settings(max_examples=40, deadline=None)
@given(DIMS, LENGTHS, st.integers(min_value=0, max_value=10_000))
def test_extract_dcam_constant_m_bar_has_zero_variance_term(n_dims, length, seed):
    rng = np.random.default_rng(seed)
    per_time = rng.standard_normal(length)
    m_bar = np.tile(per_time, (n_dims, n_dims, 1))
    dcam, averaged = extract_dcam(m_bar)
    np.testing.assert_allclose(dcam, np.zeros((n_dims, length)), atol=1e-12)
    np.testing.assert_allclose(averaged, per_time * n_dims / 2.0, rtol=1e-10)


@settings(max_examples=40, deadline=None)
@given(DIMS, LENGTHS, st.integers(min_value=0, max_value=10_000))
def test_merge_permutation_cams_identity_average(n_dims, length, seed):
    """Averaging the same permutation CAM twice equals its own M transform."""
    rng = np.random.default_rng(seed)
    cam_rows = rng.standard_normal((n_dims, length))
    order = rng.permutation(n_dims)
    single = _m_transform(cam_rows, order)
    merged = merge_permutation_cams([(cam_rows, order), (cam_rows, order)])
    np.testing.assert_allclose(merged, single)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=5, max_value=60), st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=10_000))
def test_pr_auc_is_one_for_perfect_ranking(n_points, n_positive, seed):
    rng = np.random.default_rng(seed)
    n_positive = min(n_positive, n_points - 1)
    labels = np.zeros(n_points)
    positive_indices = rng.choice(n_points, size=n_positive, replace=False)
    labels[positive_indices] = 1
    scores = labels + rng.uniform(0.0, 0.4, size=n_points)  # positives strictly higher
    assert pr_auc(labels, scores) == 1.0


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=10, max_value=80), st.integers(min_value=0, max_value=10_000))
def test_pr_auc_bounded_between_zero_and_one(n_points, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n_points)
    if labels.sum() == 0:
        labels[0] = 1
    scores = rng.standard_normal(n_points)
    value = pr_auc(labels, scores)
    assert 0.0 <= value <= 1.0
