"""Unit tests of the recurrent cells and layers (repro.nn.recurrent)."""

import numpy as np
import pytest

from repro.nn import GRUCell, LSTMCell, RecurrentLayer, RNNCell, Tensor


RNG = np.random.default_rng(0)


class TestCells:
    def test_rnn_cell_shape_and_range(self):
        cell = RNNCell(3, 5, rng=np.random.default_rng(0))
        h = cell(Tensor(RNG.standard_normal((4, 3))), Tensor(np.zeros((4, 5))))
        assert h.shape == (4, 5)
        assert (np.abs(h.data) <= 1.0).all()  # tanh output

    def test_lstm_cell_returns_hidden_and_cell(self):
        cell = LSTMCell(3, 6, rng=np.random.default_rng(1))
        state = (Tensor(np.zeros((2, 6))), Tensor(np.zeros((2, 6))))
        hidden, cell_state = cell(Tensor(RNG.standard_normal((2, 3))), state)
        assert hidden.shape == (2, 6)
        assert cell_state.shape == (2, 6)

    def test_lstm_forget_bias_initialised_to_one(self):
        cell = LSTMCell(2, 4)
        np.testing.assert_allclose(cell.bias.data[4:8], np.ones(4))

    def test_gru_cell_shape(self):
        cell = GRUCell(3, 5, rng=np.random.default_rng(2))
        h = cell(Tensor(RNG.standard_normal((4, 3))), Tensor(np.zeros((4, 5))))
        assert h.shape == (4, 5)

    def test_gru_zero_update_gate_keeps_candidate(self):
        # With zero hidden state the output is a convex combination of 0 and the
        # candidate, so it must stay within the tanh range.
        cell = GRUCell(2, 3, rng=np.random.default_rng(3))
        h = cell(Tensor(np.ones((1, 2))), Tensor(np.zeros((1, 3))))
        assert (np.abs(h.data) <= 1.0).all()


class TestRecurrentLayer:
    @pytest.mark.parametrize("cell_type", ["rnn", "lstm", "gru"])
    def test_output_shape(self, cell_type):
        layer = RecurrentLayer(cell_type, 4, 8, rng=np.random.default_rng(0))
        out = layer(Tensor(RNG.standard_normal((3, 4, 12))))
        assert out.shape == (3, 8)

    @pytest.mark.parametrize("cell_type", ["rnn", "lstm", "gru"])
    def test_gradients_flow_to_parameters(self, cell_type):
        layer = RecurrentLayer(cell_type, 3, 5, rng=np.random.default_rng(1))
        out = layer(Tensor(RNG.standard_normal((2, 3, 6))))
        (out * out).sum().backward()
        grads = [p.grad for p in layer.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).sum() > 0 for g in grads)

    def test_unknown_cell_type_raises(self):
        with pytest.raises(ValueError):
            RecurrentLayer("transformer", 3, 5)

    def test_deterministic_given_seed(self):
        x = RNG.standard_normal((2, 3, 7))
        a = RecurrentLayer("gru", 3, 4, rng=np.random.default_rng(7))(Tensor(x)).data
        b = RecurrentLayer("gru", 3, 4, rng=np.random.default_rng(7))(Tensor(x)).data
        np.testing.assert_allclose(a, b)

    def test_depends_on_whole_sequence(self):
        layer = RecurrentLayer("rnn", 2, 4, rng=np.random.default_rng(5))
        x = RNG.standard_normal((1, 2, 10))
        base = layer(Tensor(x)).data
        perturbed = x.copy()
        perturbed[0, 0, 0] += 10.0  # change the very first time step
        assert not np.allclose(base, layer(Tensor(perturbed)).data)
