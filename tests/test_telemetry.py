"""Tests of the shared telemetry primitive and the repro.run progress hooks."""

from __future__ import annotations

import threading

from repro.runtime import ResultCache, progress_hooks, run
from repro.runtime.registry import register_work
from repro.runtime.spec import ExperimentSpec, WorkUnit
from repro.telemetry import Counter, Telemetry, Timer


@register_work("telemetry_probe_unit")
def telemetry_probe_unit(scale, *, value: int) -> int:
    return value * 10


def _probe_spec(values):
    units = tuple(WorkUnit.create("telemetry_probe_unit", value=value)
                  for value in values)
    return ExperimentSpec(name="telemetry-probe", scale=TinyKnobs(), units=units)


class TinyKnobs:
    """Duck-typed scale stand-in (hashable knob bundle for fingerprints)."""

    knob = 1


class TestPrimitives:
    def test_counter_thread_safety(self):
        counter = Counter("hits")
        threads = [threading.Thread(target=lambda: [counter.increment()
                                                    for _ in range(1000)])
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000

    def test_timer_accumulates(self):
        timer = Timer("work")
        with timer:
            pass
        with timer:
            pass
        assert timer.count == 2
        assert timer.seconds >= 0.0

    def test_snapshot_shape(self):
        telemetry = Telemetry()
        telemetry.increment("requests", 3)
        with telemetry.timer("engine"):
            pass
        snapshot = telemetry.snapshot()
        assert snapshot["requests"] == 3
        assert snapshot["engine_count"] == 1
        assert "engine_seconds" in snapshot

    def test_registry_reuses_instances(self):
        telemetry = Telemetry()
        assert telemetry.counter("a") is telemetry.counter("a")
        assert telemetry.timer("b") is telemetry.timer("b")


class TestRunHooks:
    def test_run_counts_units(self):
        telemetry = Telemetry()
        results = run(_probe_spec([1, 2, 3]), telemetry=telemetry)
        assert results == [10, 20, 30]
        snapshot = telemetry.snapshot()
        assert snapshot["units_total"] == 3
        assert snapshot["units_executed"] == 3
        assert snapshot["run_execute_count"] == 1

    def test_run_counts_cache_hits(self):
        cache = ResultCache()
        spec = _probe_spec([4, 5])
        run(spec, cache=cache)
        telemetry = Telemetry()
        results = run(spec, cache=cache, telemetry=telemetry)
        assert results == [40, 50]
        snapshot = telemetry.snapshot()
        assert snapshot["units_cached"] == 2
        assert "units_executed" not in snapshot

    def test_on_unit_fires_in_order(self):
        events = []

        def on_unit(index, total, unit, source):
            events.append((index, total, unit.kind, source))

        run(_probe_spec([7, 8]), on_unit=on_unit)
        assert events == [
            (0, 2, "telemetry_probe_unit", "executed"),
            (1, 2, "telemetry_probe_unit", "executed"),
        ]

    def test_ambient_progress_hooks(self):
        telemetry = Telemetry()
        events = []
        with progress_hooks(telemetry, lambda *args: events.append(args)):
            run(_probe_spec([1]))
        assert telemetry.snapshot()["units_total"] == 1
        assert len(events) == 1
        # Outside the context the hooks are gone.
        run(_probe_spec([2]))
        assert telemetry.snapshot()["units_total"] == 1
        assert len(events) == 1

    def test_explicit_hooks_win_over_ambient(self):
        ambient, explicit = Telemetry(), Telemetry()
        with progress_hooks(ambient):
            run(_probe_spec([1]), telemetry=explicit)
        assert "units_total" not in ambient.snapshot()
        assert explicit.snapshot()["units_total"] == 1

    def test_mixed_cache_and_executed_sources(self):
        cache = ResultCache()
        run(_probe_spec([1]), cache=cache)
        events = []

        def on_unit(index, total, unit, source):
            events.append((index, source))

        results = run(_probe_spec([1, 2]), cache=cache, on_unit=on_unit)
        assert results == [10, 20]
        assert (0, "cache") in events and (1, "executed") in events


def test_null_telemetry_helper():
    from repro.telemetry import null_telemetry

    telemetry = Telemetry()
    assert null_telemetry(telemetry) is telemetry
    assert isinstance(null_telemetry(None), Telemetry)
