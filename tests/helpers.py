"""Shared test helpers (kept outside conftest so they can be imported directly)."""

from __future__ import annotations

import numpy as np


def numerical_gradient(func, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of a scalar function of ``array``.

    ``func`` must read the current contents of ``array`` on every call; the
    helper perturbs ``array`` in place and restores it afterwards.
    """
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        upper = func()
        array[index] = original - eps
        lower = func()
        array[index] = original
        grad[index] = (upper - lower) / (2.0 * eps)
        iterator.iternext()
    return grad
