"""Tests of repro.dist: wire protocol, remote byte store, and the fleet.

The guarantees pinned here mirror the module's contracts:

* the frame protocol rejects torn, truncated and oversized frames rather
  than silently delivering bad bytes;
* :class:`RemoteByteStore` degrades to a no-op (miss / refused put) when the
  server is unreachable, and callers stacked on top of it —
  :class:`TieredByteStore`, :class:`ResultCache`,
  :class:`ModelArtifactStore` — keep answering from their local tiers with
  byte-identical content;
* the fleet executor produces results *identical* to serial execution, and
  survives failing units, dead workers and lease expiry.
"""

import os
import socket
import struct
import subprocess
import sys
import threading
import time
import zlib

import pytest

import fleet_provider  # noqa: F401  (registers the _fleet_* work kinds)
from repro.dist import (
    ByteStoreServer,
    FleetConfig,
    FleetCoordinator,
    FleetExecutor,
    ProtocolError,
    RemoteByteStore,
    RemoteRefusedError,
    RemoteStoreConfig,
    RemoteUnavailableError,
    UnitFailedError,
    WireClient,
    WireServer,
    parse_address,
    run_worker,
)
from repro.dist.protocol import MAGIC, _PREFIX, recv_message, send_message
from repro.experiments import tiny_scale
from repro.models import create_model
from repro.runtime import ExperimentSpec, ResultCache, SerialExecutor, WorkUnit, run
from repro.runtime.eviction import TieredByteStore
from repro.runtime.executor import executor_label
from repro.serve.store import ModelArtifactStore
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def scale():
    return tiny_scale(random_state=0)


@pytest.fixture()
def byte_server(tmp_path):
    server = ByteStoreServer(directory=str(tmp_path / "served")).start()
    yield server
    server.close()


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


FAST_REMOTE = dict(connect_timeout_s=0.2, request_timeout_s=2.0,
                   retries=1, backoff_s=0.01, down_cooldown_s=0.2)


# ---------------------------------------------------------------------------
# wire protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"op": "echo", "n": 3}, b"\x00\x01payload")
            header, payload = recv_message(b)
            assert header == {"op": "echo", "n": 3}
            assert payload == b"\x00\x01payload"
        finally:
            a.close()
            b.close()

    def test_corrupted_payload_is_rejected(self):
        # Flip one payload byte behind the CRC's back: the frame must not be
        # delivered as if it were intact.
        a, b = socket.socketpair()
        try:
            header = b'{"op":"put"}'
            payload = b"precious bytes"
            torn = bytearray(payload)
            torn[3] ^= 0xFF
            prefix = _PREFIX.pack(MAGIC, len(header), len(payload), zlib.crc32(payload))
            a.sendall(prefix + header + bytes(torn))
            with pytest.raises(ProtocolError, match="checksum"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_bad_magic_and_oversized_header_are_rejected(self):
        # A fresh pair per frame: after a rejected frame the stream is dead.
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!2sIQI", b"XX", 2, 0, 0) + b"{}")
            with pytest.raises(ProtocolError, match="magic"):
                recv_message(b)
        finally:
            a.close()
            b.close()
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!2sIQI", MAGIC, (1 << 20) + 1, 0, 0))
            with pytest.raises(ProtocolError, match="header length"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_receiver_payload_bound_trips_before_allocation(self):
        # A crafted frame header announcing a huge payload must be rejected
        # on the preamble alone — no payload bytes are ever buffered.
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!2sIQI", MAGIC, 2, 1 << 30, 0) + b"{}")
            with pytest.raises(ProtocolError, match="payload length"):
                recv_message(b, max_payload_bytes=1 << 20)
        finally:
            a.close()
            b.close()

    def test_parse_address(self):
        assert parse_address("example.org:7070") == ("example.org", 7070)
        assert parse_address(":7070") == ("127.0.0.1", 7070)
        with pytest.raises(ValueError):
            parse_address("no-port-here")


# ---------------------------------------------------------------------------
# wire server + client
# ---------------------------------------------------------------------------
class TestWireServerClient:
    def test_request_response_and_unknown_op(self):
        server = WireServer()
        server.register("double", lambda header, payload: ({"ok": True, "n": header["n"] * 2},
                                                           payload * 2))
        server.start()
        try:
            client = WireClient(RemoteStoreConfig(address=server.address, **FAST_REMOTE))
            header, payload = client.request({"op": "double", "n": 21}, b"ab")
            assert header["n"] == 42 and payload == b"abab"
            # An application-level refusal is not a transport failure: the
            # client must surface it immediately instead of retrying.
            with pytest.raises(RemoteUnavailableError, match="unknown op"):
                client.request({"op": "no-such-op"})
            client.close()
        finally:
            server.close()

    def test_server_enforces_its_payload_bound(self):
        server = WireServer(max_payload_bytes=1024)
        server.register("echo", lambda header, payload: ({"ok": True}, payload))
        server.start()
        try:
            client = WireClient(RemoteStoreConfig(address=server.address, **FAST_REMOTE))
            # Oversized frames cost the sender its connection, not the server
            # a buffer; a compliant frame on a fresh connection still works.
            with pytest.raises(RemoteUnavailableError):
                client.request({"op": "echo"}, b"x" * 2048)
            _, payload = client.request({"op": "echo"}, b"x" * 512)
            assert payload == b"x" * 512
            client.close()
        finally:
            server.close()

    def test_dead_server_raises_after_bounded_retries(self):
        config = RemoteStoreConfig(address=f"127.0.0.1:{free_port()}", **FAST_REMOTE)
        client = WireClient(config)
        start = time.monotonic()
        with pytest.raises(RemoteUnavailableError, match="no response"):
            client.request({"op": "get", "key": "k"})
        # retries are bounded: 2 attempts at 0.2s connect timeout + backoff.
        assert time.monotonic() - start < 5.0


# ---------------------------------------------------------------------------
# remote byte store
# ---------------------------------------------------------------------------
class TestRemoteByteStore:
    def test_put_get_contains_stats(self, byte_server):
        store = RemoteByteStore(RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE))
        assert store.get("missing") is None
        assert store.put("blob-a", b"alpha")
        assert store.get("blob-a") == b"alpha"
        assert store.contains("blob-a") and not store.contains("missing")
        stats = store.stats()
        assert stats["puts"] == 1 and stats["hits"] == 1
        assert store.ping()
        store.close()

    def test_invalid_keys_are_refused(self, byte_server):
        store = RemoteByteStore(RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE))
        with pytest.raises(RemoteUnavailableError, match="invalid store key"):
            store._client.request({"op": "get", "key": "../escape"})
        store.close()

    def test_refusal_does_not_mark_healthy_server_down(self, byte_server):
        # Regression: a refusal (server alive, operation rejected) used to be
        # caught as a transport failure and start a down-cooldown, disabling
        # the remote tier for every caller for down_cooldown_s.
        telemetry = Telemetry()
        store = RemoteByteStore(
            RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE),
            telemetry=telemetry,
        )
        assert store.get("bad/key") is None
        assert store.available
        assert store.put("ok-key", b"v") and store.get("ok-key") == b"v"
        counters = telemetry.snapshot()
        assert counters["remote_refusals"] == 1
        assert "remote_errors" not in counters
        assert "remote_down_skips" not in counters
        store.close()

    def test_down_server_degrades_to_misses(self):
        telemetry = Telemetry()
        store = RemoteByteStore(
            RemoteStoreConfig(address=f"127.0.0.1:{free_port()}", **FAST_REMOTE),
            telemetry=telemetry,
        )
        assert store.get("k") is None
        assert store.put("k", b"v") is False
        assert store.contains("k") is False
        assert not store.available
        # During the cooldown window the store answers without touching the
        # network at all.
        assert store.get("k") is None
        counters = telemetry.snapshot()
        assert counters["remote_errors"] >= 1
        assert counters["remote_down_skips"] >= 1
        store.close()

    def test_ping_recovers_after_cooldown(self, tmp_path):
        port = free_port()
        store = RemoteByteStore(RemoteStoreConfig(address=f"127.0.0.1:{port}", **FAST_REMOTE))
        assert not store.ping()
        server = ByteStoreServer(port=port, directory=str(tmp_path / "late")).start()
        try:
            time.sleep(0.25)  # let the down-cooldown window lapse
            assert store.ping()
            assert store.put("k", b"v") and store.get("k") == b"v"
        finally:
            store.close()
            server.close()


# ---------------------------------------------------------------------------
# tiered store failure paths (local tiers + remote tier)
# ---------------------------------------------------------------------------
class TestTieredByteStoreFailures:
    def test_remote_read_through_promotes_locally(self, byte_server, tmp_path):
        remote = RemoteByteStore(RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE))
        warm = TieredByteStore(directory=str(tmp_path / "warm"), remote=remote)
        warm.put("shared", b"from-host-a")

        cold = TieredByteStore(directory=str(tmp_path / "cold"), remote=remote)
        assert cold.get("shared") == b"from-host-a"
        # The read-through promoted the blob: a second read works even with
        # the server gone.
        byte_server.close()
        assert cold.get("shared") == b"from-host-a"
        remote.close()

    def test_refused_connection_mid_read_falls_back(self, tmp_path):
        port = free_port()
        server = ByteStoreServer(port=port, directory=str(tmp_path / "srv")).start()
        remote = RemoteByteStore(RemoteStoreConfig(address=f"127.0.0.1:{port}", **FAST_REMOTE))
        store = TieredByteStore(directory=str(tmp_path / "local"), remote=remote)
        store.put("k", b"v")
        server.close()
        # Local tiers still answer; a key absent locally is a miss, not an
        # exception, and writes still land locally.
        assert store.get("k") == b"v"
        assert store.get("remote-only") is None
        store.put("k2", b"v2")
        assert store.get("k2") == b"v2"
        remote.close()

    def test_invalidate_only_touches_local_tiers(self, byte_server, tmp_path):
        remote = RemoteByteStore(RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE))
        store = TieredByteStore(directory=str(tmp_path / "local"), remote=remote)
        store.put("k", b"v")
        store.invalidate("k")
        assert not os.path.exists(store.path("k"))
        # The remote copy survives (it is CRC-protected in transit, so local
        # corruption says nothing about it) and read-through restores it.
        assert store.get("k") == b"v"
        remote.close()

    def test_fallback_byte_identity(self, tmp_path):
        # The same key served with and without a (dead) remote tier must
        # yield the exact same bytes — the remote tier is invisible to
        # correctness.
        blob = os.urandom(257)
        plain = TieredByteStore(directory=str(tmp_path / "a"))
        plain.put("k", blob)
        dead_remote = RemoteByteStore(
            RemoteStoreConfig(address=f"127.0.0.1:{free_port()}", **FAST_REMOTE))
        degraded = TieredByteStore(directory=str(tmp_path / "b"), remote=dead_remote)
        degraded.put("k", blob)
        assert plain.get("k") == degraded.get("k") == blob
        dead_remote.close()


class TestResultCacheCorruption:
    def test_torn_disk_blob_is_a_miss_and_invalidated(self, scale, tmp_path):
        cache = ResultCache(directory=str(tmp_path / "cache"))
        unit = WorkUnit.create("_fleet_square", value=9)
        from repro.runtime import unit_fingerprint

        key = unit_fingerprint(scale, unit)
        blob = cache.store(key, 81)
        # Tear the on-disk pickle (truncate to half) and drop the memory tier
        # so the next lookup must read the torn file.
        path = cache._store.path(key)
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        cache._store.memory.discard(key)
        hit, value = cache.lookup(key)
        assert not hit and value is None
        assert cache.stats.corrupt == 1
        assert not os.path.exists(path)  # invalidated, not left to fail again
        # The slot is usable again immediately.
        cache.store(key, 81)
        assert cache.lookup(key) == (True, 81)

    def test_remote_backed_caches_share_byte_identical_blobs(self, scale, byte_server, tmp_path):
        remote = RemoteByteStore(RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE))
        first = ResultCache(directory=str(tmp_path / "host-a"), remote=remote)
        unit = WorkUnit.create("_fleet_square", value=12)
        from repro.runtime import unit_fingerprint

        key = unit_fingerprint(scale, unit)
        blob = first.store(key, 144)
        second = ResultCache(directory=str(tmp_path / "host-b"), remote=remote)
        assert second.get_blob(key) == blob
        assert second.lookup(key) == (True, 144)
        remote.close()


# ---------------------------------------------------------------------------
# artifact store over the remote tier
# ---------------------------------------------------------------------------
class TestArtifactStoreRemote:
    def test_cross_host_fetch_is_byte_identical(self, byte_server, tmp_path):
        remote = RemoteByteStore(RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE))
        model = create_model("cnn", 3, 32, 2)
        publisher = ModelArtifactStore(str(tmp_path / "host-a"), remote=remote)
        artifact = publisher.register("demo", model, model_name="cnn")

        fetcher = ModelArtifactStore(str(tmp_path / "host-b"), remote=remote)
        assert "demo" in fetcher.list_names()
        assert "demo" in fetcher
        fetched = fetcher.artifact("demo")
        assert fetched.state_hash == artifact.state_hash
        loaded = fetcher.load("demo")
        assert loaded.n_dimensions == 3 and loaded.n_classes == 2
        with open(os.path.join(str(tmp_path / "host-a"), "demo", "weights.npz"), "rb") as fh:
            original = fh.read()
        with open(os.path.join(str(tmp_path / "host-b"), "demo", "weights.npz"), "rb") as fh:
            copied = fh.read()
        assert original == copied
        remote.close()

    def test_unknown_artifact_still_raises(self, byte_server, tmp_path):
        remote = RemoteByteStore(RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE))
        store = ModelArtifactStore(str(tmp_path / "empty"), remote=remote)
        with pytest.raises(KeyError):
            store.artifact("never-registered")
        remote.close()


# ---------------------------------------------------------------------------
# atomic server-side index updates (the index-update op)
# ---------------------------------------------------------------------------
class TestIndexUpdate:
    def test_merges_server_side_and_tolerates_corruption(self, byte_server):
        remote = RemoteByteStore(RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE))
        assert remote.index_update("idx", ["b", "a"]) == ["a", "b"]
        assert remote.index_update("idx", ["c"]) == ["a", "b", "c"]
        # A corrupt index is rebuilt from the submitted names instead of
        # poisoning every later publish.
        byte_server.store.put("idx", b"{not json")
        assert remote.index_update("idx", ["d"]) == ["d"]
        assert remote.telemetry.counter("remote_index_updates").value == 3
        remote.close()

    def test_concurrent_updates_drop_no_names(self, byte_server):
        import json as json_module

        remotes = [
            RemoteByteStore(RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE))
            for _ in range(8)
        ]
        threads = [
            threading.Thread(target=remote.index_update, args=("races", [f"name-{index}"]))
            for index, remote in enumerate(remotes)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merged = json_module.loads(byte_server.store.get("races").decode("utf-8"))
        assert merged == [f"name-{index}" for index in range(8)]
        for remote in remotes:
            remote.close()

    def test_refusal_from_old_server_is_remembered_without_cooldown(self, byte_server):
        # Simulate a pre-index-update server: the op is simply unknown.
        del byte_server.wire._handlers["index-update"]
        remote = RemoteByteStore(RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE))
        assert remote.index_update("idx", ["a"]) is None
        # The refusal proved the server alive: no down-cooldown started and
        # ordinary ops keep flowing.
        assert remote.available
        assert remote.put("k", b"v") and remote.get("k") == b"v"
        assert remote.telemetry.counter("remote_errors").value == 0
        # The answer is remembered; later updates skip straight to None.
        assert remote._index_update_supported is False
        assert remote.index_update("idx", ["b"]) is None
        remote.close()

    def test_register_falls_back_to_client_side_put(self, byte_server, tmp_path):
        del byte_server.wire._handlers["index-update"]
        remote = RemoteByteStore(RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE))
        store = ModelArtifactStore(str(tmp_path / "host-a"), remote=remote)
        store.register("legacy", create_model("cnn", 3, 32, 2), model_name="cnn")
        fetcher = ModelArtifactStore(
            str(tmp_path / "host-b"),
            remote=RemoteByteStore(RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE)),
        )
        assert "legacy" in fetcher.list_names()
        remote.close()

    def test_invalid_add_payload_is_refused(self, byte_server):
        client = WireClient(RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE))
        with pytest.raises(RemoteRefusedError, match="list of name strings"):
            client.request({"op": "index-update", "key": "idx", "add": "oops"})
        # The subclass preserves the historical catch-all behaviour.
        assert issubclass(RemoteRefusedError, RemoteUnavailableError)
        client.close()


# ---------------------------------------------------------------------------
# fleet coordinator (pure queue semantics, no sockets)
# ---------------------------------------------------------------------------
class TestFleetCoordinator:
    def make(self, **overrides):
        config = FleetConfig(**{"lease_timeout_s": 0.3, "max_attempts": 2, **overrides})
        return FleetCoordinator(config)

    def test_lease_complete_wait(self):
        coord = self.make()
        unit_id = coord.submit(b"blob", fingerprint="fp")
        leased_id, state, shutdown = coord.lease("w1")
        assert leased_id == unit_id and state.blob == b"blob" and not shutdown
        coord.complete(unit_id, b"result")
        finished = coord.wait(unit_id, timeout_s=1.0)
        assert finished.result_blob == b"result" and finished.done

    def test_empty_queue_and_drain(self):
        coord = self.make()
        assert coord.lease("w1") == (None, None, False)
        coord.drain()
        assert coord.lease("w1") == (None, None, True)

    def test_fail_requeues_until_max_attempts(self):
        coord = self.make()
        unit_id = coord.submit(b"blob")
        coord.lease("w1")
        coord.fail(unit_id, "boom 1")
        leased_id, state, _ = coord.lease("w1")  # requeued
        assert leased_id == unit_id and state.attempts == 2
        coord.fail(unit_id, "boom 2")
        finished = coord.wait(unit_id, timeout_s=1.0)
        assert finished.done and "boom 2" in finished.error

    def test_lease_expiry_requeues_at_queue_front(self):
        coord = self.make()
        dying = coord.submit(b"dying")
        behind = coord.submit(b"behind")
        leased_id, _, _ = coord.lease("doomed")
        assert leased_id == dying
        time.sleep(0.35)  # outlive the lease without heartbeating
        # The expired unit jumps the queue ahead of `behind`.
        leased_id, state, _ = coord.lease("healthy")
        assert leased_id == dying and state.attempts == 2
        leased_id, _, _ = coord.lease("healthy")
        assert leased_id == behind
        assert coord.telemetry.snapshot()["fleet_leases_expired"] == 1

    def test_heartbeat_extends_leases(self):
        coord = self.make()
        unit_id = coord.submit(b"blob")
        coord.lease("steady")
        for _ in range(3):
            time.sleep(0.15)
            assert coord.heartbeat("steady") == 1
        # Well past the original deadline, the lease is still alive.
        assert coord.lease("thief") == (None, None, False)
        coord.complete(unit_id, b"ok")
        assert coord.wait(unit_id, timeout_s=1.0).result_blob == b"ok"

    def test_late_complete_after_expiry_rerun_is_ignored(self):
        coord = self.make()
        unit_id = coord.submit(b"blob")
        coord.lease("slow")
        time.sleep(0.35)
        coord.lease("fast")  # expiry re-lease
        coord.complete(unit_id, b"fast-result")
        coord.complete(unit_id, b"slow-result")  # the zombie answers late
        assert coord.wait(unit_id, timeout_s=1.0).result_blob == b"fast-result"


# ---------------------------------------------------------------------------
# fleet executor end-to-end (in-process workers on threads)
# ---------------------------------------------------------------------------
def start_worker_thread(address, cache=None, **kwargs):
    kwargs.setdefault("poll_interval_s", 0.02)
    kwargs.setdefault("heartbeat_interval_s", 0.1)
    thread = threading.Thread(
        target=run_worker, args=(address,), kwargs={"cache": cache, **kwargs}, daemon=True
    )
    thread.start()
    return thread


class TestFleetExecutor:
    def test_fleet_matches_serial_and_preserves_order(self, scale):
        spec = ExperimentSpec("fleet-square", scale, tuple(
            WorkUnit.create("_fleet_square", value=value) for value in range(8)))
        serial = run(spec, executor=SerialExecutor())
        with FleetExecutor(FleetConfig(lease_timeout_s=5.0)) as executor:
            assert executor_label(executor) == f"fleet[{executor.address}]"
            workers = [start_worker_thread(executor.address) for _ in range(2)]
            fleet = run(spec, executor=executor)
        for worker in workers:
            worker.join(timeout=5.0)
        assert fleet == serial == [value * value for value in range(8)]

    def test_failing_unit_surfaces_unit_failed_error(self, scale):
        spec = ExperimentSpec("fleet-fail", scale, (
            WorkUnit.create("_fleet_echo", value=1),
            WorkUnit.create("_fleet_fail", value=2),
        ))
        with FleetExecutor(FleetConfig(lease_timeout_s=5.0, max_attempts=2)) as executor:
            start_worker_thread(executor.address)
            with pytest.raises(UnitFailedError, match="exploded"):
                run(spec, executor=executor)

    def test_workers_dedupe_against_shared_cache(self, scale, tmp_path):
        counter_dir = str(tmp_path / "executions")
        cache_dir = str(tmp_path / "shared-cache")
        spec = ExperimentSpec("fleet-dedupe", scale, tuple(
            WorkUnit.create("_fleet_touch_count", value=value, counter_dir=counter_dir)
            for value in range(4)))

        def fleet_run():
            # The *executor side* holds no cache — dedupe must happen on the
            # workers against the shared store.
            with FleetExecutor(FleetConfig(lease_timeout_s=5.0)) as executor:
                worker_cache = ResultCache(directory=cache_dir)
                worker = start_worker_thread(executor.address, cache=worker_cache)
                result = run(spec, executor=executor)
            worker.join(timeout=5.0)
            return result

        first = fleet_run()
        assert len(os.listdir(counter_dir)) == 4
        second = fleet_run()  # warm store: every unit answered from cache
        assert second == first
        assert len(os.listdir(counter_dir)) == 4

    def test_direct_map_of_plain_payloads(self):
        with FleetExecutor(FleetConfig()) as executor:
            start_worker_thread(executor.address)
            assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]


def _double(value):
    return value * 2


# ---------------------------------------------------------------------------
# subprocess fleet: a worker dies mid-unit and the sweep still finishes
# ---------------------------------------------------------------------------
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def worker_env():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    tests = os.path.join(REPO_ROOT, "tests")
    env["PYTHONPATH"] = os.pathsep.join(
        [src, tests] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p])
    return env


class TestFleetSubprocess:
    def test_sweep_survives_worker_killed_mid_unit(self, scale, tmp_path):
        marker = str(tmp_path / "suicide-marker")
        spec = ExperimentSpec("fleet-survival", scale, (
            WorkUnit.create("_fleet_echo", value=0),
            WorkUnit.create("_fleet_suicide", value=99, marker=marker),
            WorkUnit.create("_fleet_echo", value=1),
            WorkUnit.create("_fleet_echo", value=2),
        ))
        workers = []
        try:
            with FleetExecutor(FleetConfig(lease_timeout_s=1.5)) as executor:
                workers = [
                    subprocess.Popen(
                        [sys.executable, "-m", "repro", "worker",
                         "--connect", executor.address,
                         "--provider", "fleet_provider",
                         "--poll-interval-s", "0.05", "--max-idle-s", "60"],
                        env=worker_env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
                    for _ in range(2)
                ]
                result = run(spec, executor=executor)
            # The executor is closed now: the survivor sees the drained
            # coordinator (or the dead socket) and exits on its own.
            for worker in workers:
                worker.wait(timeout=30)
        finally:
            for worker in workers:
                if worker.poll() is None:
                    worker.kill()
        assert result == [0, 99, 1, 2]
        assert os.path.exists(marker)  # one worker really did die mid-unit
        assert any(worker.returncode == 1 for worker in workers)
        counters = executor.telemetry.snapshot()
        assert counters["fleet_leases_expired"] >= 1
