"""Unit tests of losses and optimizers (repro.nn.loss / repro.nn.optim)."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    CrossEntropyLoss,
    Linear,
    Tensor,
    clip_grad_norm,
    cross_entropy,
    mse_loss,
    nll_loss,
)
from repro.nn import functional as F
from repro.nn.layers import Parameter


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = np.array([[2.0, 1.0, 0.1], [0.5, 2.5, 0.0]])
        targets = np.array([0, 1])
        loss = cross_entropy(Tensor(logits), targets).item()
        probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        expected = -np.mean(np.log(probs[np.arange(2), targets]))
        assert abs(loss - expected) < 1e-10

    def test_perfect_prediction_has_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = cross_entropy(Tensor(logits), np.array([0, 1])).item()
        assert loss < 1e-6

    def test_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(np.array([[1.0, 2.0, 3.0]]), requires_grad=True)
        targets = np.array([2])
        cross_entropy(logits, targets).backward()
        probs = np.exp(logits.data) / np.exp(logits.data).sum()
        expected = probs.copy()
        expected[0, 2] -= 1.0
        np.testing.assert_allclose(logits.grad, expected, rtol=1e-10)

    def test_class_weights(self):
        logits = Tensor(np.array([[0.0, 0.0], [0.0, 0.0]]))
        unweighted = cross_entropy(logits, np.array([0, 1])).item()
        weighted = cross_entropy(logits, np.array([0, 1]),
                                 class_weights=np.array([1.0, 3.0])).item()
        # Equal logits: both classes have the same per-instance loss, so the
        # weighted mean equals the unweighted one.
        assert abs(unweighted - weighted) < 1e-12

    def test_rejects_bad_target_shape(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([[0], [1]]))

    def test_loss_object(self):
        loss_fn = CrossEntropyLoss()
        value = loss_fn(Tensor(np.zeros((2, 4))), np.array([1, 2]))
        assert abs(value.item() - np.log(4)) < 1e-10

    def test_nll_loss_consistent_with_cross_entropy(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((3, 4)))
        targets = np.array([0, 3, 1])
        ce = cross_entropy(logits, targets).item()
        nll = nll_loss(F.log_softmax(logits), targets).item()
        assert abs(ce - nll) < 1e-10

    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert abs(mse_loss(pred, np.array([0.0, 0.0])).item() - 2.5) < 1e-12


class TestOptimizers:
    def _quadratic_problem(self):
        # Minimise ||w - target||^2; optimum is w == target.
        target = np.array([1.0, -2.0, 3.0])
        param = Parameter(np.zeros(3))
        return param, target

    def test_sgd_converges_on_quadratic(self):
        param, target = self._quadratic_problem()
        optimizer = SGD([param], lr=0.1)
        for _ in range(200):
            loss = ((param - Tensor(target)) ** 2).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-4)

    def test_sgd_momentum_faster_than_plain(self):
        param_plain, target = self._quadratic_problem()
        param_momentum = Parameter(np.zeros(3))
        plain = SGD([param_plain], lr=0.01)
        momentum = SGD([param_momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            for param, optimizer in ((param_plain, plain), (param_momentum, momentum)):
                loss = ((param - Tensor(target)) ** 2).sum()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        error_plain = np.abs(param_plain.data - target).sum()
        error_momentum = np.abs(param_momentum.data - target).sum()
        assert error_momentum < error_plain

    def test_adam_converges_on_quadratic(self):
        param, target = self._quadratic_problem()
        optimizer = Adam([param], lr=0.1)
        for _ in range(300):
            loss = ((param - Tensor(target)) ** 2).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([10.0]))
        optimizer = Adam([param], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            loss = (param * 0.0).sum()  # gradient comes only from the decay
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert abs(param.data[0]) < 10.0

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_step_skips_parameters_without_gradient(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], lr=0.1)
        optimizer.step()  # no backward was called; should be a no-op
        np.testing.assert_allclose(param.data, [1.0])

    def test_clip_grad_norm(self):
        param = Parameter(np.array([3.0, 4.0]))
        (param * param).sum().backward()  # grad = [6, 8], norm 10
        norm = clip_grad_norm([param], max_norm=1.0)
        assert abs(norm - 10.0) < 1e-9
        np.testing.assert_allclose(np.linalg.norm(param.grad), 1.0, rtol=1e-9)

    def test_training_a_small_classifier_improves_accuracy(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((64, 10))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        model = Linear(10, 2, rng=rng)
        optimizer = Adam(model.parameters(), lr=0.05)
        for _ in range(100):
            logits = model(Tensor(X))
            loss = cross_entropy(logits, y)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        accuracy = (model(Tensor(X)).data.argmax(axis=1) == y).mean()
        assert accuracy > 0.9
