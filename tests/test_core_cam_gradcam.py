"""Unit tests of CAM / cCAM / grad-CAM (repro.core.cam, repro.core.gradcam)."""

import numpy as np
import pytest

from repro.core import (
    cam_as_multivariate,
    class_activation_map,
    grad_cam,
    mtex_explanation,
    mtex_grad_cam,
    predicted_class,
)
from repro.models import GRUClassifier


class TestCAM:
    def test_cam_of_1d_model_is_univariate(self, trained_cnn, tiny_type1_dataset):
        cam = class_activation_map(trained_cnn, tiny_type1_dataset.X[0], class_id=1)
        assert cam.shape == (tiny_type1_dataset.length,)

    def test_cam_of_ccnn_is_multivariate(self, trained_ccnn, tiny_type1_dataset):
        cam = class_activation_map(trained_ccnn, tiny_type1_dataset.X[0], class_id=1)
        assert cam.shape == (tiny_type1_dataset.n_dimensions, tiny_type1_dataset.length)

    def test_cam_of_dcnn_over_cube_rows(self, trained_dcnn, tiny_type1_dataset):
        cam = class_activation_map(trained_dcnn, tiny_type1_dataset.X[0], class_id=0)
        assert cam.shape == (tiny_type1_dataset.n_dimensions, tiny_type1_dataset.length)

    def test_cam_matches_gap_logit_decomposition(self, trained_cnn, tiny_type1_dataset):
        """The time-average of CAM_c equals the class logit minus its bias."""
        series = tiny_type1_dataset.X[0]
        trained_cnn.eval()
        prepared = trained_cnn.prepare_input(series[None])
        logits = trained_cnn.forward(prepared).data[0]
        for class_id in range(tiny_type1_dataset.n_classes):
            cam = class_activation_map(trained_cnn, series, class_id)
            bias = trained_cnn.classifier.bias.data[class_id]
            np.testing.assert_allclose(cam.mean() + bias, logits[class_id],
                                       rtol=1e-8, atol=1e-10)

    def test_relu_option_clips_negatives(self, trained_cnn, tiny_type1_dataset):
        cam = class_activation_map(trained_cnn, tiny_type1_dataset.X[0], 1, relu=True)
        assert (cam >= 0).all()

    def test_order_rejected_for_non_cube_models(self, trained_cnn, tiny_type1_dataset):
        with pytest.raises(ValueError):
            class_activation_map(trained_cnn, tiny_type1_dataset.X[0], 1,
                                 order=np.array([1, 0, 2, 3]))

    def test_order_changes_dcnn_cam(self, trained_dcnn, tiny_type1_dataset):
        series = tiny_type1_dataset.X[0]
        base = class_activation_map(trained_dcnn, series, 1)
        permuted = class_activation_map(trained_dcnn, series, 1,
                                        order=np.array([1, 0, 3, 2]))
        assert not np.allclose(base, permuted)

    def test_rejects_models_without_gap(self, tiny_type1_dataset):
        model = GRUClassifier(tiny_type1_dataset.n_dimensions, tiny_type1_dataset.length,
                              2, hidden_size=8)
        with pytest.raises(TypeError):
            class_activation_map(model, tiny_type1_dataset.X[0], 0)

    def test_rejects_bad_series_shape(self, trained_cnn):
        with pytest.raises(ValueError):
            class_activation_map(trained_cnn, np.zeros(10), 0)

    def test_cam_as_multivariate(self):
        broadcast = cam_as_multivariate(np.arange(5.0), 3)
        assert broadcast.shape == (3, 5)
        np.testing.assert_allclose(broadcast[0], broadcast[2])
        with pytest.raises(ValueError):
            cam_as_multivariate(np.zeros((2, 5)), 3)

    def test_predicted_class(self, trained_cnn, tiny_type1_dataset):
        label = predicted_class(trained_cnn, tiny_type1_dataset.X[0])
        assert label in (0, 1)


class TestGradCAM:
    def test_grad_cam_shape_matches_cam(self, trained_cnn, tiny_type1_dataset):
        heatmap = grad_cam(trained_cnn, tiny_type1_dataset.X[0], class_id=1)
        assert heatmap.shape == (tiny_type1_dataset.length,)
        assert (heatmap >= 0).all()

    def test_grad_cam_on_ccnn(self, trained_ccnn, tiny_type1_dataset):
        heatmap = grad_cam(trained_ccnn, tiny_type1_dataset.X[0], class_id=0)
        assert heatmap.shape == (tiny_type1_dataset.n_dimensions, tiny_type1_dataset.length)

    def test_mtex_grad_cam_shapes(self, trained_mtex, tiny_type1_dataset):
        dimension_map, temporal_map = mtex_grad_cam(trained_mtex, tiny_type1_dataset.X[0], 1)
        assert dimension_map.shape == (tiny_type1_dataset.n_dimensions,
                                       tiny_type1_dataset.length)
        assert temporal_map.shape == (tiny_type1_dataset.length,)
        assert (dimension_map >= 0).all()

    def test_mtex_explanation_combines_maps(self, trained_mtex, tiny_type1_dataset):
        explanation = mtex_explanation(trained_mtex, tiny_type1_dataset.X[0], 1)
        assert explanation.shape == (tiny_type1_dataset.n_dimensions,
                                     tiny_type1_dataset.length)
        assert (explanation >= 0).all()

    def test_grad_cam_differs_between_classes(self, trained_cnn, tiny_type1_dataset):
        series = tiny_type1_dataset.X[0]
        a = grad_cam(trained_cnn, series, 0, relu=False)
        b = grad_cam(trained_cnn, series, 1, relu=False)
        assert not np.allclose(a, b)
