"""Unit tests for the observability package (repro.obs).

Covers the histogram primitive (fixed bucket geometry, quantile error
budget, cross-process merging), the telemetry registry's snapshot-key
collision detection, the tracing primitives (sampling, context
propagation, the bounded span ring), the Prometheus text exposition
(golden parse + re-serialize round-trip), and the sidecar /metrics HTTP
server under concurrent writers.
"""

import json
import math
import threading
import urllib.request

import pytest

from repro.obs import (
    Histogram,
    MetricsHTTPServer,
    ObsConfig,
    Span,
    SpanRing,
    Telemetry,
    Tracer,
    activate,
    current,
    maybe_trace,
    parse_prometheus,
    render_prometheus,
    span,
    trace_wire_header,
)
from repro.obs.exposition import PROMETHEUS_CONTENT_TYPE, prometheus_requested
from repro.obs.metrics import BUCKET_UPPER_BOUNDS, bucket_index


# ---------------------------------------------------------------------------
# Histogram
# ---------------------------------------------------------------------------
class TestHistogram:
    def test_bucket_geometry_is_fixed_and_monotone(self):
        assert len(BUCKET_UPPER_BOUNDS) == 120
        assert BUCKET_UPPER_BOUNDS[-1] == math.inf
        assert all(a < b for a, b in zip(BUCKET_UPPER_BOUNDS, BUCKET_UPPER_BOUNDS[1:]))
        assert bucket_index(0.0) == 0
        assert bucket_index(1e-6) == 0
        assert bucket_index(1e9) == 119  # overflow bucket
        # A value strictly inside a bucket maps to it (exact bounds may
        # land one bucket up through floating-point log rounding).
        for index, bound in enumerate(BUCKET_UPPER_BOUNDS[:-1]):
            assert bucket_index(bound * 0.999) <= index

    def test_count_sum_min_max(self):
        histogram = Histogram("t")
        for value in (0.001, 0.002, 0.004):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.007)
        payload = histogram.to_dict()
        assert payload["min"] == 0.001 and payload["max"] == 0.004

    def test_quantiles_within_documented_error_budget(self):
        # sqrt(growth) - 1 ~ 9% relative error is the documented budget.
        import random

        rng = random.Random(7)
        values = [rng.lognormvariate(-6.0, 1.0) for _ in range(5000)]
        histogram = Histogram("lat")
        for value in values:
            histogram.observe(value)
        values.sort()
        for q in (0.50, 0.90, 0.99):
            exact = values[int(q * len(values)) - 1]
            estimate = histogram.quantile(q)
            assert abs(estimate - exact) / exact < 0.10

    def test_empty_quantile_and_validation(self):
        histogram = Histogram("empty")
        assert histogram.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.quantile(0.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_merge_dict_round_trip_is_exact(self):
        a, b = Histogram("a"), Histogram("b")
        for value in (0.0001, 0.003, 0.2):
            a.observe(value)
        for value in (0.001, 5.0):
            b.observe(value)
        merged = Histogram("merged")
        merged.merge_dict(a.to_dict())
        merged.merge_dict(b.to_dict())
        assert merged.count == 5
        assert merged.sum == pytest.approx(a.sum + b.sum)
        direct = Histogram("direct")
        for value in (0.0001, 0.003, 0.2, 0.001, 5.0):
            direct.observe(value)
        assert merged.to_dict() == direct.to_dict()

    def test_cumulative_buckets_end_at_total_count(self):
        histogram = Histogram("c")
        for value in (0.001, 0.001, 0.1):
            histogram.observe(value)
        pairs = histogram.cumulative_buckets()
        assert pairs[-1] == (math.inf, 3)
        cumulative = [count for _, count in pairs]
        assert cumulative == sorted(cumulative)


# ---------------------------------------------------------------------------
# Telemetry registry: snapshot-key collision detection (regression)
# ---------------------------------------------------------------------------
class TestTelemetryCollisions:
    def test_timer_suffix_cannot_shadow_counter(self):
        telemetry = Telemetry()
        telemetry.counter("engine_seconds").increment()
        with pytest.raises(ValueError, match="engine_seconds"):
            telemetry.timer("engine")

    def test_counter_cannot_shadow_timer_suffix(self):
        telemetry = Telemetry()
        with telemetry.timer("engine"):
            pass
        with pytest.raises(ValueError, match="engine_count"):
            telemetry.counter("engine_count")

    def test_gauge_and_counter_cannot_share_a_name(self):
        telemetry = Telemetry()
        telemetry.gauge("depth").set(3)
        with pytest.raises(ValueError, match="depth"):
            telemetry.counter("depth")

    def test_same_kind_reuse_returns_the_same_instance(self):
        telemetry = Telemetry()
        assert telemetry.counter("requests") is telemetry.counter("requests")
        assert telemetry.timer("engine") is telemetry.timer("engine")
        assert telemetry.gauge("depth") is telemetry.gauge("depth")

    def test_snapshot_shape_is_unchanged(self):
        telemetry = Telemetry()
        telemetry.increment("requests", 2)
        telemetry.timer("explain").add(0.5)
        telemetry.gauge("depth").set(4)
        snapshot = telemetry.snapshot()
        assert snapshot == {
            "requests": 2,
            "explain_seconds": 0.5,
            "explain_count": 1,
            "depth": 4.0,
        }

    def test_every_timer_feeds_a_same_named_histogram(self):
        telemetry = Telemetry()
        telemetry.timer("engine").add(0.25)
        summaries = telemetry.histogram_summaries()
        assert summaries["engine"]["count"] == 1
        assert summaries["engine"]["sum"] == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------
class TestTracing:
    def test_sample_rate_zero_yields_no_spans(self):
        tracer = Tracer(sample_rate=0.0)
        with maybe_trace(tracer, "root") as root:
            assert root is None
            assert current() is None
        assert len(tracer.ring) == 0

    def test_sampled_root_records_nested_child_spans(self):
        tracer = Tracer(sample_rate=1.0, process="test")
        with maybe_trace(tracer, "root", model="m"):
            with span("child", tier="memory"):
                pass
        spans = tracer.ring.spans()
        assert [s.name for s in spans] == ["child", "root"]
        child, root = spans
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert root.parent_id is None
        assert root.attrs == {"model": "m"}
        assert child.process == "test"
        assert child.duration_s >= 0.0

    def test_span_outside_any_trace_is_a_no_op(self):
        with span("orphan") as recorded:
            assert recorded is None

    def test_in_block_attrs_are_recorded(self):
        tracer = Tracer(sample_rate=1.0)
        with maybe_trace(tracer, "root"):
            with span("lookup") as recorded:
                recorded.attrs["tier"] = "disk"
        assert tracer.ring.spans()[0].attrs == {"tier": "disk"}

    def test_activate_restores_context_on_another_thread(self):
        tracer = Tracer(sample_rate=1.0)
        captured = {}

        with maybe_trace(tracer, "root"):
            ctx = current()

            def worker():
                assert current() is None
                with activate(ctx):
                    with span("threaded"):
                        pass
                captured["done"] = True

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert captured["done"]
        names = [s.name for s in tracer.ring.spans()]
        assert "threaded" in names

    def test_wire_header_round_trip(self):
        tracer = Tracer(sample_rate=1.0)
        assert trace_wire_header() is None
        with maybe_trace(tracer, "root"):
            wire = trace_wire_header()
            assert set(wire) == {"trace_id", "span_id"}
            adopted = tracer.adopt(wire)
            assert adopted.trace_id == wire["trace_id"]
        assert tracer.adopt(None) is None
        assert tracer.adopt({"trace_id": 7}) is None
        assert tracer.adopt("garbage") is None

    def test_span_serialization_round_trip(self):
        original = Span(
            trace_id="t", span_id="s", parent_id="p", name="n",
            start_s=1.5, duration_s=0.25, process="serve", attrs={"k": 1})
        assert Span.from_dict(original.to_dict()) == original

    def test_ring_is_bounded_and_drains_oldest_first(self):
        ring = SpanRing(capacity=3)
        for index in range(5):
            ring.record(Span("t", str(index), None, "n", 0.0, 0.0))
        assert len(ring) == 3 and ring.recorded == 5
        assert [s.span_id for s in ring.spans()] == ["2", "3", "4"]
        drained = ring.drain(2)
        assert [s.span_id for s in drained] == ["2", "3"]
        assert len(ring) == 1

    def test_tracer_validation(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            SpanRing(capacity=0)


class TestObsConfig:
    def test_defaults_and_validation(self):
        config = ObsConfig()
        assert config.trace_sample_rate == 0.0
        assert config.trace_ring_size == 2048
        with pytest.raises(ValueError):
            ObsConfig(trace_sample_rate=2.0)
        with pytest.raises(ValueError):
            ObsConfig(trace_ring_size=0)


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------
def _sample_registry() -> Telemetry:
    telemetry = Telemetry()
    telemetry.increment("requests", 5)
    telemetry.increment("cache_hits[dcnn-t/explain]", 2)
    telemetry.gauge("queue_depth[dcnn-t/explain]").set(3)
    telemetry.gauge("load_factor").set(0.5)
    telemetry.timer("engine").add(0.002)
    telemetry.timer("engine").add(0.004)
    telemetry.timer("flush_explain").add(0.01)
    return telemetry


class TestPrometheusExposition:
    def test_golden_parse_and_reserialize_round_trip(self):
        telemetry = _sample_registry()
        text = render_prometheus(telemetry)
        # Deterministic: rendering twice yields identical bytes.
        assert text == render_prometheus(telemetry)
        series = parse_prometheus(text)
        assert series[("repro_requests_total", ())] == 5
        assert series[("repro_cache_hits_total",
                       (("kind", "explain"), ("model", "dcnn-t")))] == 2
        assert series[("repro_queue_depth",
                       (("kind", "explain"), ("model", "dcnn-t")))] == 3
        assert series[("repro_load_factor", ())] == 0.5
        assert series[("repro_engine_seconds_count", ())] == 2
        assert series[("repro_engine_seconds_sum", ())] == pytest.approx(0.006)
        # Histogram bucket lines: cumulative and capped by +Inf == count.
        buckets = sorted(
            (labels, value) for (name, labels), value in series.items()
            if name == "repro_engine_seconds_bucket")
        values = [value for _, value in buckets]
        assert max(values) == 2
        inf_rows = [value for labels, value in buckets
                    if ("le", "+Inf") in labels]
        assert inf_rows == [2]

    def test_families_are_type_annotated_and_sorted(self):
        text = render_prometheus(_sample_registry())
        type_lines = [line for line in text.splitlines() if line.startswith("# TYPE")]
        families = [line.split()[2] for line in type_lines]
        kinds = [line.split()[3] for line in type_lines]
        # counters, then gauges, then histograms — each block sorted.
        blocks = {}
        for family, kind in zip(families, kinds):
            blocks.setdefault(kind, []).append(family)
        for kind, names in blocks.items():
            assert names == sorted(names), kind
        assert blocks["counter"] == ["repro_cache_hits_total", "repro_requests_total"]
        assert "repro_engine_seconds" in blocks["histogram"]

    def test_content_negotiation_predicate(self):
        assert not prometheus_requested(None)
        assert not prometheus_requested("")
        assert not prometheus_requested("application/json")
        assert not prometheus_requested("*/*")
        assert prometheus_requested("text/plain")
        assert prometheus_requested(PROMETHEUS_CONTENT_TYPE)


# ---------------------------------------------------------------------------
# Sidecar /metrics HTTP server under concurrent writers
# ---------------------------------------------------------------------------
class TestMetricsHTTPServer:
    def test_concurrent_writers_and_scrapes_stay_consistent(self):
        telemetry = Telemetry()
        tracer = Tracer(sample_rate=1.0, process="sidecar")
        server = MetricsHTTPServer(telemetry, tracer=tracer).start()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                telemetry.increment("writes")
                telemetry.timer("op").add(0.001)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            url = f"http://{server.address}/metrics"
            last_writes = -1
            for _ in range(10):
                with urllib.request.urlopen(url, timeout=5) as response:
                    payload = json.loads(response.read())
                # Counters are monotone across scrapes and the timer's
                # flat keys agree with its histogram summary.
                assert payload["writes"] >= last_writes
                last_writes = payload["writes"]
                assert payload["op_count"] >= payload["histograms"]["op"]["count"] - 64
                request = urllib.request.Request(url, headers={"Accept": "text/plain"})
                with urllib.request.urlopen(request, timeout=5) as response:
                    assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
                    series = parse_prometheus(response.read().decode("utf-8"))
                assert series[("repro_writes_total", ())] >= last_writes
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            server.close()

    def test_trace_and_healthz_endpoints(self):
        telemetry = Telemetry()
        tracer = Tracer(sample_rate=1.0, process="sidecar")
        with maybe_trace(tracer, "root"):
            pass
        server = MetricsHTTPServer(telemetry, tracer=tracer).start()
        try:
            base = f"http://{server.address}"
            with urllib.request.urlopen(f"{base}/trace", timeout=5) as response:
                payload = json.loads(response.read())
            assert [s["name"] for s in payload["spans"]] == ["root"]
            with urllib.request.urlopen(f"{base}/healthz", timeout=5) as response:
                assert json.loads(response.read()) == {"status": "ok"}
            request = urllib.request.Request(f"{base}/nope")
            try:
                urllib.request.urlopen(request, timeout=5)
            except urllib.error.HTTPError as error:
                assert error.code == 404
            else:  # pragma: no cover
                raise AssertionError("expected 404")
        finally:
            server.close()
