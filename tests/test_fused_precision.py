"""Float-identity tests of the fused autograd nodes, inference-mode parity of
the graph-free grad-CAM engine, and the tolerance pins of the opt-in float32
compute tier.

The load-bearing guarantees:

* every fused node (``add_relu``, ``concat_batch_norm_relu``,
  ``same_max_pool3``, ``batch_norm_training``) is *bit-identical* to the
  composed graph it replaces — forward values, every parent gradient, and the
  BatchNorm running statistics (``np.array_equal``, not approx);
* the explicit-VJP grad-CAM engine agrees with the recorded-graph reference
  to <= 1e-10 and leaves no gradients behind (it never builds a tape);
* float64 stays the default and the reference; float32 is opt-in, requires
  the fused engine, and matches a float64 model cast for inference to the
  documented 1e-5 relative tolerance for both logits and heatmaps.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.gradcam import mtex_explanation
from repro.explain import get_explainer
from repro.models import CNNClassifier, TrainingConfig
from repro.serve import (
    ExplanationCache,
    ExplanationService,
    ModelArtifactStore,
    ServeConfig,
    probe_batch_parity,
)
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.fused import (
    add_relu,
    batch_norm_training,
    concat_batch_norm_relu,
    fused_training,
    same_max_pool3,
)
from repro.nn.layers import BatchNorm1d


def make_pair(shape, seed, scale=1.0):
    """Two leaf tensors with identical data for composed-vs-fused runs."""
    data = np.random.default_rng(seed).normal(scale=scale, size=shape)
    return (Tensor(data.copy(), requires_grad=True),
            Tensor(data.copy(), requires_grad=True))


def randomize_bn(bn: BatchNorm1d, seed: int) -> BatchNorm1d:
    """Non-trivial affine parameters so the backward exercises every path."""
    rng = np.random.default_rng(seed)
    bn.weight.data[...] = rng.normal(loc=1.0, scale=0.2, size=bn.weight.data.shape)
    bn.bias.data[...] = rng.normal(scale=0.1, size=bn.bias.data.shape)
    return bn


# ---------------------------------------------------------------------------
# Fused nodes: bit-identical to the composed graphs they replace
# ---------------------------------------------------------------------------

class TestFusedNodeFloatIdentity:
    def test_add_relu_matches_composed(self):
        a1, a2 = make_pair((3, 4, 5), seed=0)
        b1, b2 = make_pair((3, 4, 5), seed=1)
        composed = (a1 + b1).relu()
        composed.sum().backward()
        with fused_training():
            fused = add_relu(a2, b2)
        assert fused.name == "add_relu"  # the fused path actually dispatched
        fused.sum().backward()
        assert np.array_equal(fused.data, composed.data)
        assert np.array_equal(a2.grad, a1.grad)
        assert np.array_equal(b2.grad, b1.grad)

    def test_add_relu_composes_outside_fused_mode(self):
        a1, a2 = make_pair((2, 3), seed=2)
        b1, b2 = make_pair((2, 3), seed=3)
        assert add_relu(a2, b2).name != "add_relu"
        assert np.array_equal(add_relu(a2, b2).data, (a1 + b1).relu().data)

    def test_concat_batch_norm_relu_matches_composed(self):
        shapes = [(2, 3, 7), (2, 4, 7), (2, 5, 7)]
        left = [make_pair(shape, seed=10 + i) for i, shape in enumerate(shapes)]
        composed_inputs = [pair[0] for pair in left]
        fused_inputs = [pair[1] for pair in left]
        bn1 = randomize_bn(BatchNorm1d(12), seed=42)
        bn2 = randomize_bn(BatchNorm1d(12), seed=42)

        composed = bn1(Tensor.concatenate(composed_inputs, axis=1)).relu()
        composed.sum().backward()
        with fused_training():
            fused = concat_batch_norm_relu(fused_inputs, bn2, axis=1)
        assert fused.name == "concat_batch_norm_relu"
        fused.sum().backward()

        assert np.array_equal(fused.data, composed.data)
        for composed_in, fused_in in zip(composed_inputs, fused_inputs):
            assert np.array_equal(fused_in.grad, composed_in.grad)
        assert np.array_equal(bn2.weight.grad, bn1.weight.grad)
        assert np.array_equal(bn2.bias.grad, bn1.bias.grad)
        # The fused node replays the running-statistics update bit for bit.
        assert np.array_equal(bn2.running_mean, bn1.running_mean)
        assert np.array_equal(bn2.running_var, bn1.running_var)

    def test_batch_norm_relu_training_matches_composed(self):
        x1, x2 = make_pair((4, 6, 10), seed=20)
        bn1 = randomize_bn(BatchNorm1d(6), seed=21)
        bn2 = randomize_bn(BatchNorm1d(6), seed=21)
        composed = bn1(x1).relu()
        composed.sum().backward()
        with fused_training():
            fused = batch_norm_training(bn2, x2, relu=True)
        fused.sum().backward()
        assert np.array_equal(fused.data, composed.data)
        assert np.array_equal(x2.grad, x1.grad)
        assert np.array_equal(bn2.weight.grad, bn1.weight.grad)
        assert np.array_equal(bn2.bias.grad, bn1.bias.grad)
        assert np.array_equal(bn2.running_mean, bn1.running_mean)
        assert np.array_equal(bn2.running_var, bn1.running_var)

    def test_same_max_pool3_matches_composed_1d(self):
        # Integer-valued data forces ties, exercising the first-occurrence
        # argmax rule the fused node replicates with strict comparisons.
        data = np.random.default_rng(30).integers(-3, 4, size=(2, 3, 9)).astype(float)
        x1 = Tensor(data.copy(), requires_grad=True)
        x2 = Tensor(data.copy(), requires_grad=True)
        composed = F.max_pool1d(x1.pad(((0, 0), (0, 0), (1, 1))), 3, 1)
        composed.sum().backward()
        fused = same_max_pool3(x2)
        fused.sum().backward()
        assert np.array_equal(fused.data, composed.data)
        assert np.array_equal(x2.grad, x1.grad)

    def test_same_max_pool3_matches_composed_2d(self):
        data = np.random.default_rng(31).integers(-3, 4, size=(2, 3, 4, 9)).astype(float)
        x1 = Tensor(data.copy(), requires_grad=True)
        x2 = Tensor(data.copy(), requires_grad=True)
        composed = F.max_pool2d(x1.pad(((0, 0), (0, 0), (0, 0), (1, 1))), (1, 3), (1, 1))
        composed.sum().backward()
        fused = same_max_pool3(x2)
        fused.sum().backward()
        assert np.array_equal(fused.data, composed.data)
        assert np.array_equal(x2.grad, x1.grad)

    def test_fused_nodes_preserve_float32(self):
        """The fused kernels never silently promote a float32 graph."""
        data = np.random.default_rng(32).normal(size=(2, 4, 8)).astype(np.float32)
        a = Tensor(data.copy(), requires_grad=True)
        b = Tensor(data.copy(), requires_grad=True)
        with fused_training():
            out = add_relu(a, b)
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert a.grad.dtype == np.float32
        assert same_max_pool3(Tensor(data.copy())).data.dtype == np.float32


# ---------------------------------------------------------------------------
# Graph-free grad-CAM: recorded-graph parity, no tape
# ---------------------------------------------------------------------------

class TestGradCAMVJPParity:
    def test_vjp_matches_recorded_graph(self, trained_mtex, tiny_type1_dataset):
        explainer = get_explainer(trained_mtex)
        for index, class_id in ((0, 0), (3, 1), (7, 1)):
            series = tiny_type1_dataset.X[index]
            vjp = explainer.explain(series, class_id).heatmap
            recorded = mtex_explanation(trained_mtex, series, class_id)
            scale = max(np.abs(recorded).max(), 1.0)
            assert np.abs(vjp - recorded).max() / scale <= 1e-10

    def test_explain_leaves_no_gradients(self, trained_mtex, tiny_type1_dataset):
        for param in trained_mtex.parameters():
            param.grad = None
        get_explainer(trained_mtex).explain(tiny_type1_dataset.X[0], 1)
        assert all(param.grad is None for param in trained_mtex.parameters())

    def test_batched_equals_single(self, trained_mtex, tiny_type1_dataset):
        explainer = get_explainer(trained_mtex)
        X = tiny_type1_dataset.X[:4]
        class_ids = [0, 1, 1, 0]
        batched = explainer.explain_batch(X, class_ids)
        for series, class_id, from_batch in zip(X, class_ids, batched):
            single = explainer.explain(series, class_id)
            assert np.array_equal(from_batch.heatmap, single.heatmap)


# ---------------------------------------------------------------------------
# Float32 compute tier: opt-in, gated, tolerance-pinned
# ---------------------------------------------------------------------------

#: Documented relative tolerance of the float32 tier against the float64
#: reference for *inference on the same weights* (logits and heatmaps);
#: measured head-room is ~5.6e-7 on the tiny fixtures.
FLOAT32_RTOL = 1e-5


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    scale = max(np.abs(np.asarray(b, dtype=np.float64)).max(), 1e-12)
    return float(np.abs(np.asarray(a, dtype=np.float64) - b).max() / scale)


def cast_copy(model, dtype):
    """A cast clone; the (session-scoped) original is never mutated."""
    clone = copy.deepcopy(model)
    clone.astype(dtype)
    return clone


class TestFloat32Tier:
    def test_default_precision_is_float64(self, trained_cnn, tiny_type1_dataset):
        assert TrainingConfig().precision == "float64"
        assert trained_cnn.compute_dtype == np.float64
        logits = trained_cnn.logits(tiny_type1_dataset.X[:2])
        assert logits.dtype == np.float64

    def test_unknown_precision_rejected(self, tiny_type1_dataset):
        model = CNNClassifier(tiny_type1_dataset.n_dimensions, tiny_type1_dataset.length,
                              tiny_type1_dataset.n_classes, filters=(4, 8))
        with pytest.raises(ValueError, match="precision"):
            model.fit(tiny_type1_dataset.X, tiny_type1_dataset.y,
                      config=TrainingConfig(epochs=1, precision="float16"))

    def test_float32_requires_fused_engine(self, tiny_type1_dataset):
        model = CNNClassifier(tiny_type1_dataset.n_dimensions, tiny_type1_dataset.length,
                              tiny_type1_dataset.n_classes, filters=(4, 8))
        with pytest.raises(ValueError, match="fused"):
            model.fit(tiny_type1_dataset.X, tiny_type1_dataset.y,
                      config=TrainingConfig(epochs=1, engine="legacy",
                                            precision="float32"))

    def test_float32_fit_runs_in_single_precision(self, tiny_type1_dataset):
        model = CNNClassifier(tiny_type1_dataset.n_dimensions, tiny_type1_dataset.length,
                              tiny_type1_dataset.n_classes, filters=(4, 8),
                              rng=np.random.default_rng(0))
        history = model.fit(tiny_type1_dataset.X, tiny_type1_dataset.y,
                            config=TrainingConfig(epochs=2, batch_size=8,
                                                  random_state=0,
                                                  precision="float32"))
        assert model.compute_dtype == np.float32
        assert all(p.data.dtype == np.float32 for p in model.parameters())
        assert all(np.isfinite(loss) for loss in history.train_loss)
        logits = model.logits(tiny_type1_dataset.X[:4])
        assert logits.dtype == np.float32
        assert np.isfinite(logits).all()

    def test_astype_rejects_non_compute_dtypes(self, trained_cnn):
        with pytest.raises(ValueError, match="dtype"):
            copy.deepcopy(trained_cnn).astype(np.int32)

    @pytest.mark.parametrize("fixture", ["trained_cnn", "trained_ccnn", "trained_dcnn",
                                         "trained_mtex"])
    def test_cast_inference_logit_parity(self, fixture, tiny_type1_dataset, request):
        model = request.getfixturevalue(fixture)
        cast = cast_copy(model, np.float32)
        X = tiny_type1_dataset.X[:6]
        reference = model.logits(X)
        fast = cast.logits(X)
        assert fast.dtype == np.float32
        assert relative_error(fast, reference) <= FLOAT32_RTOL

    def test_cast_inference_dcam_parity(self, trained_dcnn, tiny_type1_dataset):
        """Same permutations (same seed), float32 forwards: heatmaps agree."""
        series = tiny_type1_dataset.X[0]
        reference = get_explainer(trained_dcnn, k=8,
                                  rng=np.random.default_rng(7)).explain(series, 1)
        cast = cast_copy(trained_dcnn, np.float32)
        fast = get_explainer(cast, k=8,
                             rng=np.random.default_rng(7)).explain(series, 1)
        # The dCAM merge deliberately averages in float64 whatever the
        # compute tier, so the heatmap dtype stays float64.
        assert fast.heatmap.dtype == np.float64
        assert relative_error(fast.heatmap, reference.heatmap) <= FLOAT32_RTOL

    def test_cast_inference_gradcam_parity(self, trained_mtex, tiny_type1_dataset):
        series = tiny_type1_dataset.X[2]
        reference = get_explainer(trained_mtex).explain(series, 1)
        fast = get_explainer(cast_copy(trained_mtex, np.float32)).explain(series, 1)
        assert relative_error(fast.heatmap, reference.heatmap) <= FLOAT32_RTOL

    def test_cast_back_to_float64_restores_inference(self, trained_cnn,
                                                     tiny_type1_dataset):
        X = tiny_type1_dataset.X[:4]
        reference = trained_cnn.logits(X)
        round_trip = cast_copy(cast_copy(trained_cnn, np.float32), np.float64)
        assert round_trip.compute_dtype == np.float64
        # The f64->f32->f64 round trip loses mantissa bits but stays within
        # the same documented tolerance as the cast itself.
        assert relative_error(round_trip.logits(X), reference) <= FLOAT32_RTOL


# ---------------------------------------------------------------------------
# Float32 serving: opt-in per service, precision-qualified cache keys
# ---------------------------------------------------------------------------

class TestFloat32Serving:
    @pytest.fixture()
    def store_dir(self, tmp_path, trained_cnn):
        store = ModelArtifactStore(str(tmp_path / "store"))
        parity = probe_batch_parity(trained_cnn)
        store.register("cnn-a", trained_cnn, model_name="cnn",
                       metadata={"model_kwargs": {"filters": (8, 16)},
                                 "batch_parity": parity.to_json()})
        return str(tmp_path / "store")

    @staticmethod
    def make_service(store_dir, **config_kwargs):
        # Each service gets its own store instance: the float32 service casts
        # the store's warm-cached model in place, so sharing one store across
        # precisions is explicitly unsupported.
        return ExplanationService(ModelArtifactStore(store_dir),
                                  cache=ExplanationCache(max_memory_bytes=None),
                                  config=ServeConfig(**config_kwargs))

    def test_invalid_serving_precision_rejected(self, store_dir):
        with pytest.raises(ValueError, match="precision"):
            self.make_service(store_dir, precision="half")

    def test_float32_responses_match_reference(self, store_dir, tiny_type1_dataset):
        reference_service = self.make_service(store_dir)
        fast_service = self.make_service(store_dir, precision="float32")
        try:
            series = tiny_type1_dataset.X[0]
            reference = reference_service.classify("cnn-a", series)
            fast = fast_service.classify("cnn-a", series)
            assert fast.logits.dtype == np.float32
            assert relative_error(fast.logits, reference.logits) <= FLOAT32_RTOL
            assert fast.predicted == reference.predicted
            # Repeating the request hits the precision-qualified cache entry.
            assert np.array_equal(fast_service.classify("cnn-a", series).logits,
                                  fast.logits)
        finally:
            reference_service.close()
            fast_service.close()

    def test_cache_keys_are_precision_qualified(self, store_dir):
        reference_service = self.make_service(store_dir)
        fast_service = self.make_service(store_dir, precision="float32")
        try:
            artifact = reference_service.store.artifact("cnn-a")
            assert reference_service._serving_hash(artifact) == artifact.state_hash
            assert (fast_service._serving_hash(artifact)
                    == f"{artifact.state_hash}:float32")
        finally:
            reference_service.close()
            fast_service.close()
