"""Integration tests for end-to-end observability.

One sampled HTTP ``/explain`` request must be traceable across every hop —
HTTP handler → batcher queue → flush → engine → cache → remote byte-store →
server-side spans — while the served bytes stay identical with tracing on or
off (observability is out-of-band).  Also covers the serve ``/metrics``
content negotiation, the ``trace-dump`` CLI, and fleet workers shipping
spans + metric snapshots to the coordinator through heartbeat/complete
headers.
"""

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.dist import ByteStoreServer, RemoteByteStore, RemoteStoreConfig
from repro.dist.coordinator import FleetConfig, FleetExecutor
from repro.obs import ObsConfig, Tracer, maybe_trace, parse_prometheus
from repro.obs.exposition import PROMETHEUS_CONTENT_TYPE
from repro.runtime.cli import main as cli_main
from repro.serve import (
    ExplanationCache,
    ExplanationService,
    ModelArtifactStore,
    ServeConfig,
)
from repro.serve.http import serve_in_background

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

FAST_REMOTE = dict(connect_timeout_s=0.2, request_timeout_s=2.0,
                   retries=1, backoff_s=0.01, down_cooldown_s=0.2)


@pytest.fixture()
def byte_server(tmp_path):
    server = ByteStoreServer(directory=str(tmp_path / "blobs")).start()
    yield server
    server.close()


@pytest.fixture()
def obs_store(tmp_path_factory, trained_dcnn):
    store = ModelArtifactStore(str(tmp_path_factory.mktemp("obs-store")))
    store.register("dcnn-obs", trained_dcnn, model_name="dcnn",
                   metadata={"model_kwargs": {"filters": (8, 16)}})
    return store


def _get(url, accept=None):
    headers = {"Accept": accept} if accept else {}
    request = urllib.request.Request(url, headers=headers)
    with urllib.request.urlopen(request, timeout=15) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, response.read()


def _service(store, byte_server=None, sample_rate=0.0):
    remote = None
    if byte_server is not None:
        remote = RemoteByteStore(
            RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE))
    cache = ExplanationCache(max_memory_bytes=None, remote=remote)
    config = ServeConfig(max_batch_size=4, max_wait_ms=1,
                         obs=ObsConfig(trace_sample_rate=sample_rate))
    return ExplanationService(store, cache=cache, config=config)


class TestEndToEndTracing:
    def test_sampled_explain_spans_cover_every_hop(self, obs_store, byte_server,
                                                   tiny_type1_dataset):
        service = _service(obs_store, byte_server, sample_rate=1.0)
        server, _ = serve_in_background(service)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            payload = {"model": "dcnn-obs",
                       "instance": tiny_type1_dataset.X[0].tolist(),
                       "class_id": 1, "k": 4, "seed": 0}
            status, _ = _post(f"{base}/explain", payload)
            assert status == 200

            status, _, body = _get(f"{base}/trace")
            assert status == 200
            spans = json.loads(body)["spans"]
            by_name = {}
            for record in spans:
                by_name.setdefault(record["name"], []).append(record)
            # The explain pipeline classifies first, so both kinds flushed.
            for name in ("http./explain", "batcher.queue", "batcher.flush",
                         "engine", "cache.get", "cache.put", "wire.put"):
                assert name in by_name, f"missing span {name!r}"
            # Every hop belongs to the root request's trace.
            root = by_name["http./explain"][0]
            assert root["parent_id"] is None
            trace_ids = {record["trace_id"] for record in spans}
            assert trace_ids == {root["trace_id"]}
            # The remote byte-store recorded matching server-side spans
            # under the same trace (propagated through the frame header).
            remote_spans = byte_server.wire.tracer.ring.spans()
            assert any(s.name == "server.put" for s in remote_spans)
            assert {s.trace_id for s in remote_spans} == {root["trace_id"]}
            # Cache tier attribution rode the span attrs.
            tiers = {record["attrs"].get("tier")
                     for record in by_name["cache.get"]}
            assert tiers & {"miss", "memory", "disk", "remote"}
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_responses_byte_identical_with_tracing_on_and_off(
            self, obs_store, tiny_type1_dataset):
        payload = {"model": "dcnn-obs",
                   "instance": tiny_type1_dataset.X[1].tolist(),
                   "class_id": 1, "k": 4, "seed": 0}
        bodies = []
        for sample_rate in (0.0, 1.0):
            service = _service(obs_store, sample_rate=sample_rate)
            server, _ = serve_in_background(service)
            host, port = server.server_address[:2]
            try:
                status, body = _post(f"http://{host}:{port}/explain", payload)
                assert status == 200
            finally:
                server.shutdown()
                server.server_close()
                service.close()
            bodies.append(body)
        assert bodies[0] == bodies[1]

    def test_metrics_content_negotiation_and_histograms(self, obs_store,
                                                        tiny_type1_dataset):
        service = _service(obs_store)
        server, _ = serve_in_background(service)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            _post(f"{base}/classify",
                  {"model": "dcnn-obs",
                   "instance": tiny_type1_dataset.X[0].tolist()})
            # Default (no Accept preference): the JSON snapshot, now with a
            # nested percentile view.
            status, content_type, body = _get(f"{base}/metrics")
            assert status == 200 and "application/json" in content_type
            payload = json.loads(body)
            assert payload["http_classify_count"] == 1
            assert payload["histograms"]["http_classify"]["count"] == 1
            # Accept: text/plain switches to Prometheus exposition.
            status, content_type, body = _get(f"{base}/metrics",
                                              accept="text/plain")
            assert status == 200 and content_type == PROMETHEUS_CONTENT_TYPE
            series = parse_prometheus(body.decode("utf-8"))
            assert series[("repro_http_classify_seconds_count", ())] == 1
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestTraceDumpCLI:
    def test_dump_from_http_endpoint(self, obs_store, tiny_type1_dataset,
                                     tmp_path, capsys):
        service = _service(obs_store, sample_rate=1.0)
        server, _ = serve_in_background(service)
        host, port = server.server_address[:2]
        try:
            _post(f"http://{host}:{port}/classify",
                  {"model": "dcnn-obs",
                   "instance": tiny_type1_dataset.X[0].tolist()})
            output = str(tmp_path / "spans.jsonl")
            assert cli_main(["trace-dump", "--url", f"http://{host}:{port}",
                             "--output", output]) == 0
            with open(output, "r", encoding="utf-8") as handle:
                spans = [json.loads(line) for line in handle]
            assert spans and any(s["name"] == "http./classify" for s in spans)
            # stdout variant emits the same JSONL.
            assert cli_main(["trace-dump",
                             "--url", f"http://{host}:{port}"]) == 0
            stdout = capsys.readouterr().out
            assert any(json.loads(line)["name"] == "http./classify"
                       for line in stdout.splitlines())
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_dump_from_wire_server(self, byte_server, capsys):
        client_tracer = Tracer(sample_rate=1.0, process="test-client")
        remote = RemoteByteStore(
            RemoteStoreConfig(address=byte_server.address, **FAST_REMOTE))
        with maybe_trace(client_tracer, "root"):
            remote.put("k", b"blob")
        assert cli_main(["trace-dump", "--connect", byte_server.address]) == 0
        stdout = capsys.readouterr().out
        names = [json.loads(line)["name"] for line in stdout.splitlines()]
        assert "server.put" in names

    def test_unreachable_targets_fail_cleanly(self, capsys):
        assert cli_main(["trace-dump", "--url", "http://127.0.0.1:9"]) == 2
        assert cli_main(["trace-dump", "--connect", "127.0.0.1:9"]) == 2


def worker_env():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    tests = os.path.join(REPO_ROOT, "tests")
    env["PYTHONPATH"] = os.pathsep.join(
        [src, tests] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p])
    return env


class TestFleetObservability:
    def test_worker_subprocess_propagates_trace_and_reports_metrics(self):
        tracer = Tracer(sample_rate=1.0, process="submitter")
        with FleetExecutor(FleetConfig(lease_timeout_s=5.0)) as executor:
            worker = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", executor.address,
                 "--provider", "fleet_provider",
                 "--poll-interval-s", "0.05", "--max-idle-s", "60"],
                env=worker_env(), stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            try:
                with maybe_trace(tracer, "fleet-root"):
                    root_ctx_trace = tracer.ring  # root recorded on exit
                    results = executor.map(_square, [2, 3, 4])
                assert results == [4, 9, 16]
                spans = executor.trace_spans()
                unit_spans = [s for s in spans if s.name == "worker.unit"]
                assert len(unit_spans) == 3
                root = [s for s in root_ctx_trace.spans()
                        if s.name == "fleet-root"][0]
                assert {s.trace_id for s in unit_spans} == {root.trace_id}
                assert all(s.process.startswith("worker:") for s in unit_spans)
                # Coordinator-side aggregation: the worker's cumulative
                # metric/histogram snapshots arrive with its next heartbeat
                # (default period 2 s) — poll until the full report lands.
                deadline = time.monotonic() + 15.0
                fleet = executor.fleet_metrics()
                while (fleet["metrics"].get("worker_units_done", 0) < 3
                       and time.monotonic() < deadline):
                    time.sleep(0.2)
                    fleet = executor.fleet_metrics()
                assert fleet["workers"], "no worker report ingested"
                assert fleet["metrics"]["worker_units_done"] == 3
                assert fleet["histograms"]["worker_unit"]["count"] == 3
                summaries = executor.telemetry.histogram_summaries()
                assert summaries["fleet_unit"]["count"] == 3
            finally:
                executor.close()
                worker.wait(timeout=30)
                if worker.poll() is None:  # pragma: no cover
                    worker.kill()

    def test_untraced_fleet_results_identical_to_traced(self):
        def sweep(trace):
            tracer = Tracer(sample_rate=1.0 if trace else 0.0)
            with FleetExecutor(FleetConfig(lease_timeout_s=5.0)) as executor:
                worker = subprocess.Popen(
                    [sys.executable, "-m", "repro", "worker",
                     "--connect", executor.address,
                     "--provider", "fleet_provider",
                     "--poll-interval-s", "0.05", "--max-idle-s", "60"],
                    env=worker_env(), stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL)
                try:
                    with maybe_trace(tracer, "root"):
                        return executor.map(_square, [5, 6, 7])
                finally:
                    executor.close()
                    worker.wait(timeout=30)
                    if worker.poll() is None:  # pragma: no cover
                        worker.kill()

        assert sweep(trace=False) == sweep(trace=True) == [25, 36, 49]


def _square(value):
    return value * value
