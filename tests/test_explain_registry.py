"""Registry dispatch parity: the explain subsystem vs the legacy functions.

For each explanation family the registry's ``Explainer.explain`` /
``explain_batch`` outputs must match the legacy per-instance functions
(``class_activation_map``, ``mtex_explanation``, ``compute_dcam``) to 1e-10,
and batch vs per-instance evaluation must produce identical Dr-acc.
"""

import numpy as np
import pytest

from repro.core import cam_as_multivariate, class_activation_map, compute_dcam
from repro.core.gradcam import mtex_explanation
from repro.eval.protocol import evaluate_explanation, explanation_for
from repro.explain import (
    CAMExplainer,
    DCAMExplainer,
    EXPLAINER_REGISTRY,
    Explanation,
    GradCAMExplainer,
    evaluate_explainer,
    explainer_family_of,
    get_explainer,
    registered_families,
    select_explainable_instances,
)
from repro.models import (
    CCNNClassifier,
    CNNClassifier,
    DCNNClassifier,
    MTEXCNNClassifier,
    create_model,
)
from repro.models.recurrent import GRUClassifier
from repro.models.registry import (
    explainer_family_of_model,
    models_with_explainer_family,
)

TOL = dict(rtol=0.0, atol=1e-10)


class TestRegistry:
    def test_all_three_families_registered(self):
        assert registered_families() == ["cam", "dcam", "gradcam"]
        assert EXPLAINER_REGISTRY["cam"] is CAMExplainer
        assert EXPLAINER_REGISTRY["gradcam"] is GradCAMExplainer
        assert EXPLAINER_REGISTRY["dcam"] is DCAMExplainer

    def test_model_classes_declare_families(self):
        assert CNNClassifier.explainer_family == "cam"
        assert CCNNClassifier.explainer_family == "cam"
        assert DCNNClassifier.explainer_family == "dcam"
        assert MTEXCNNClassifier.explainer_family == "gradcam"
        assert GRUClassifier.explainer_family is None

    def test_get_explainer_dispatches_by_family(self, trained_cnn, trained_dcnn,
                                                trained_mtex):
        assert isinstance(get_explainer(trained_cnn), CAMExplainer)
        assert isinstance(get_explainer(trained_dcnn), DCAMExplainer)
        assert isinstance(get_explainer(trained_mtex), GradCAMExplainer)

    def test_unknown_model_raises_with_registered_families(self):
        model = GRUClassifier(4, 32, 2, rng=np.random.default_rng(0), hidden_size=8)
        with pytest.raises(KeyError, match=r"cam.*dcam.*gradcam"):
            get_explainer(model)
        with pytest.raises(KeyError):
            explainer_family_of(model)

    def test_registry_helpers_on_model_names(self):
        assert explainer_family_of_model("dResNet") == "dcam"
        assert explainer_family_of_model("mtex") == "gradcam"
        assert explainer_family_of_model("lstm") is None
        assert models_with_explainer_family("dcam") == ["dcnn", "dresnet",
                                                        "dinceptiontime"]
        assert models_with_explainer_family(
            "dcam", ["resnet", "dresnet", "mtex", "dcnn"]) == ["dresnet", "dcnn"]
        with pytest.raises(KeyError):
            explainer_family_of_model("nonsense")

    def test_family_mismatch_rejected(self, trained_cnn, trained_dcnn):
        with pytest.raises(TypeError):
            DCAMExplainer(trained_cnn)
        with pytest.raises(TypeError):
            GradCAMExplainer(trained_cnn)
        model = GRUClassifier(4, 32, 2, rng=np.random.default_rng(0), hidden_size=8)
        with pytest.raises(TypeError):
            CAMExplainer(model)


class TestCAMParity:
    def test_explain_matches_legacy_univariate(self, trained_cnn, tiny_type1_dataset):
        series = tiny_type1_dataset.X[0]
        legacy = cam_as_multivariate(class_activation_map(trained_cnn, series, 1),
                                     tiny_type1_dataset.n_dimensions)
        explanation = get_explainer(trained_cnn).explain(series, 1)
        np.testing.assert_allclose(explanation.heatmap, legacy, **TOL)
        assert explanation.success_ratio is None

    def test_explain_matches_legacy_multivariate(self, trained_ccnn, tiny_type1_dataset):
        series = tiny_type1_dataset.X[0]
        legacy = class_activation_map(trained_ccnn, series, 1)
        explanation = get_explainer(trained_ccnn).explain(series, 1)
        np.testing.assert_allclose(explanation.heatmap, legacy, **TOL)

    @pytest.mark.parametrize("fixture", ["trained_cnn", "trained_ccnn"])
    def test_batch_matches_per_instance(self, fixture, request, tiny_type1_dataset):
        model = request.getfixturevalue(fixture)
        X = tiny_type1_dataset.X[:5]
        class_ids = [int(label) for label in tiny_type1_dataset.y[:5]]
        explainer = get_explainer(model, batch_size=2)
        batched = explainer.explain_batch(X, class_ids)
        assert len(batched) == 5
        for series, class_id, explanation in zip(X, class_ids, batched):
            single = explainer.explain(series, class_id)
            np.testing.assert_allclose(explanation.heatmap, single.heatmap, **TOL)


class TestGradCAMParity:
    def test_explain_matches_legacy(self, trained_mtex, tiny_type1_dataset):
        series = tiny_type1_dataset.X[0]
        legacy = mtex_explanation(trained_mtex, series, 1)
        explanation = get_explainer(trained_mtex).explain(series, 1)
        np.testing.assert_allclose(explanation.heatmap, legacy, **TOL)

    def test_batch_matches_per_instance(self, trained_mtex, tiny_type1_dataset):
        X = tiny_type1_dataset.X[:5]
        class_ids = [int(label) for label in tiny_type1_dataset.y[:5]]
        explainer = get_explainer(trained_mtex, batch_size=2)
        batched = explainer.explain_batch(X, class_ids)
        for series, class_id, explanation in zip(X, class_ids, batched):
            legacy = mtex_explanation(trained_mtex, series, class_id)
            np.testing.assert_allclose(explanation.heatmap, legacy, **TOL)


class TestDCAMParity:
    def test_explain_matches_legacy(self, trained_dcnn, tiny_type1_dataset):
        series = tiny_type1_dataset.X[-1]
        legacy = compute_dcam(trained_dcnn, series, 1, k=6,
                              rng=np.random.default_rng(7))
        explainer = get_explainer(trained_dcnn, k=6, rng=np.random.default_rng(7))
        explanation = explainer.explain(series, 1)
        np.testing.assert_allclose(explanation.heatmap, legacy.dcam, **TOL)
        assert explanation.success_ratio == legacy.success_ratio
        assert explanation.details.k == 6

    def test_batch_matches_sequential_legacy(self, trained_dcnn, tiny_type1_dataset):
        X = tiny_type1_dataset.X[:3]
        class_ids = [int(label) for label in tiny_type1_dataset.y[:3]]
        explainer = get_explainer(trained_dcnn, k=4, rng=np.random.default_rng(3))
        batched = explainer.explain_batch(X, class_ids)
        rng = np.random.default_rng(3)  # the batch path draws sequentially
        for series, class_id, explanation in zip(X, class_ids, batched):
            legacy = compute_dcam(trained_dcnn, series, class_id, k=4, rng=rng)
            np.testing.assert_allclose(explanation.heatmap, legacy.dcam, **TOL)
            assert explanation.success_ratio == legacy.success_ratio


class TestEvaluation:
    def test_select_explainable_instances(self, tiny_type1_dataset):
        indices = select_explainable_instances(tiny_type1_dataset, target_class=1)
        assert indices
        assert all(tiny_type1_dataset.y[i] == 1 for i in indices)
        assert select_explainable_instances(tiny_type1_dataset, 1, 2) == indices[:2]

    def test_select_requires_ground_truth(self, tiny_type1_dataset):
        stripped = tiny_type1_dataset.subset(range(len(tiny_type1_dataset)))
        stripped.ground_truth = None
        with pytest.raises(ValueError):
            select_explainable_instances(stripped)

    def test_select_requires_candidates(self, tiny_type1_dataset):
        with pytest.raises(ValueError):
            select_explainable_instances(tiny_type1_dataset, target_class=99)

    @pytest.mark.parametrize("fixture", ["trained_cnn", "trained_ccnn",
                                         "trained_mtex", "trained_dcnn"])
    def test_batched_and_per_instance_dr_acc_identical(self, fixture, request,
                                                       tiny_type1_dataset):
        model = request.getfixturevalue(fixture)
        batched = evaluate_explainer(model, tiny_type1_dataset, n_instances=3,
                                     k=4, random_state=0, batched=True)
        sequential = evaluate_explainer(model, tiny_type1_dataset, n_instances=3,
                                        k=4, random_state=0, batched=False)
        assert batched.instance_indices == sequential.instance_indices
        np.testing.assert_allclose(batched.scores, sequential.scores, **TOL)
        assert batched.dr_acc == pytest.approx(sequential.dr_acc, abs=1e-10)
        if batched.success_ratios:
            assert batched.success_ratios == sequential.success_ratios

    def test_report_shape(self, trained_dcnn, tiny_type1_dataset):
        report = evaluate_explainer(trained_dcnn, tiny_type1_dataset,
                                    n_instances=2, k=4, random_state=0)
        assert report.family == "dcam"
        assert report.n_instances == 2
        assert 0.0 <= report.dr_acc <= 1.0
        assert 0.0 <= report.success_ratio <= 1.0
        assert report.as_tuple() == (report.dr_acc, report.success_ratio)

    def test_scale_knobs_are_duck_typed(self, trained_dcnn, tiny_type1_dataset):
        class Knobs:
            n_explained_instances = 2
            k_permutations = 4
            dcam_batch_size = 8

        report = evaluate_explainer(trained_dcnn, tiny_type1_dataset, Knobs(),
                                    random_state=0)
        assert report.n_instances == 2
        # Explicit keyword arguments win over the scale's knobs.
        override = evaluate_explainer(trained_dcnn, tiny_type1_dataset, Knobs(),
                                      n_instances=1, random_state=0)
        assert override.n_instances == 1

    def test_legacy_wrappers_agree_with_report(self, trained_dcnn, tiny_type1_dataset):
        report = evaluate_explainer(trained_dcnn, tiny_type1_dataset,
                                    n_instances=2, k=4, random_state=0)
        score, ratio = evaluate_explanation(trained_dcnn, "ignored-name",
                                            tiny_type1_dataset, n_instances=2,
                                            k=4, random_state=0)
        assert score == pytest.approx(report.dr_acc, abs=1e-10)
        assert ratio == pytest.approx(report.success_ratio, abs=1e-10)

    def test_explanation_for_ignores_model_name(self, trained_cnn, tiny_type1_dataset):
        series = tiny_type1_dataset.X[0]
        heatmap, ratio = explanation_for(trained_cnn, "totally-wrong-name",
                                         series, 1)
        legacy = cam_as_multivariate(class_activation_map(trained_cnn, series, 1),
                                     tiny_type1_dataset.n_dimensions)
        np.testing.assert_allclose(heatmap, legacy, **TOL)
        assert ratio is None


class TestExplanationValidation:
    def test_batch_shape_validation(self, trained_cnn, tiny_type1_dataset):
        explainer = get_explainer(trained_cnn)
        with pytest.raises(ValueError):
            explainer.explain_batch(tiny_type1_dataset.X[0], [1])
        with pytest.raises(ValueError):
            explainer.explain_batch(tiny_type1_dataset.X[:3], [1, 1])
        with pytest.raises(ValueError):
            explainer.explain(np.zeros(16), 0)

    def test_explanation_dataclass_defaults(self):
        explanation = Explanation(heatmap=np.zeros((2, 4)), class_id=1)
        assert explanation.success_ratio is None
        assert explanation.details is None

    def test_keep_details_off_drops_payload_not_results(self, trained_dcnn,
                                                        tiny_type1_dataset):
        X = tiny_type1_dataset.X[:3]
        class_ids = [int(label) for label in tiny_type1_dataset.y[:3]]
        with_details = get_explainer(trained_dcnn, k=4,
                                     rng=np.random.default_rng(5))
        without = get_explainer(trained_dcnn, k=4, rng=np.random.default_rng(5),
                                keep_details=False)
        kept = with_details.explain_batch(X, class_ids)
        dropped = without.explain_batch(X, class_ids)
        for full, slim in zip(kept, dropped):
            assert full.details is not None and slim.details is None
            np.testing.assert_allclose(slim.heatmap, full.heatmap, **TOL)
            assert slim.success_ratio == full.success_ratio

    def test_use_only_correct_knob_forwarded(self, trained_dcnn, tiny_type1_dataset):
        series = tiny_type1_dataset.X[0]
        explainer = get_explainer(trained_dcnn, k=4,
                                  rng=np.random.default_rng(11),
                                  use_only_correct=True)
        legacy = compute_dcam(trained_dcnn, series, 1, k=4,
                              rng=np.random.default_rng(11),
                              use_only_correct=True)
        np.testing.assert_allclose(explainer.explain(series, 1).heatmap,
                                   legacy.dcam, **TOL)

    def test_create_model_roundtrip_families(self):
        rng = np.random.default_rng(0)
        for name, family in [("cnn", "cam"), ("ccnn", "cam"), ("dcnn", "dcam"),
                             ("mtex", "gradcam")]:
            kwargs = {"filters": (4,)} if name != "mtex" else {
                "block1_filters": (2, 4), "block2_filters": 4, "hidden_units": 8}
            model = create_model(name, 4, 32, 2, rng=rng, **kwargs)
            assert model.explainer_family == family
            assert get_explainer(model).family == family
