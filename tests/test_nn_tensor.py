"""Unit tests of the autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest

from repro.nn import Tensor, ones, randn, tensor, zeros

from tests.helpers import numerical_gradient


def _check_gradient(build, *arrays, rtol=1e-5, atol=1e-6):
    """Compare analytic gradients of ``build(*tensors)`` against finite differences."""
    tensors = [Tensor(np.array(a, dtype=np.float64), requires_grad=True) for a in arrays]
    out = build(*tensors)
    out.backward()
    for array, wrapped in zip(arrays, tensors):
        def scalar():
            fresh = [Tensor(np.array(a, dtype=np.float64)) for a in arrays]
            return float(build(*fresh).data)
        numeric = numerical_gradient(scalar, array)
        np.testing.assert_allclose(wrapped.grad, numeric, rtol=rtol, atol=atol)


class TestConstruction:
    def test_scalar_tensor(self):
        t = tensor(3.0)
        assert t.shape == ()
        assert t.item() == 3.0

    def test_zeros_ones_randn(self):
        assert zeros((2, 3)).data.sum() == 0
        assert ones((2, 3)).data.sum() == 6
        assert randn((4, 5), rng=np.random.default_rng(0)).shape == (4, 5)

    def test_detach_breaks_graph(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        detached = x.detach()
        assert not detached.requires_grad

    def test_len_and_ndim(self):
        x = tensor(np.ones((3, 2)))
        assert len(x) == 3
        assert x.ndim == 2
        assert x.size == 6


class TestArithmetic:
    def test_add_backward(self):
        x = tensor([1.0, 2.0, 3.0], requires_grad=True)
        y = tensor([4.0, 5.0, 6.0], requires_grad=True)
        (x + y).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(3))
        np.testing.assert_allclose(y.grad, np.ones(3))

    def test_mul_backward(self):
        x = tensor([1.0, 2.0, 3.0], requires_grad=True)
        y = tensor([4.0, 5.0, 6.0], requires_grad=True)
        (x * y).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0, 5.0, 6.0])
        np.testing.assert_allclose(y.grad, [1.0, 2.0, 3.0])

    def test_sub_and_neg(self):
        x = tensor([5.0], requires_grad=True)
        y = tensor([3.0], requires_grad=True)
        (x - y).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])
        np.testing.assert_allclose(y.grad, [-1.0])

    def test_div_gradient(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(0.5, 2.0, size=(3, 2))
        b = rng.uniform(0.5, 2.0, size=(3, 2))
        _check_gradient(lambda x, y: (x / y).sum(), a, b)

    def test_pow_gradient(self):
        a = np.random.default_rng(1).uniform(0.5, 2.0, size=(4,))
        _check_gradient(lambda x: (x ** 3).sum(), a)

    def test_scalar_broadcasting(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        (2.0 * x + 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_broadcast_unbroadcast_gradient(self):
        a = np.random.default_rng(2).standard_normal((3, 4))
        b = np.random.default_rng(3).standard_normal((4,))
        _check_gradient(lambda x, y: (x * y).sum(), a, b)

    def test_rsub_rtruediv(self):
        x = tensor([2.0], requires_grad=True)
        (1.0 - x).sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0])
        y = tensor([2.0], requires_grad=True)
        (1.0 / y).sum().backward()
        np.testing.assert_allclose(y.grad, [-0.25])


class TestMatmul:
    def test_matmul_2d_gradient(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 2))
        _check_gradient(lambda x, y: (x @ y).sum(), a, b)

    def test_matmul_batched_gradient(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((2, 3, 4))
        b = rng.standard_normal((4, 5))
        _check_gradient(lambda x, y: (x @ y).sum(), a, b)

    def test_matmul_values(self):
        a = tensor([[1.0, 2.0], [3.0, 4.0]])
        b = tensor([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose((a @ b).data, a.data)


class TestNonLinearities:
    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "tanh", "sigmoid", "relu", "abs"])
    def test_unary_gradients(self, op):
        rng = np.random.default_rng(5)
        a = rng.uniform(0.3, 2.0, size=(3, 3))
        _check_gradient(lambda x: getattr(x, op)().sum(), a)

    def test_relu_zeroes_negative(self):
        x = tensor([-1.0, 0.5], requires_grad=True)
        out = x.relu()
        np.testing.assert_allclose(out.data, [0.0, 0.5])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_leaky_relu(self):
        x = tensor([-2.0, 3.0], requires_grad=True)
        out = x.leaky_relu(0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_clip_gradient_mask(self):
        x = tensor([-2.0, 0.5, 3.0], requires_grad=True)
        x.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        a = np.random.default_rng(7).standard_normal((4, 5))
        _check_gradient(lambda x: x.mean(), a)

    def test_var_matches_numpy(self):
        data = np.random.default_rng(8).standard_normal((3, 6))
        x = tensor(data)
        np.testing.assert_allclose(x.var(axis=1).data, data.var(axis=1))

    def test_var_gradient(self):
        a = np.random.default_rng(9).standard_normal((3, 4))
        _check_gradient(lambda x: x.var(axis=1).sum(), a)

    def test_max_gradient_routes_to_argmax(self):
        x = tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_min(self):
        x = tensor([[3.0, -1.0, 2.0]])
        assert x.min().item() == -1.0


class TestShapes:
    def test_reshape_roundtrip_gradient(self):
        a = np.random.default_rng(10).standard_normal((2, 6))
        _check_gradient(lambda x: (x.reshape(3, 4) ** 2).sum(), a)

    def test_transpose_gradient(self):
        a = np.random.default_rng(11).standard_normal((2, 3, 4))
        _check_gradient(lambda x: (x.transpose(2, 0, 1) ** 2).sum(), a)

    def test_swapaxes(self):
        x = tensor(np.arange(6.0).reshape(2, 3))
        assert x.swapaxes(0, 1).shape == (3, 2)

    def test_expand_squeeze(self):
        x = tensor(np.ones((2, 3)), requires_grad=True)
        y = x.expand_dims(1)
        assert y.shape == (2, 1, 3)
        z = y.squeeze(axis=1)
        assert z.shape == (2, 3)
        z.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_getitem_gradient(self):
        x = tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        x[1:, :2].sum().backward()
        expected = np.zeros((3, 4))
        expected[1:, :2] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_fancy_indexing(self):
        x = tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x[np.array([0, 1]), np.array([2, 0])].sum().backward()
        expected = np.zeros((2, 3))
        expected[0, 2] = expected[1, 0] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_pad_gradient(self):
        x = tensor(np.ones((2, 3)), requires_grad=True)
        padded = x.pad(((0, 0), (1, 1)))
        assert padded.shape == (2, 5)
        padded.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_concatenate_gradient(self):
        a = tensor(np.ones((2, 2)), requires_grad=True)
        b = tensor(np.ones((2, 3)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))

    def test_stack(self):
        a = tensor(np.zeros((2, 3)))
        b = tensor(np.ones((2, 3)))
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 2, 3)

    def test_flatten(self):
        x = tensor(np.ones((2, 3, 4)))
        assert x.flatten().shape == (2, 12)


class TestAutogradMechanics:
    def test_backward_requires_scalar(self):
        x = tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_gradient_accumulates_on_reuse(self):
        x = tensor([2.0], requires_grad=True)
        y = x * x + x * 3.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2 * 2.0 + 3.0])

    def test_zero_grad(self):
        x = tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_tracking_for_constants(self):
        x = tensor([1.0])
        y = x * 2
        assert not y.requires_grad

    def test_diamond_graph_gradient(self):
        # f(x) = (x*2) + (x*3): both branches contribute.
        x = tensor([1.0], requires_grad=True)
        left = x * 2.0
        right = x * 3.0
        (left + right).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_deep_chain(self):
        x = tensor([1.0], requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.1
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.1 ** 50], rtol=1e-10)
