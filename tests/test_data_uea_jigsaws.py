"""Unit tests of the UEA archive and JIGSAWS simulators."""

import numpy as np
import pytest

from repro.data import (
    DISCRIMINANT_GESTURES,
    GESTURES,
    JIGSAWS_CLASS_NAMES,
    JigsawsConfig,
    UEA_DATASET_NAMES,
    UEA_METADATA,
    UEASimulationConfig,
    discriminant_sensor_indices,
    make_jigsaws_dataset,
    make_uea_archive,
    make_uea_dataset,
    scaled_metadata,
    sensor_names,
)


class TestUEAMetadata:
    def test_all_23_datasets_present(self):
        assert len(UEA_DATASET_NAMES) == 23
        assert "RacketSports" in UEA_METADATA
        assert UEA_METADATA["RacketSports"] == (4, 30, 6)
        assert UEA_METADATA["FaceDetection"] == (2, 62, 144)

    def test_scaled_metadata_applies_caps(self):
        config = UEASimulationConfig(max_length=50, max_dimensions=8, max_classes=4)
        n_classes, length, dims = scaled_metadata("MotorImagery", config)
        assert (n_classes, length, dims) == (2, 50, 8)

    def test_scaled_metadata_no_caps_returns_paper_values(self):
        config = UEASimulationConfig(max_length=None, max_dimensions=None, max_classes=None)
        assert scaled_metadata("NATOPS", config) == UEA_METADATA["NATOPS"]

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            scaled_metadata("NotADataset", UEASimulationConfig())


class TestUEASimulation:
    def setup_method(self):
        self.config = UEASimulationConfig(instances_per_class=5, max_length=40,
                                          max_dimensions=5, max_classes=3, random_state=0)

    def test_dataset_shape_follows_scaled_metadata(self):
        dataset = make_uea_dataset("BasicMotions", self.config)
        n_classes, length, dims = scaled_metadata("BasicMotions", self.config)
        assert dataset.X.shape == (n_classes * 5, dims, length)
        assert dataset.n_classes == n_classes

    def test_every_class_represented(self):
        dataset = make_uea_dataset("Epilepsy", self.config)
        counts = dataset.class_counts()
        assert all(count == 5 for count in counts.values())

    def test_deterministic_for_fixed_random_state(self):
        a = make_uea_dataset("Libras", self.config)
        b = make_uea_dataset("Libras", self.config)
        np.testing.assert_allclose(a.X, b.X)

    def test_classes_are_separable_by_a_simple_statistic(self):
        """Class means should differ: a nearest-centroid rule beats chance."""
        dataset = make_uea_dataset("BasicMotions", self.config)
        centroids = {label: dataset.X[dataset.y == label].mean(axis=0)
                     for label in np.unique(dataset.y)}
        correct = 0
        for series, label in zip(dataset.X, dataset.y):
            distances = {c: np.linalg.norm(series - centroid)
                         for c, centroid in centroids.items()}
            correct += int(min(distances, key=distances.get) == label)
        assert correct / len(dataset) > 1.0 / dataset.n_classes

    def test_archive_builder_subsets(self):
        archive = make_uea_archive(["PenDigits", "LSST"], self.config)
        assert set(archive) == {"PenDigits", "LSST"}

    def test_metadata_records_simulation(self):
        dataset = make_uea_dataset("Heartbeat", self.config)
        assert dataset.metadata["simulated"] is True
        assert dataset.metadata["paper_metadata"] == UEA_METADATA["Heartbeat"]


class TestJigsaws:
    def setup_method(self):
        self.config = JigsawsConfig(n_novice=4, n_intermediate=3, n_expert=3,
                                    gesture_length=6, random_state=1)
        self.dataset = make_jigsaws_dataset(self.config)

    def test_sensor_structure(self):
        names = sensor_names()
        assert len(names) == 76
        assert sum(name.endswith("gripper_angle") for name in names) == 4
        assert self.dataset.n_dimensions == 76

    def test_class_counts_and_names(self):
        assert self.dataset.class_counts() == {0: 4, 1: 3, 2: 3}
        assert self.dataset.class_names == JIGSAWS_CLASS_NAMES

    def test_length_covers_all_gestures(self):
        assert self.dataset.length == len(GESTURES) * self.config.gesture_length

    def test_ground_truth_only_on_novice_instances(self):
        novice_mask = self.dataset.ground_truth[self.dataset.y == 0]
        other_mask = self.dataset.ground_truth[self.dataset.y != 0]
        assert novice_mask.sum() > 0
        assert other_mask.sum() == 0

    def test_ground_truth_restricted_to_discriminant_gestures_and_sensors(self):
        planted_sensors = set(discriminant_sensor_indices())
        segments = self.dataset.metadata["gesture_segments"][0]
        discriminant_windows = [
            (start, end) for gesture, start, end in segments
            if gesture in DISCRIMINANT_GESTURES
        ]
        mask = self.dataset.ground_truth[0]
        active_sensors = set(np.flatnonzero(mask.sum(axis=1) > 0).tolist())
        assert active_sensors == planted_sensors
        active_times = np.flatnonzero(mask.sum(axis=0) > 0)
        for time_index in active_times:
            assert any(start <= time_index < end for start, end in discriminant_windows)

    def test_metadata_lists_gestures(self):
        assert self.dataset.metadata["gestures"] == list(GESTURES)
        assert set(self.dataset.metadata["discriminant_gestures"]) == set(DISCRIMINANT_GESTURES)
