"""Tests of the shared training loop (fit / early stopping / history / scoring)."""

import numpy as np
import pytest

from repro.models import CNNClassifier, DCNNClassifier, GRUClassifier, TrainingConfig
from repro.models.base import TrainingHistory
from repro.nn import load_state_dict, save_state_dict


def _separable_problem(n=24, dims=3, length=20, seed=0):
    """A trivially separable 2-class problem: class 1 has a large offset on dim 0."""
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, dims, length))
    y = np.arange(n) % 2
    X[y == 1, 0, :] += 4.0
    return X, y


class TestFit:
    def test_loss_decreases_on_separable_problem(self):
        X, y = _separable_problem()
        model = CNNClassifier(3, 20, 2, filters=(4, 8), rng=np.random.default_rng(0))
        history = model.fit(X, y, config=TrainingConfig(epochs=15, batch_size=8,
                                                        learning_rate=3e-3,
                                                        random_state=0))
        assert history.train_loss[-1] < history.train_loss[0]
        assert model.score(X, y) > 0.9

    def test_history_fields(self):
        X, y = _separable_problem(n=16)
        model = CNNClassifier(3, 20, 2, filters=(4,), rng=np.random.default_rng(0))
        history = model.fit(X, y, validation_data=(X, y),
                            config=TrainingConfig(epochs=3, batch_size=8, random_state=0))
        assert isinstance(history, TrainingHistory)
        assert history.epochs_run == len(history.train_loss) == 3
        assert len(history.validation_loss) == 3
        assert len(history.validation_accuracy) == 3
        assert len(history.epoch_seconds) == 3
        assert history.best_validation_loss() <= history.validation_loss[0] + 1e-12

    def test_early_stopping_triggers(self):
        X, y = _separable_problem(n=16)
        model = CNNClassifier(3, 20, 2, filters=(4,), rng=np.random.default_rng(0))
        config = TrainingConfig(epochs=50, batch_size=8, learning_rate=0.0,
                                patience=2, random_state=0)
        history = model.fit(X, y, validation_data=(X, y), config=config)
        assert history.stopped_early
        assert history.epochs_run < 50

    def test_best_weights_restored(self):
        X, y = _separable_problem(n=16)
        model = GRUClassifier(3, 20, 2, hidden_size=8, rng=np.random.default_rng(0))
        config = TrainingConfig(epochs=6, batch_size=8, learning_rate=1e-2,
                                patience=50, random_state=0)
        history = model.fit(X, y, validation_data=(X, y), config=config)
        restored_loss, _ = model._evaluate_loss(X, y, 8)
        assert restored_loss <= min(history.validation_loss) + 1e-6

    def test_epochs_to_fraction_of_best(self):
        history = TrainingHistory(validation_loss=[1.0, 0.6, 0.2, 0.19])
        assert history.epochs_to_fraction_of_best(0.9) == 3
        assert TrainingHistory().epochs_to_fraction_of_best() == 0

    def test_dcnn_trains_on_cube_inputs(self):
        X, y = _separable_problem(n=16, dims=4)
        model = DCNNClassifier(4, 20, 2, filters=(4, 8), rng=np.random.default_rng(0))
        history = model.fit(X, y, config=TrainingConfig(epochs=8, batch_size=8,
                                                        learning_rate=3e-3,
                                                        random_state=0))
        assert history.train_loss[-1] < history.train_loss[0]
        assert model.score(X, y) > 0.7

    def test_deterministic_training_with_seed(self):
        X, y = _separable_problem(n=16)
        config = TrainingConfig(epochs=3, batch_size=8, random_state=5)
        model_a = CNNClassifier(3, 20, 2, filters=(4,), rng=np.random.default_rng(1))
        model_b = CNNClassifier(3, 20, 2, filters=(4,), rng=np.random.default_rng(1))
        loss_a = model_a.fit(X, y, config=config).train_loss
        loss_b = model_b.fit(X, y, config=config).train_loss
        np.testing.assert_allclose(loss_a, loss_b)


class TestScoringAndSerialization:
    def test_score_matches_manual_accuracy(self):
        X, y = _separable_problem(n=20)
        model = CNNClassifier(3, 20, 2, filters=(4,), rng=np.random.default_rng(0))
        model.fit(X, y, config=TrainingConfig(epochs=5, batch_size=8, learning_rate=3e-3,
                                              random_state=0))
        manual = float(np.mean(model.predict(X) == y))
        assert model.score(X, y) == pytest.approx(manual)

    def test_save_load_roundtrip_preserves_predictions(self, tmp_path):
        X, y = _separable_problem(n=16)
        model = CNNClassifier(3, 20, 2, filters=(4, 8), rng=np.random.default_rng(0))
        model.fit(X, y, config=TrainingConfig(epochs=3, batch_size=8, random_state=0))
        path = str(tmp_path / "model.npz")
        save_state_dict(model, path)
        clone = CNNClassifier(3, 20, 2, filters=(4, 8), rng=np.random.default_rng(99))
        load_state_dict(clone, path)
        np.testing.assert_allclose(model.logits(X), clone.logits(X), rtol=1e-10)

    def test_logits_batching_consistent(self):
        X, _ = _separable_problem(n=20)
        model = CNNClassifier(3, 20, 2, filters=(4,), rng=np.random.default_rng(0))
        np.testing.assert_allclose(model.logits(X, batch_size=3),
                                   model.logits(X, batch_size=20), rtol=1e-10)
