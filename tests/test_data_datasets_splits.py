"""Unit tests of the dataset container and the split utilities."""

import numpy as np
import pytest

from repro.data import MultivariateDataset, train_validation_split, train_validation_test_split


def _toy_dataset(n_per_class=10, n_classes=3, dims=2, length=16, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n_per_class * n_classes, dims, length))
    y = np.repeat(np.arange(n_classes), n_per_class)
    return MultivariateDataset(X=X, y=y, name="toy")


class TestContainer:
    def test_basic_properties(self):
        dataset = _toy_dataset()
        assert dataset.n_instances == 30
        assert dataset.n_dimensions == 2
        assert dataset.length == 16
        assert dataset.n_classes == 3
        assert len(dataset) == 30
        assert "toy" in dataset.summary()

    def test_rejects_wrong_shapes(self):
        with pytest.raises(ValueError):
            MultivariateDataset(X=np.zeros((4, 8)), y=np.zeros(4))
        with pytest.raises(ValueError):
            MultivariateDataset(X=np.zeros((4, 2, 8)), y=np.zeros(3))
        with pytest.raises(ValueError):
            MultivariateDataset(X=np.zeros((4, 2, 8)), y=np.zeros(4),
                                ground_truth=np.zeros((4, 2, 7)))

    def test_subset_preserves_alignment(self):
        dataset = _toy_dataset()
        subset = dataset.subset([0, 5, 20])
        assert subset.n_instances == 3
        np.testing.assert_allclose(subset.X[1], dataset.X[5])
        assert subset.y[2] == dataset.y[20]

    def test_subset_carries_ground_truth(self):
        dataset = _toy_dataset()
        dataset.ground_truth = np.zeros_like(dataset.X)
        dataset.ground_truth[3, 0, :4] = 1
        subset = dataset.subset([3])
        assert subset.ground_truth.sum() == 4

    def test_znormalize(self):
        dataset = _toy_dataset()
        dataset.X = dataset.X * 10 + 5
        normalized = dataset.znormalize()
        np.testing.assert_allclose(normalized.X.mean(axis=2), 0.0, atol=1e-10)
        np.testing.assert_allclose(normalized.X.std(axis=2), 1.0, atol=1e-3)
        # original untouched
        assert abs(dataset.X.mean()) > 1.0

    def test_class_counts(self):
        dataset = _toy_dataset(n_per_class=4, n_classes=2)
        assert dataset.class_counts() == {0: 4, 1: 4}


class TestSplits:
    def test_train_validation_split_is_stratified(self):
        dataset = _toy_dataset(n_per_class=10, n_classes=3)
        train, validation = train_validation_split(dataset, 0.8, random_state=0)
        assert train.n_instances + validation.n_instances == 30
        assert train.class_counts() == {0: 8, 1: 8, 2: 8}
        assert validation.class_counts() == {0: 2, 1: 2, 2: 2}

    def test_split_partitions_do_not_overlap(self):
        dataset = _toy_dataset()
        train, validation = train_validation_split(dataset, 0.7, random_state=1)
        train_rows = {tuple(row.ravel()[:4]) for row in train.X}
        val_rows = {tuple(row.ravel()[:4]) for row in validation.X}
        assert not train_rows & val_rows

    def test_split_reproducible(self):
        dataset = _toy_dataset()
        a_train, _ = train_validation_split(dataset, 0.8, random_state=7)
        b_train, _ = train_validation_split(dataset, 0.8, random_state=7)
        np.testing.assert_allclose(a_train.X, b_train.X)

    def test_invalid_fraction_rejected(self):
        dataset = _toy_dataset()
        with pytest.raises(ValueError):
            train_validation_split(dataset, 1.5)

    def test_three_way_split(self):
        dataset = _toy_dataset(n_per_class=10, n_classes=2)
        train, validation, test = train_validation_test_split(dataset, 0.6, 0.2,
                                                              random_state=0)
        assert train.n_instances + validation.n_instances + test.n_instances == 20
        assert train.n_instances == 12

    def test_three_way_split_fraction_validation(self):
        dataset = _toy_dataset()
        with pytest.raises(ValueError):
            train_validation_test_split(dataset, 0.8, 0.3)
