"""Benchmark regenerating Table 2: C-acc over (simulated) UCR/UEA datasets."""

from repro.experiments import run_table2

DATASETS = ["BasicMotions", "RacketSports", "Epilepsy", "PenDigits", "LSST"]


def bench_table2(bench_scale, emit):
    result = run_table2(bench_scale, dataset_names=DATASETS)
    emit("table2", result.format())
    return result


def test_table2(benchmark, bench_scale, emit):
    result = benchmark.pedantic(bench_table2, args=(bench_scale, emit),
                                rounds=1, iterations=1)
    # Sanity of the regenerated table: every requested dataset and model present.
    assert set(result.accuracies) == set(DATASETS)
    assert all(0.0 <= value <= 1.0
               for scores in result.accuracies.values() for value in scores.values())
