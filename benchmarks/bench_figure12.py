"""Benchmark regenerating Figure 12: training and dCAM execution time."""

from repro.experiments import run_figure12


def bench_figure12(bench_scale, emit):
    result = run_figure12(bench_scale)
    emit("figure12", result.format())
    return result


def test_figure12(benchmark, bench_scale, emit):
    result = benchmark.pedantic(bench_figure12, args=(bench_scale, emit),
                                rounds=1, iterations=1)
    # Every timing series is positive.
    for series in (result.epoch_time_vs_length, result.epoch_time_vs_dimensions,
                   result.dcam_time_vs_dimensions, result.dcam_time_vs_length,
                   result.dcam_time_vs_k):
        for values in series.values():
            assert all(value > 0 for value in values)
    # dCAM time is (weakly) increasing with the number of permutations k.
    for values in result.dcam_time_vs_k.values():
        assert values[-1] >= values[0]
    assert result.convergence
