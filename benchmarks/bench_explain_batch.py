"""Throughput benchmark: per-instance vs batched explanation, all families.

For each explanation family (CAM on a cCNN, grad-CAM on MTEX-CNN, dCAM on a
dCNN) a tiny model is trained, then a handful of test instances is explained
twice through the registry:

* **per-instance** — one ``Explainer.explain`` call per instance (one
  ``features()`` forward — and for grad-CAM one backward — per instance);
* **batched** — one ``Explainer.explain_batch`` call (micro-batched forwards;
  the dCAM engine also merges permutation work across instance boundaries).

Verifies that both paths agree to 1e-10 (exits non-zero otherwise) and emits
a JSON record to ``benchmarks/results/explain_batch.json`` so the speedups
are tracked across the bench trajectory.

Run directly (no install needed)::

    python benchmarks/bench_explain_batch.py [--scale tiny] [--instances 8]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time

# Allow running straight from a checkout without installing the package.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.data.synthetic import make_type1_dataset  # noqa: E402
from repro.experiments.config import get_scale  # noqa: E402
from repro.explain import get_explainer  # noqa: E402
from repro.models.registry import create_model  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: (family, model name) pairs exercised by the benchmark.
FAMILIES = (("cam", "ccnn"), ("gradcam", "mtex"), ("dcam", "dcnn"))


def best_of(fn, repeats):
    """Best-of-N wall-clock with the cyclic GC paused (its collection pauses
    are the dominant noise source for millisecond-scale measurements)."""
    best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        gc.enable()
    return best


def bench_family(family, model_name, dataset, scale, args):
    """Train one tiny model and time per-instance vs batched explanation."""
    model = create_model(model_name, dataset.n_dimensions, dataset.length,
                         dataset.n_classes, rng=np.random.default_rng(0),
                         **scale.model_kwargs(model_name))
    assert model.explainer_family == family
    print(f"[{family}] training tiny {model_name} on "
          f"{dataset.n_dimensions}x{dataset.length} synthetic data ...")
    training = scale.training.__class__(epochs=5, batch_size=8, learning_rate=3e-3,
                                        random_state=0)
    model.fit(dataset.X, dataset.y, config=training)
    model.eval()

    n = min(args.instances, len(dataset))
    X = dataset.X[:n]
    class_ids = [int(label) for label in dataset.y[:n]]

    def explainer():
        # Fresh generator per measurement so the dCAM permutation draw is
        # identical across the per-instance / batched paths and repetitions.
        return get_explainer(model, k=args.k, batch_size=args.batch_size,
                             rng=np.random.default_rng(0))

    def run_per_instance():
        one = explainer()
        return [one.explain(series, class_id)
                for series, class_id in zip(X, class_ids)]

    def run_batched():
        return explainer().explain_batch(X, class_ids)

    # Correctness first: both paths must agree to 1e-10.
    max_abs_diff = 0.0
    for single, batched in zip(run_per_instance(), run_batched()):
        max_abs_diff = max(max_abs_diff,
                           float(np.abs(single.heatmap - batched.heatmap).max()))
        if single.success_ratio != batched.success_ratio:
            raise SystemExit(f"FAIL [{family}]: success_ratio mismatch "
                             f"({single.success_ratio} != {batched.success_ratio})")
    if max_abs_diff > 1e-10:
        raise SystemExit(f"FAIL [{family}]: batched explanation deviates from "
                         f"per-instance path by {max_abs_diff:.2e} > 1e-10")

    per_instance_seconds = best_of(run_per_instance, args.repeats)
    batched_seconds = best_of(run_batched, args.repeats)
    speedup = per_instance_seconds / batched_seconds
    print(f"[{family}] per-instance {n / per_instance_seconds:8.2f} expl/s   "
          f"batched {n / batched_seconds:8.2f} expl/s   speedup {speedup:.2f}x "
          f"(max |diff| {max_abs_diff:.2e})")
    return {
        "model": model_name,
        "n_explanations": n,
        "per_instance_seconds": per_instance_seconds,
        "batched_seconds": batched_seconds,
        "per_instance_explanations_per_second": n / per_instance_seconds,
        "batched_explanations_per_second": n / batched_seconds,
        "speedup": speedup,
        "max_abs_diff": max_abs_diff,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small"],
                        help="experiment scale of the trained models / dataset")
    parser.add_argument("--instances", type=int, default=8,
                        help="number of test instances explained per measurement")
    parser.add_argument("--k", type=int, default=16,
                        help="number of dCAM permutations per explanation")
    parser.add_argument("--batch-size", type=int, default=32,
                        help="micro-batch size of the batched engines")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurement repetitions (best-of is reported)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="exit non-zero if any family's speedup falls below this")
    parser.add_argument("--output", default=os.path.join(RESULTS_DIR, "explain_batch.json"),
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    scale = get_scale(args.scale, random_state=0)
    dataset = make_type1_dataset(scale.synthetic)

    record = {
        "benchmark": "explain_batch",
        "scale": args.scale,
        "k": args.k,
        "batch_size": args.batch_size,
        "families": {},
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    for family, model_name in FAMILIES:
        record["families"][family] = bench_family(family, model_name, dataset,
                                                  scale, args)

    output_dir = os.path.dirname(args.output)
    if output_dir:
        os.makedirs(output_dir, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"[written to {args.output}]")

    if args.min_speedup:
        slow = {family: entry["speedup"] for family, entry in record["families"].items()
                if entry["speedup"] < args.min_speedup}
        if slow:
            print(f"FAIL: speedups below required {args.min_speedup}x: {slow}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
