"""Throughput benchmark: batched no-grad dCAM vs the legacy per-permutation path.

Trains a tiny dCNN, then explains a handful of test instances with ``k``
permutations twice:

* **legacy** — the seed implementation's strategy: one autograd-recording
  batch-size-1 forward pass per permutation (:func:`_permutation_cam`),
  followed by the per-pair ``M``-transform merge; and
* **batched** — the production pipeline: micro-batched graph-free forward
  passes under ``inference_mode`` with the vectorised merge.

Emits a JSON record to ``benchmarks/results/dcam_throughput.json`` so the
speedup is tracked across the bench trajectory, and verifies that both paths
agree to 1e-10 (exits non-zero otherwise).

Run directly (no install needed)::

    python benchmarks/bench_dcam_throughput.py [--scale tiny] [--k 100]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time

# Allow running straight from a checkout without installing the package.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.core.dcam import (  # noqa: E402
    _permutation_cam,
    compute_dcam,
    extract_dcam,
    merge_permutation_cams,
)
from repro.core.input_transform import random_permutations  # noqa: E402
from repro.data.synthetic import make_type1_dataset  # noqa: E402
from repro.experiments.config import get_scale  # noqa: E402
from repro.models.cnn import DCNNClassifier  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def compute_dcam_legacy(model, series, class_id, permutations):
    """The seed's evaluation strategy: k independent graph-recording passes."""
    collected = []
    n_correct = 0
    for order in permutations:
        cam_rows, predicted = _permutation_cam(model, series, class_id, order)
        collected.append((cam_rows, order))
        if predicted == class_id:
            n_correct += 1
    m_bar = merge_permutation_cams(collected)
    dcam, _ = extract_dcam(m_bar)
    return dcam, n_correct


def best_of(fn, repeats):
    """Best-of-N wall-clock with the cyclic GC paused (its collection pauses
    are the dominant noise source for millisecond-scale measurements)."""
    best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        gc.enable()
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small"],
                        help="experiment scale of the trained model / dataset")
    parser.add_argument("--k", type=int, default=100,
                        help="number of permutations per explanation (paper: 100)")
    parser.add_argument("--batch-size", type=int, default=32,
                        help="micro-batch size of the batched pipeline")
    parser.add_argument("--instances", type=int, default=3,
                        help="number of test instances explained per measurement")
    parser.add_argument("--repeats", type=int, default=5,
                        help="measurement repetitions (best-of is reported)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="exit non-zero if the speedup falls below this")
    parser.add_argument("--output", default=os.path.join(RESULTS_DIR, "dcam_throughput.json"),
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    scale = get_scale(args.scale, random_state=0)
    dataset = make_type1_dataset(scale.synthetic)
    model = DCNNClassifier(dataset.n_dimensions, dataset.length, dataset.n_classes,
                           rng=np.random.default_rng(0), **scale.model_kwargs("dcnn"))
    print(f"training tiny dCNN on {dataset.n_dimensions}x{dataset.length} synthetic data ...")
    training = scale.training.__class__(epochs=5, batch_size=8, learning_rate=3e-3,
                                        random_state=0)
    model.fit(dataset.X, dataset.y, config=training)
    model.eval()

    instances = [
        (dataset.X[index], int(dataset.y[index]))
        for index in range(min(args.instances, len(dataset)))
    ]
    permutation_sets = [
        random_permutations(dataset.n_dimensions, args.k, np.random.default_rng(seed))
        for seed in range(len(instances))
    ]

    def run_legacy():
        for (series, label), perms in zip(instances, permutation_sets):
            compute_dcam_legacy(model, series, label, perms)

    def run_batched():
        for (series, label), perms in zip(instances, permutation_sets):
            compute_dcam(model, series, label, permutations=perms,
                         batch_size=args.batch_size)

    # Correctness first: both paths must agree to 1e-10 on the same permutations.
    max_abs_diff = 0.0
    for (series, label), perms in zip(instances, permutation_sets):
        legacy_dcam, legacy_correct = compute_dcam_legacy(model, series, label, perms)
        result = compute_dcam(model, series, label, permutations=perms,
                              batch_size=args.batch_size)
        max_abs_diff = max(max_abs_diff, float(np.abs(result.dcam - legacy_dcam).max()))
        if result.n_correct != legacy_correct:
            print(f"FAIL: n_correct mismatch ({result.n_correct} != {legacy_correct})")
            return 1
    if max_abs_diff > 1e-10:
        print(f"FAIL: batched dCAM deviates from legacy path by {max_abs_diff:.2e} > 1e-10")
        return 1

    run_legacy()  # warm-up
    run_batched()
    legacy_seconds = best_of(run_legacy, args.repeats)
    batched_seconds = best_of(run_batched, args.repeats)
    n_explanations = len(instances)
    speedup = legacy_seconds / batched_seconds

    record = {
        "benchmark": "dcam_throughput",
        "scale": args.scale,
        "k": args.k,
        "batch_size": args.batch_size,
        "n_explanations": n_explanations,
        "legacy_seconds": legacy_seconds,
        "batched_seconds": batched_seconds,
        "legacy_explanations_per_second": n_explanations / legacy_seconds,
        "batched_explanations_per_second": n_explanations / batched_seconds,
        "speedup": speedup,
        "max_abs_diff": max_abs_diff,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    output_dir = os.path.dirname(args.output)
    if output_dir:
        os.makedirs(output_dir, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")

    print(json.dumps(record, indent=2))
    print(f"\nlegacy:  {n_explanations / legacy_seconds:8.2f} explanations/s")
    print(f"batched: {n_explanations / batched_seconds:8.2f} explanations/s")
    print(f"speedup: {speedup:.1f}x (numerically identical to {max_abs_diff:.2e})")
    print(f"[written to {args.output}]")

    if args.min_speedup and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
