"""Benchmark regenerating Figure 11: C-acc vs Dr-acc vs ng/k relations."""

from repro.experiments import run_figure11


def bench_figure11(bench_scale, emit):
    result = run_figure11(bench_scale)
    emit("figure11", result.format())
    return result


def test_figure11(benchmark, bench_scale, emit):
    result = benchmark.pedantic(bench_figure11, args=(bench_scale, emit),
                                rounds=1, iterations=1)
    assert result.points, "Figure 11 produced no points"
    for point in result.points:
        assert 0.0 <= point.c_acc <= 1.0
        assert 0.0 <= point.dr_acc <= 1.0
        assert 0.0 <= point.success_ratio <= 1.0
