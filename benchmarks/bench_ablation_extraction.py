"""Ablation benchmark: dCAM extraction rule (variance × mean vs alternatives)."""

from repro.experiments import EXTRACTION_VARIANTS, run_extraction_ablation


def bench_extraction_ablation(bench_scale, emit):
    result = run_extraction_ablation(bench_scale)
    emit("ablation_extraction", result.format("Ablation — dCAM extraction rule (Dr-acc)"))
    return result


def test_extraction_ablation(benchmark, bench_scale, emit):
    result = benchmark.pedantic(bench_extraction_ablation, args=(bench_scale, emit),
                                rounds=1, iterations=1)
    assert result.rows
    for row in result.rows:
        for variant in EXTRACTION_VARIANTS:
            assert 0.0 <= row[variant] <= 1.0
