"""Wall-clock benchmark: serial vs parallel experiment execution.

Runs the Table 3 sweep through the :mod:`repro.runtime` job-graph executor
twice — once on :class:`~repro.runtime.SerialExecutor` and once on a
2-worker (configurable) :class:`~repro.runtime.ParallelExecutor` — verifies
that both produce *identical* numbers (exits non-zero otherwise), and emits a
JSON record to ``benchmarks/results/parallel_runner.json`` so the speedup is
tracked across the bench trajectory.

Run directly (no install needed)::

    python benchmarks/bench_parallel_runner.py [--scale tiny] [--workers 2]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

# Allow running straight from a checkout without installing the package.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.experiments import get_scale, run_table3, table3_spec  # noqa: E402
from repro.runtime import ParallelExecutor, SerialExecutor  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def table3_numbers(result):
    """Flatten a Table3Result into an exactly-comparable structure."""
    return [
        (row.seed_name, row.dataset_type, row.n_dimensions,
         row.c_acc, row.dr_acc, row.success_ratio, row.random_dr_acc)
        for row in result.rows
    ]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small"],
                        help="experiment scale of the Table 3 sweep")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the parallel run")
    parser.add_argument("--output",
                        default=os.path.join(RESULTS_DIR, "parallel_runner.json"),
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    scale = get_scale(args.scale, random_state=0)
    n_units = len(table3_spec(scale).units)
    print(f"[parallel_runner] table3 at scale={args.scale}: {n_units} work units")

    print("[parallel_runner] serial run ...")
    start = time.perf_counter()
    serial_result = run_table3(scale, executor=SerialExecutor())
    serial_seconds = time.perf_counter() - start

    print(f"[parallel_runner] parallel run ({args.workers} workers) ...")
    start = time.perf_counter()
    parallel_result = run_table3(scale, executor=ParallelExecutor(workers=args.workers))
    parallel_seconds = time.perf_counter() - start

    if table3_numbers(serial_result) != table3_numbers(parallel_result):
        raise SystemExit("FAIL: parallel execution deviates from serial results")

    speedup = serial_seconds / parallel_seconds
    print(f"[parallel_runner] serial {serial_seconds:6.2f}s   "
          f"parallel[{args.workers}] {parallel_seconds:6.2f}s   "
          f"speedup {speedup:.2f}x   (results identical)")

    record = {
        "benchmark": "parallel_runner",
        "experiment": "table3",
        "scale": args.scale,
        "workers": args.workers,
        "n_units": n_units,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "results_identical": True,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    output_dir = os.path.dirname(args.output)
    if output_dir:
        os.makedirs(output_dir, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
