"""Throughput benchmark: batched vs serial explanation serving.

Two tiny models (a cCNN for the CAM family, a dCNN for dCAM) are trained and
registered into a model artifact store; three request loads — classify, CAM
explain, dCAM explain — are then replayed by 8 concurrent client threads
against two :class:`repro.serve.ExplanationService` configurations:

* **serial** — ``max_batch_size=1``: every request is dispatched alone, the
  per-request reference the serving layer's exactness contract is defined
  against;
* **batched** — the dynamic micro-batcher coalesces concurrent requests for
  one model into single engine calls (one ``features()`` forward per flush
  for classify/CAM, merged permutation pipelines for dCAM).

Before timing, the two modes' responses are verified **byte-identical**
(exits non-zero otherwise) — batching must never change a single bit.  Each
timed round uses a fresh service (and a fresh explanation cache) so the
numbers measure engine execution, not response-cache hits.  The record
reports per-phase speedups plus the aggregate requests/s headline; at tiny
scale with 8 clients the aggregate lands well above 2x.  Emits JSON to
``benchmarks/results/serve_throughput.json`` for the CI perf gate.

Run directly (no install needed)::

    python benchmarks/bench_serve_throughput.py [--clients 8] [--repeats 3]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

# Allow running straight from a checkout without installing the package.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.data.synthetic import make_type1_dataset  # noqa: E402
from repro.experiments.config import get_scale  # noqa: E402
from repro.models.registry import create_model  # noqa: E402
from repro.serve import (  # noqa: E402
    ExplanationCache,
    ExplanationService,
    ModelArtifactStore,
    ServeConfig,
    probe_batch_parity,
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: (artifact name, registry model name) pairs served by the benchmark.
MODELS = (("ccnn-bench", "ccnn"), ("dcnn-bench", "dcnn"))


def build_store(directory, scale, dataset, epochs):
    store = ModelArtifactStore(directory)
    for artifact_name, model_name in MODELS:
        print(f"[setup] training tiny {model_name} ...")
        model = create_model(model_name, dataset.n_dimensions, dataset.length,
                             dataset.n_classes, rng=np.random.default_rng(0),
                             **scale.model_kwargs(model_name))
        training = scale.training.__class__(epochs=epochs, batch_size=8,
                                            learning_rate=3e-3, random_state=0)
        model.fit(dataset.X, dataset.y, config=training)
        parity = probe_batch_parity(model)
        if not (parity.classify and parity.explain):
            raise SystemExit(
                f"FAIL [{model_name}]: batch-parity probe failed ({parity.to_json()}); "
                "the batched mode would fall back to serial and measure nothing"
            )
        store.register(artifact_name, model, model_name=model_name,
                       metadata={"model_kwargs": scale.model_kwargs(model_name),
                                 "batch_parity": parity.to_json()})
    return store


def build_phases(dataset, args):
    """``{phase: request list}`` — one hot model/kind per phase.

    Phase sizes are weighted so every phase contributes comparable wall
    clock (one dCAM explain costs several classifies), keeping the aggregate
    headline representative of all three rather than dominated by one.
    """

    def instance(index):
        # Unique bytes per request: repeats would short-circuit through the
        # response cache mid-round and measure lookups instead of serving.
        return dataset.X[index % len(dataset)] * (1.0 + 1e-3 * (index // len(dataset)))

    def classify(index):
        return ("classify", "ccnn-bench", instance(index), None, None, None)

    def cam(index):
        return ("explain", "ccnn-bench", instance(index),
                int(dataset.y[index % len(dataset)]), None, None)

    def dcam(index):
        return ("explain", "dcnn-bench", instance(index),
                int(dataset.y[index % len(dataset)]), args.k, index)

    return {
        "classify": [classify(index) for index in range(args.requests)],
        "cam_explain": [cam(index) for index in range(args.requests)],
        "dcam_explain": [dcam(index) for index in range(max(8, args.requests // 12))],
    }


def replay(service, requests, n_clients, pool=None):
    """Replay the load from ``n_clients`` threads; returns ordered responses."""

    def one(request):
        kind, model_name, series, class_id, k, seed = request
        if kind == "classify":
            response = service.classify(model_name, series)
            return ("classify", response.logits)
        response = service.explain(model_name, series, class_id=class_id,
                                   k=k, seed=seed)
        return ("explain", response.heatmap, response.success_ratio)

    if pool is not None:
        return list(pool.map(one, requests))
    with ThreadPoolExecutor(max_workers=n_clients) as fresh_pool:
        return list(fresh_pool.map(one, requests))


def make_service(store, batched, args):
    config = ServeConfig(
        max_batch_size=args.max_batch_size if batched else 1,
        max_wait_ms=args.max_wait_ms if batched else 0.0,
    )
    return ExplanationService(store, cache=ExplanationCache(), config=config)


def verify_parity(store, phases, args):
    """Batched and serial responses must be byte-identical."""
    requests = [request for phase in phases.values() for request in phase]
    with make_service(store, batched=True, args=args) as batched_service:
        batched = replay(batched_service, requests, args.clients)
    with make_service(store, batched=False, args=args) as serial_service:
        serial = replay(serial_service, requests, args.clients)
    for index, (left, right) in enumerate(zip(batched, serial)):
        if left[0] != right[0] or not np.array_equal(left[1], right[1]):
            raise SystemExit(f"FAIL: batched response #{index} deviates from serial")
        if len(left) > 2 and left[2] != right[2]:
            raise SystemExit(f"FAIL: batched success_ratio #{index} deviates")
    print(f"[parity] {len(requests)} batched responses byte-identical to serial")


def timed_round(store, requests, batched, args):
    """Wall-clock seconds to serve one phase with a fresh service.

    The client thread pool is spun up (and the service warmed with a handful
    of requests) before the timer starts, so the measurement covers request
    dispatch and engine execution, not thread creation.  A fresh service per
    round means a fresh response cache — the numbers measure execution.
    """
    service = make_service(store, batched=batched, args=args)
    try:
        with ThreadPoolExecutor(max_workers=args.clients) as pool:
            replay(service, requests[: args.clients], args.clients, pool=pool)
            # Drop the warmup's response-cache entries so the timed replay
            # executes every request instead of replaying stored bytes.
            service.cache = ExplanationCache(telemetry=service.telemetry)
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            replay(service, requests, args.clients, pool=pool)
            return time.perf_counter() - start
    finally:
        gc.enable()
        service.close()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small"],
                        help="experiment scale of the trained models / dataset")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads (default: 8)")
    parser.add_argument("--requests", type=int, default=96,
                        help="classify/CAM requests per phase (default: 96)")
    parser.add_argument("--k", type=int, default=8,
                        help="dCAM permutations per explain request")
    parser.add_argument("--epochs", type=int, default=5,
                        help="training epochs of the tiny served models")
    parser.add_argument("--max-batch-size", type=int, default=8,
                        help="micro-batcher flush threshold in batched mode")
    parser.add_argument("--max-wait-ms", type=float, default=5.0,
                        help="micro-batcher wait bound in batched mode")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurement repetitions (best-of is reported)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="exit non-zero if the aggregate batched/serial "
                             "speedup falls below this")
    parser.add_argument("--output",
                        default=os.path.join(RESULTS_DIR, "serve_throughput.json"),
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    scale = get_scale(args.scale, random_state=0)
    dataset = make_type1_dataset(scale.synthetic)
    phases = build_phases(dataset, args)

    with tempfile.TemporaryDirectory() as tmp:
        store = build_store(tmp, scale, dataset, args.epochs)
        for artifact_name, _ in MODELS:
            store.load(artifact_name)  # warm the artifact cache outside the timers
        verify_parity(store, phases, args)

        phase_records = {}
        total_requests = total_serial = total_batched = 0.0
        for phase_name, requests in phases.items():
            serial_seconds = min(timed_round(store, requests, False, args)
                                 for _ in range(args.repeats))
            batched_seconds = min(timed_round(store, requests, True, args)
                                  for _ in range(args.repeats))
            speedup = serial_seconds / batched_seconds
            phase_records[phase_name] = {
                "requests": len(requests),
                "serial_seconds": serial_seconds,
                "batched_seconds": batched_seconds,
                "serial_requests_per_second": len(requests) / serial_seconds,
                "batched_requests_per_second": len(requests) / batched_seconds,
                "speedup": speedup,
            }
            total_requests += len(requests)
            total_serial += serial_seconds
            total_batched += batched_seconds
            print(f"[serve] {phase_name:13s} serial {len(requests) / serial_seconds:8.1f} req/s"
                  f"   batched {len(requests) / batched_seconds:8.1f} req/s"
                  f"   speedup {speedup:.2f}x")

    aggregate_speedup = total_serial / total_batched
    print(f"[serve] aggregate     serial {total_requests / total_serial:8.1f} req/s"
          f"   batched {total_requests / total_batched:8.1f} req/s"
          f"   speedup {aggregate_speedup:.2f}x "
          f"({args.clients} clients, flush<= {args.max_batch_size})")

    record = {
        "benchmark": "serve_throughput",
        "scale": args.scale,
        "clients": args.clients,
        "k": args.k,
        "max_batch_size": args.max_batch_size,
        "max_wait_ms": args.max_wait_ms,
        "phases": phase_records,
        "total_requests": total_requests,
        "serial_requests_per_second": total_requests / total_serial,
        "batched_requests_per_second": total_requests / total_batched,
        "speedup": aggregate_speedup,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    output_dir = os.path.dirname(args.output)
    if output_dir:
        os.makedirs(output_dir, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"[written to {args.output}]")

    if args.min_speedup and aggregate_speedup < args.min_speedup:
        print(f"FAIL: aggregate batched serving speedup {aggregate_speedup:.2f}x "
              f"below required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
