"""Load benchmark: adaptive vs static serving under closed- and open-loop load.

A tiny dCNN is trained and registered into a model artifact store, then a
live HTTP server (ephemeral port, stdlib ``ThreadingHTTPServer``) is put
under dCAM-explain load — the expensive request class the paper's serving
story is about — by an in-process load generator with persistent HTTP/1.1
connections, in two shapes:

* **closed loop** — N client threads re-issue as fast as responses return;
  measures the service's capacity (goodput = successful requests/s).
* **open loop** — requests arrive on a fixed schedule regardless of
  responses; latency is measured from each request's *scheduled arrival*,
  so queueing delay under overload is visible (the coordinated-omission
  trap a closed loop hides).  Offered rates are auto-calibrated as
  multiples (default ``0.5 / 1.0 / 1.2x``) of the measured static
  closed-loop capacity, so the sweep spans under-load to overload on any
  host CI runs it on.

Two service configurations are compared:

* **static** — the PR-5 reference :class:`~repro.serve.policy.StaticBatchPolicy`
  (fixed flush size / wait bound);
* **adaptive** — :class:`~repro.serve.policy.AdaptiveBatchPolicy`, which
  grows the flush size under backlog (amortising per-flush overhead into
  higher goodput) and shrinks it when flushes exceed the latency budget.

Before timing, adaptive-policy responses are verified **byte-identical** to
serial per-request execution (exits non-zero otherwise) — no batching policy
may change response bytes.  Under overload the bounded per-group queue sheds
with 429 + ``Retry-After``; shed requests are counted and excluded from
goodput.

The headline ``goodput_speedup`` compares the policies at the highest
offered rate with the noise discipline a shared CI host demands: A-B-A
trial groups (static, adaptive, static — each group re-calibrated from a
fresh closed-loop probe, adaptive judged against the mean of its flanking
static trials to cancel linear host-speed drift), with the median group
ratio as the verdict.  It must exceed ``--min-speedup`` (default 1.0:
adaptive strictly better) or the benchmark exits non-zero.  Emits JSON to
``benchmarks/results/serve_load.json`` for the CI perf gate.

Run directly (no install needed)::

    python benchmarks/bench_serve_load.py [--clients 24] [--duration 2.0]
"""

from __future__ import annotations

import argparse
import gc
import http.client
import json
import os
import platform
import socket
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

# Allow running straight from a checkout without installing the package.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.data.synthetic import make_type1_dataset  # noqa: E402
from repro.experiments.config import get_scale  # noqa: E402
from repro.models.registry import create_model  # noqa: E402
from repro.serve import (  # noqa: E402
    ExplanationCache,
    ExplanationService,
    ModelArtifactStore,
    ServeConfig,
    probe_batch_parity,
    serve_in_background,
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

ARTIFACT = "dcnn-load"

#: Seeds are globally unique across every run of the benchmark process so no
#: request can short-circuit through a service's response cache.
_seed_counter = [0]
_seed_lock = threading.Lock()


def next_seeds(count):
    with _seed_lock:
        start = _seed_counter[0]
        _seed_counter[0] += count
    return range(start, start + count)


def build_store(directory, scale, dataset, epochs):
    store = ModelArtifactStore(directory)
    print("[setup] training tiny dcnn ...")
    model = create_model("dcnn", dataset.n_dimensions, dataset.length,
                         dataset.n_classes, rng=np.random.default_rng(0),
                         **scale.model_kwargs("dcnn"))
    training = scale.training.__class__(epochs=epochs, batch_size=8,
                                        learning_rate=3e-3, random_state=0)
    model.fit(dataset.X, dataset.y, config=training)
    parity = probe_batch_parity(model)
    if not (parity.classify and parity.explain):
        raise SystemExit(
            f"FAIL: batch-parity probe failed ({parity.to_json()}); the batched "
            "modes would fall back to serial and measure nothing"
        )
    store.register(ARTIFACT, model, model_name="dcnn",
                   metadata={"model_kwargs": scale.model_kwargs("dcnn"),
                             "batch_parity": parity.to_json()})
    return store


def make_service(store, policy, args):
    config = ServeConfig(
        batch_policy=policy,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        # The adaptive policy explores *above* the static reference width,
        # never below it: on a loaded host the latency budget could otherwise
        # walk the flush size down to serial dispatch and lose the comparison
        # to measurement noise rather than to a real effect.
        min_batch_size=args.max_batch_size,
        max_adaptive_batch_size=args.max_adaptive_batch_size,
        policy_hysteresis=2,
        policy_latency_budget_ms=args.latency_budget_ms,
        max_queue_depth=args.max_queue_depth,
    )
    return ExplanationService(store, cache=ExplanationCache(), config=config)


# ---------------------------------------------------------------------------
# Request bodies / HTTP client
# ---------------------------------------------------------------------------

def body_templates(dataset, k, n_instances=16):
    """Pre-serialised request-body halves; a seed between them finishes one.

    Serialising the instance once per template (instead of per request)
    keeps the in-process load generator's CPU out of the measurement — the
    GIL is shared with the server under test.
    """
    templates = []
    for index in range(n_instances):
        series = dataset.X[index % len(dataset)]
        class_id = int(dataset.y[index % len(dataset)])
        templates.append(
            '{"model": "%s", "instance": %s, "class_id": %d, "k": %d, "seed": '
            % (ARTIFACT, json.dumps(series.tolist()), class_id, k)
        )
    return templates


def make_body(templates, seed):
    return (templates[seed % len(templates)] + str(seed) + "}").encode("utf-8")


class LoadConnection:
    """A persistent HTTP/1.1 connection that reconnects on transport errors."""

    def __init__(self, host, port):
        self.host, self.port = host, port
        self.connection = self._dial()

    def _dial(self):
        connection = http.client.HTTPConnection(self.host, self.port)
        connection.connect()
        # Request bodies ride in their own segment; without TCP_NODELAY they
        # stall behind the server's delayed ACK exactly like the response
        # direction (see ServiceHTTPServer.disable_nagle_algorithm).
        connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return connection

    def post_explain(self, body):
        """Issue one ``/explain``; returns the HTTP status (body drained).

        A dropped keep-alive connection is re-dialled once; a failure on the
        fresh connection is reported as status 599 (a transport error the
        summary counts under ``errors``), never raised — a load generator
        must outlive the server's worst moment.
        """
        for attempt in (0, 1):
            try:
                self.connection.request(
                    "POST", "/explain", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = self.connection.getresponse()
                response.read()  # drain so the keep-alive connection is reusable
                return response.status
            except (http.client.HTTPException, OSError):
                self.connection.close()
                try:
                    self.connection = self._dial()
                except OSError:
                    return 599
        return 599

    def close(self):
        self.connection.close()


# ---------------------------------------------------------------------------
# Load shapes
# ---------------------------------------------------------------------------

def percentile(values, q):
    if not values:
        return float("nan")
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def summarize(latencies, statuses, elapsed):
    successes = sum(1 for status in statuses if status == 200)
    shed = sum(1 for status in statuses if status == 429)
    errors = len(statuses) - successes - shed
    return {
        "requests": len(statuses),
        "successes": successes,
        "shed": shed,
        "errors": errors,
        "elapsed_seconds": elapsed,
        "goodput_per_second": successes / elapsed if elapsed > 0 else 0.0,
        "p50_ms": percentile(latencies, 0.50) * 1000.0,
        "p99_ms": percentile(latencies, 0.99) * 1000.0,
    }


def closed_loop(address, templates, n_clients, duration):
    """N clients re-issue as fast as responses return; measures capacity."""
    host, port = address
    start = time.perf_counter()
    stop = start + duration

    def worker(worker_id):
        connection = LoadConnection(host, port)
        latencies, statuses = [], []
        seeds = iter(next_seeds(1_000_000))
        while time.perf_counter() < stop:
            body = make_body(templates, next(seeds))
            issued = time.perf_counter()
            status = connection.post_explain(body)
            if status == 200:
                latencies.append(time.perf_counter() - issued)
            statuses.append(status)
        connection.close()
        return latencies, statuses

    with ThreadPoolExecutor(max_workers=n_clients) as pool:
        outcomes = list(pool.map(worker, range(n_clients)))
    elapsed = time.perf_counter() - start
    latencies = [value for lat, _ in outcomes for value in lat]
    statuses = [status for _, stat in outcomes for status in stat]
    return summarize(latencies, statuses, elapsed)


def open_loop(address, templates, rate, duration, n_workers):
    """Fixed-schedule arrivals; latency measured from the scheduled time."""
    host, port = address
    n_requests = max(1, int(rate * duration))
    seeds = list(next_seeds(n_requests))
    start = time.perf_counter() + 0.05  # headroom so arrival 0 is not late
    arrivals = [start + index / rate for index in range(n_requests)]
    cursor = [0]
    cursor_lock = threading.Lock()

    def worker(worker_id):
        connection = LoadConnection(host, port)
        latencies, statuses = [], []
        while True:
            with cursor_lock:
                index = cursor[0]
                if index >= n_requests:
                    break
                cursor[0] += 1
            scheduled = arrivals[index]
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            body = make_body(templates, seeds[index])
            status = connection.post_explain(body)
            if status == 200:
                # From the *scheduled* arrival: queueing delay (including any
                # generator lateness under overload) counts against the tail.
                latencies.append(time.perf_counter() - scheduled)
            statuses.append(status)
        connection.close()
        return latencies, statuses

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        outcomes = list(pool.map(worker, range(n_workers)))
    elapsed = time.perf_counter() - start
    latencies = [value for lat, _ in outcomes for value in lat]
    statuses = [status for _, stat in outcomes for status in stat]
    record = summarize(latencies, statuses, elapsed)
    record["offered_per_second"] = rate
    return record


# ---------------------------------------------------------------------------
# Parity
# ---------------------------------------------------------------------------

def verify_parity(store, dataset, args):
    """Adaptive-policy responses must be byte-identical to serial execution."""
    seeds = list(next_seeds(48))

    def replay(service):
        def one(seed):
            series = dataset.X[seed % len(dataset)]
            response = service.explain(
                ARTIFACT, series, class_id=int(dataset.y[seed % len(dataset)]),
                k=args.k, seed=seed,
            )
            return response.heatmap, response.success_ratio

        with ThreadPoolExecutor(max_workers=args.clients) as pool:
            return list(pool.map(one, seeds))

    adaptive_service = make_service(store, "adaptive", args)
    serial = ExplanationService(
        store, cache=ExplanationCache(),
        config=ServeConfig(max_batch_size=1, max_wait_ms=0.0),
    )
    try:
        left, right = replay(adaptive_service), replay(serial)
    finally:
        adaptive_service.close()
        serial.close()
    for index, ((heatmap_a, ratio_a), (heatmap_b, ratio_b)) in enumerate(zip(left, right)):
        if not np.array_equal(heatmap_a, heatmap_b) or ratio_a != ratio_b:
            raise SystemExit(f"FAIL: adaptive response #{index} deviates from serial")
    print(f"[parity] {len(seeds)} adaptive responses byte-identical to serial")


# ---------------------------------------------------------------------------
# Measurement points
# ---------------------------------------------------------------------------

def with_server(store, policy, args, measure):
    """Spin an ephemeral server, warm it under load, measure, tear down."""
    service = make_service(store, policy, args)
    server, _thread = serve_in_background(service)
    try:
        address = server.server_address[:2]
        templates = args._templates
        # Warm under concurrency: fills the artifact cache, spins up the
        # per-group worker, and lets the adaptive policy converge before the
        # timer starts (its whole point is steady-state behaviour).
        closed_loop(address, templates, args.clients, args.warmup)
        gc.collect()
        return measure(address, templates)
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small"],
                        help="experiment scale of the trained model / dataset")
    parser.add_argument("--clients", type=int, default=24,
                        help="closed-loop client threads (default: 24)")
    parser.add_argument("--open-workers", type=int, default=48,
                        help="open-loop dispatcher threads (default: 48)")
    parser.add_argument("--duration", type=float, default=1.5,
                        help="seconds per measured point (default: 1.5)")
    parser.add_argument("--warmup", type=float, default=0.5,
                        help="seconds of closed-loop warmup per server")
    parser.add_argument("--rates", default="0.5,1.0,1.2",
                        help="open-loop offered rates as multiples of the "
                             "measured static closed-loop capacity")
    parser.add_argument("--k", type=int, default=8,
                        help="dCAM permutations per explain request")
    parser.add_argument("--epochs", type=int, default=5,
                        help="training epochs of the tiny served model")
    parser.add_argument("--max-batch-size", type=int, default=8,
                        help="static flush bound / adaptive starting point")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="static wait bound / adaptive starting point")
    parser.add_argument("--max-adaptive-batch-size", type=int, default=24,
                        help="hard cap of the adaptive flush size")
    parser.add_argument("--latency-budget-ms", type=float, default=500.0,
                        help="adaptive per-flush latency budget")
    parser.add_argument("--pairs", type=int, default=3,
                        help="interleaved static/adaptive trial pairs at the "
                             "top offered rate (median ratio is the headline)")
    parser.add_argument("--max-queue-depth", type=int, default=256,
                        help="admission watermark (in-flight bound per group)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="exit non-zero unless adaptive goodput at the "
                             "top offered rate exceeds static by this factor")
    parser.add_argument("--output",
                        default=os.path.join(RESULTS_DIR, "serve_load.json"),
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    scale = get_scale(args.scale, random_state=0)
    dataset = make_type1_dataset(scale.synthetic)
    args._templates = body_templates(dataset, args.k)
    rate_factors = [float(part) for part in args.rates.split(",") if part]

    with tempfile.TemporaryDirectory() as tmp:
        store = build_store(tmp, scale, dataset, args.epochs)
        store.load(ARTIFACT)  # warm the artifact cache outside the timers
        verify_parity(store, dataset, args)

        closed = {}
        for policy in ("static", "adaptive"):
            closed[policy] = with_server(
                store, policy, args,
                lambda address, templates: closed_loop(
                    address, templates, args.clients, args.duration),
            )
            print(f"[closed] {policy:8s} goodput {closed[policy]['goodput_per_second']:8.1f} req/s"
                  f"   p50 {closed[policy]['p50_ms']:7.1f}ms"
                  f"   p99 {closed[policy]['p99_ms']:7.1f}ms")

        capacity = closed["static"]["goodput_per_second"]

        def open_point(policy, rate):
            result = with_server(
                store, policy, args,
                lambda address, templates: open_loop(
                    address, templates, rate, args.duration, args.open_workers),
            )
            print(f"[open] {policy:8s} offered {rate:7.1f}/s"
                  f"   goodput {result['goodput_per_second']:8.1f}/s"
                  f"   p99 {result['p99_ms']:8.1f}ms"
                  f"   shed {result['shed']}")
            return result

        open_points = []
        for factor in rate_factors[:-1]:
            rate = capacity * factor
            point = {"factor": factor, "offered_per_second": rate}
            for policy in ("static", "adaptive"):
                point[policy] = open_point(policy, rate)
            open_points.append(point)

        # Top offered rate: interleaved A-B-A trial groups (static,
        # adaptive, static) so both policies see the same phase of host
        # noise; the headline is the median per-group ratio of adaptive
        # goodput over the *mean of its two flanking static trials*, which
        # cancels linear host-speed drift inside a group.  Each group also
        # re-calibrates its offered rate from a closed-loop probe of its
        # own first static server — host speed drifts on shared machines,
        # and a stale capacity estimate would land the "overload" point
        # anywhere between underload (both policies tie at the offered
        # rate) and deep collapse (pure noise).
        top_factor = rate_factors[-1]
        trials = {"static": [], "adaptive": []}
        pair_ratios = []
        for pair in range(max(1, args.pairs)):

            def calibrated_static(address, templates):
                probe = closed_loop(address, templates, args.clients,
                                    max(0.75, args.warmup))
                rate = probe["goodput_per_second"] * top_factor
                result = open_loop(address, templates, rate, args.duration,
                                   args.open_workers)
                result["calibrated_capacity"] = probe["goodput_per_second"]
                return result

            static_before = with_server(store, "static", args, calibrated_static)
            rate = static_before["offered_per_second"]
            print(f"[open] {'static':8s} offered {rate:7.1f}/s"
                  f"   goodput {static_before['goodput_per_second']:8.1f}/s"
                  f"   p99 {static_before['p99_ms']:8.1f}ms"
                  f"   shed {static_before['shed']}")
            adaptive_trial = open_point("adaptive", rate)
            static_after = open_point("static", rate)
            trials["static"].extend([static_before, static_after])
            trials["adaptive"].append(adaptive_trial)
            static_goodput = 0.5 * (
                static_before["goodput_per_second"]
                + static_after["goodput_per_second"]
            )
            pair_ratios.append(adaptive_trial["goodput_per_second"] / static_goodput)
        goodput_speedup = percentile(pair_ratios, 0.5)
        top = {
            "factor": top_factor,
            "offered_per_second": percentile(
                [trial["offered_per_second"] for trial in trials["static"]], 0.5),
            "static": percentile(
                [trial["goodput_per_second"] for trial in trials["static"]], 0.5),
            "adaptive": percentile(
                [trial["goodput_per_second"] for trial in trials["adaptive"]], 0.5),
            "static_trials": trials["static"],
            "adaptive_trials": trials["adaptive"],
            "pair_ratios": pair_ratios,
        }
        open_points.append(top)
    closed_speedup = (
        closed["adaptive"]["goodput_per_second"] / closed["static"]["goodput_per_second"]
    )
    print(f"[serve-load] closed-loop adaptive/static {closed_speedup:.2f}x;"
          f" top offered rate ({top['factor']:g}x capacity)"
          f" median-of-pairs goodput speedup {goodput_speedup:.2f}x"
          f" (pairs: {', '.join(f'{ratio:.2f}' for ratio in top['pair_ratios'])})")

    record = {
        "benchmark": "serve_load",
        "scale": args.scale,
        "clients": args.clients,
        "open_workers": args.open_workers,
        "duration_seconds": args.duration,
        "k": args.k,
        "max_batch_size": args.max_batch_size,
        "max_adaptive_batch_size": args.max_adaptive_batch_size,
        "latency_budget_ms": args.latency_budget_ms,
        "max_queue_depth": args.max_queue_depth,
        "closed_loop": {
            "static": closed["static"],
            "adaptive": closed["adaptive"],
            "closed_goodput_speedup": closed_speedup,
        },
        "open_loop": open_points,
        "static_goodput_per_second": top["static"],
        "adaptive_goodput_per_second": top["adaptive"],
        "goodput_speedup": goodput_speedup,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[serve-load] wrote {args.output}")

    if goodput_speedup <= args.min_speedup:
        raise SystemExit(
            f"FAIL: adaptive goodput at the top offered rate is only "
            f"{goodput_speedup:.2f}x static (required > {args.min_speedup:g}); "
            "the feedback loop is not paying for itself"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
