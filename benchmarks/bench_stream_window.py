"""Hop-throughput benchmark: incremental vs naive streaming explanation.

One untrained (seeded) dCNN watches a synthetic multivariate feed through two
:class:`repro.stream.StreamSession` engines:

* **naive** — every window recomputed from scratch through the offline
  pipeline (``k`` permuted forwards + the full dCAM merge per hop);
* **incremental** — ring-buffered window, rolled ``C(T)`` cube stack, shifted
  conv feature maps with dirty-column recomputation, delta-updated
  permutation CAMs / ``M̄``.

Weights do not affect flop counts, so an untrained model measures the same
work a trained one would.  Before a single hop is timed the two engines
replay an identical stream and every emission is compared — logits and
heatmaps to 1e-10, predicted class and success ratio exactly, the first
window bitwise — and the benchmark exits non-zero on any mismatch
(explanation speed means nothing if the numbers are wrong).  Timed rounds
exclude the first-window cold start: the steady-state hop is the number that
matters for a live feed.  Emits JSON to
``benchmarks/results/stream_window.json`` for the CI perf gate.

Run directly (no install needed)::

    python benchmarks/bench_stream_window.py [--hops 40] [--repeats 3]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time

# Allow running straight from a checkout without installing the package.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.models import DCNNClassifier  # noqa: E402
from repro.stream import StreamConfig, StreamSession  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def make_model(args):
    return DCNNClassifier(
        args.dimensions, args.window, args.classes,
        filters=tuple(args.filters), rng=np.random.default_rng(0),
    )


def make_config(engine, args):
    return StreamConfig(hop=args.hop, engine=engine, k=args.k, seed=0)


def make_stream(args, n_hops):
    rng = np.random.default_rng(1)
    return rng.standard_normal((args.dimensions, args.window + n_hops * args.hop))


def replay(model, engine, feed, args, chunk=None):
    """Run one session over ``feed``; returns the emitted results."""
    session = StreamSession(model, make_config(engine, args))
    chunk = chunk or args.hop
    results = []
    for offset in range(0, feed.shape[1], chunk):
        results.extend(session.push(feed[:, offset : offset + chunk]))
    return results


def verify_parity(model, args):
    """Every incremental emission must match the naive oracle — before timing."""
    feed = make_stream(args, max(8, args.hops // 4))
    incremental = replay(model, "incremental", feed, args)
    naive = replay(model, "naive", feed, args)
    if len(incremental) != len(naive) or not incremental:
        raise SystemExit(
            f"FAIL: emission counts diverge ({len(incremental)} vs {len(naive)})"
        )
    if not np.array_equal(incremental[0].heatmap, naive[0].heatmap):
        raise SystemExit("FAIL: first-window heatmap is not bitwise-identical")
    for left, right in zip(incremental, naive):
        if left.predicted != right.predicted:
            raise SystemExit(f"FAIL: predicted class diverges at emission #{left.index}")
        if left.success_ratio != right.success_ratio:
            raise SystemExit(f"FAIL: success ratio diverges at emission #{left.index}")
        if not np.allclose(left.logits, right.logits, atol=1e-10, rtol=1e-10):
            raise SystemExit(f"FAIL: logits diverge at emission #{left.index}")
        if not np.allclose(left.heatmap, right.heatmap, atol=1e-10, rtol=1e-10):
            raise SystemExit(f"FAIL: heatmap diverges at emission #{left.index}")
    print(f"[parity] {len(incremental)} incremental emissions match the naive "
          f"oracle (first window bitwise, hops <= 1e-10)")


def timed_round(model, engine, warm_feed, hop_feed, args):
    """Steady-state seconds per hop: cold-start on ``warm_feed``, time ``hop_feed``."""
    session = StreamSession(model, make_config(engine, args))
    warm = session.push(warm_feed)
    assert len(warm) == 1, "warmup must emit exactly the first window"
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        emitted = len(session.push(hop_feed))
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    assert emitted == args.hops, f"expected {args.hops} timed emissions, got {emitted}"
    return elapsed


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dimensions", type=int, default=6,
                        help="stream dimensions D (default: 6)")
    parser.add_argument("--window", type=int, default=128,
                        help="window length in timesteps (default: 128)")
    parser.add_argument("--classes", type=int, default=3,
                        help="classifier classes (default: 3)")
    parser.add_argument("--filters", type=int, nargs="+", default=[8, 16],
                        help="dCNN trunk filters (default: 8 16)")
    parser.add_argument("--k", type=int, default=8,
                        help="dCAM permutations per window (default: 8)")
    parser.add_argument("--hop", type=int, default=1,
                        help="samples per emission (default: 1)")
    parser.add_argument("--hops", type=int, default=40,
                        help="timed steady-state hops per round (default: 40)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurement repetitions (best-of is reported)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="exit non-zero if incremental/naive falls below "
                             "this (default: 2.0; 0 disables)")
    parser.add_argument("--output",
                        default=os.path.join(RESULTS_DIR, "stream_window.json"),
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    model = make_model(args)
    print(f"[setup] untrained dCNN D={args.dimensions} window={args.window} "
          f"filters={tuple(args.filters)} k={args.k} hop={args.hop}")
    verify_parity(model, args)

    rng = np.random.default_rng(2)
    warm_feed = rng.standard_normal((args.dimensions, args.window))
    hop_feed = rng.standard_normal((args.dimensions, args.hops * args.hop))
    naive_seconds = min(
        timed_round(model, "naive", warm_feed, hop_feed, args)
        for _ in range(args.repeats)
    )
    incremental_seconds = min(
        timed_round(model, "incremental", warm_feed, hop_feed, args)
        for _ in range(args.repeats)
    )
    speedup = naive_seconds / incremental_seconds
    naive_rate = args.hops / naive_seconds
    incremental_rate = args.hops / incremental_seconds
    print(f"[stream] naive       {naive_rate:8.1f} hops/s "
          f"({1e3 * naive_seconds / args.hops:.2f} ms/hop)")
    print(f"[stream] incremental {incremental_rate:8.1f} hops/s "
          f"({1e3 * incremental_seconds / args.hops:.2f} ms/hop)")
    print(f"[stream] speedup {speedup:.2f}x ({args.hops} hops, best of {args.repeats})")

    record = {
        "benchmark": "stream_window",
        "dimensions": args.dimensions,
        "window": args.window,
        "filters": list(args.filters),
        "k": args.k,
        "hop": args.hop,
        "hops": args.hops,
        "naive_seconds": naive_seconds,
        "incremental_seconds": incremental_seconds,
        "naive_hops_per_second": naive_rate,
        "incremental_hops_per_second": incremental_rate,
        "speedup": speedup,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    output_dir = os.path.dirname(args.output)
    if output_dir:
        os.makedirs(output_dir, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"[written to {args.output}]")

    if args.min_speedup and speedup < args.min_speedup:
        print(f"FAIL: incremental streaming speedup {speedup:.2f}x "
              f"below required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
