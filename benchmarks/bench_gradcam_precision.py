"""Benchmark: graph-free grad-CAM vs the recorded-graph path, and the
float32 compute tier vs the float64 reference.

Two measurements on a tiny MTEX-CNN (the grad-CAM architecture):

* **vjp vs recorded** — the explicit-VJP batch engine
  (``GradCAMExplainer.explain_batch``, forwards under ``inference_mode``, no
  autograd tape) against the legacy recorded-graph path
  (:func:`repro.core.gradcam.mtex_explanation`, one tracked forward +
  backward per instance).  Parity to 1e-10 is verified first (exit non-zero
  otherwise).
* **float32 vs float64** — the same trained weights cast to the opt-in
  float32 tier: batched inference (logits) and batched explanation are timed
  at both precisions and the maximum relative deviation is recorded.  The
  deviation must stay within the documented 1e-5 inference tolerance; the
  speedup is host-dependent (bandwidth-bound at tiny sizes) and is reported
  for tracking, gated only through the committed baseline.

Emits ``benchmarks/results/gradcam_precision.json`` for the perf-regression
gate.  Run directly (no install needed)::

    python benchmarks/bench_gradcam_precision.py [--scale tiny]
"""

from __future__ import annotations

import argparse
import copy
import gc
import json
import os
import platform
import sys
import time

# Allow running straight from a checkout without installing the package.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.core.gradcam import mtex_explanation  # noqa: E402
from repro.data.synthetic import make_type1_dataset  # noqa: E402
from repro.experiments.config import get_scale  # noqa: E402
from repro.explain import get_explainer  # noqa: E402
from repro.models.registry import create_model  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: Documented relative tolerance of float32 inference against the float64
#: reference (same weights, cast); mirrors tests/test_fused_precision.py.
FLOAT32_RTOL = 1e-5


def best_of(fn, repeats):
    """Best-of-N wall clock with the cyclic GC paused."""
    best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        gc.enable()
    return best


def relative_error(value, reference):
    scale = max(float(np.abs(reference).max()), 1e-12)
    return float(np.abs(np.asarray(value, dtype=np.float64) - reference).max() / scale)


def bench_vjp_vs_recorded(model, X, class_ids, repeats):
    """Time the explicit-VJP batch engine against the recorded-graph path."""
    explainer = get_explainer(model)

    def run_recorded():
        return [mtex_explanation(model, series, class_id)
                for series, class_id in zip(X, class_ids)]

    def run_vjp():
        return [e.heatmap for e in explainer.explain_batch(X, class_ids)]

    max_rel = max(relative_error(vjp, recorded)
                  for vjp, recorded in zip(run_vjp(), run_recorded()))
    if max_rel > 1e-10:
        raise SystemExit(f"FAIL: VJP grad-CAM deviates from the recorded path "
                         f"by {max_rel:.2e} > 1e-10")

    recorded_seconds = best_of(run_recorded, repeats)
    vjp_seconds = best_of(run_vjp, repeats)
    n = len(X)
    speedup = recorded_seconds / vjp_seconds
    print(f"[gradcam] recorded {n / recorded_seconds:8.2f} expl/s   "
          f"vjp {n / vjp_seconds:8.2f} expl/s   speedup {speedup:.2f}x "
          f"(max rel diff {max_rel:.2e})")
    return {
        "n_explanations": n,
        "recorded_seconds": recorded_seconds,
        "vjp_seconds": vjp_seconds,
        "recorded_explanations_per_second": n / recorded_seconds,
        "vjp_explanations_per_second": n / vjp_seconds,
        "speedup": speedup,
        "max_relative_diff": max_rel,
    }


def bench_float32_tier(model, X, class_ids, repeats):
    """Time float32 inference/explanation against the float64 reference."""
    fast = copy.deepcopy(model).astype(np.float32)

    reference_logits = model.logits(X)
    fast_logits = fast.logits(X)
    logit_rel = relative_error(fast_logits, reference_logits)

    reference_maps = [e.heatmap for e in get_explainer(model).explain_batch(X, class_ids)]
    fast_maps = [e.heatmap for e in get_explainer(fast).explain_batch(X, class_ids)]
    explain_rel = max(relative_error(a, b) for a, b in zip(fast_maps, reference_maps))
    worst = max(logit_rel, explain_rel)
    if worst > FLOAT32_RTOL:
        raise SystemExit(f"FAIL: float32 tier deviates from float64 by "
                         f"{worst:.2e} > documented tolerance {FLOAT32_RTOL:.0e}")

    n = len(X)
    logits64 = best_of(lambda: model.logits(X), repeats)
    logits32 = best_of(lambda: fast.logits(X), repeats)
    explain64 = best_of(lambda: get_explainer(model).explain_batch(X, class_ids), repeats)
    explain32 = best_of(lambda: get_explainer(fast).explain_batch(X, class_ids), repeats)
    logit_speedup = logits64 / logits32
    explain_speedup = explain64 / explain32
    print(f"[float32] logits {logit_speedup:.2f}x (rel err {logit_rel:.2e})   "
          f"explain {explain_speedup:.2f}x (rel err {explain_rel:.2e})")
    return {
        "n_instances": n,
        "float64_logit_seconds": logits64,
        "float32_logit_seconds": logits32,
        "float32_logits_per_second": n / logits32,
        "float32_logit_speedup": logit_speedup,
        "float64_explain_seconds": explain64,
        "float32_explain_seconds": explain32,
        "float32_explanations_per_second": n / explain32,
        "float32_explain_speedup": explain_speedup,
        "logit_relative_error": logit_rel,
        "explain_relative_error": explain_rel,
        "tolerance": FLOAT32_RTOL,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small"],
                        help="experiment scale of the trained model / dataset")
    parser.add_argument("--instances", type=int, default=12,
                        help="number of test instances per measurement")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurement repetitions (best-of is reported)")
    parser.add_argument("--output",
                        default=os.path.join(RESULTS_DIR, "gradcam_precision.json"),
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    scale = get_scale(args.scale, random_state=0)
    dataset = make_type1_dataset(scale.synthetic)
    model = create_model("mtex", dataset.n_dimensions, dataset.length,
                         dataset.n_classes, rng=np.random.default_rng(0),
                         **scale.model_kwargs("mtex"))
    print(f"[gradcam] training tiny mtex on "
          f"{dataset.n_dimensions}x{dataset.length} synthetic data ...")
    training = scale.training.__class__(epochs=5, batch_size=8, learning_rate=3e-3,
                                        random_state=0)
    model.fit(dataset.X, dataset.y, config=training)
    model.eval()

    n = min(args.instances, len(dataset))
    X = dataset.X[:n]
    class_ids = [int(label) for label in dataset.y[:n]]

    record = {
        "benchmark": "gradcam_precision",
        "scale": args.scale,
        "gradcam": bench_vjp_vs_recorded(model, X, class_ids, args.repeats),
        "float32": bench_float32_tier(model, X, class_ids, args.repeats),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }

    output_dir = os.path.dirname(args.output)
    if output_dir:
        os.makedirs(output_dir, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
