"""CI perf-regression gate over the benchmark JSON records.

Compares every ``benchmarks/results/*.json`` against the committed baseline
of the same name in ``benchmarks/baselines/`` and fails (exit 1) when a
throughput metric regressed beyond tolerance.  Two metric classes are
recognised while recursively walking each record:

* **ratio metrics** — keys named ``speedup`` / ``*_speedup`` (batched vs
  per-instance, engine vs legacy, ...).  These are machine-relative, so they
  gate tightly: fail when more than ``--tolerance`` (default 30%) below the
  baseline.  Ratios whose *baseline* sits near break-even (below
  ``--min-ratio-baseline``, default 1.2) are noise-dominated — e.g. a
  parallel-vs-serial ratio of 1.005 recorded on a single-core host — and are
  reported as ``[info]`` instead of gated.
* **absolute throughput** — keys ending in ``per_second``.  These depend on
  the host the baseline was recorded on, so they gate loosely — but no
  looser than needed: fail when more than ``--absolute-tolerance`` (default
  30%) below the baseline.  (The bound started at 45% while the baselines
  were young; it tightens as they are re-recorded on the CI host class.)

Results without a committed baseline (or without any recognised metric, e.g.
the CLI smoke output) are reported but do not fail the gate — commit a
baseline to arm it.

Updating baselines
------------------
After an intentional perf change, re-run the benchmarks and refresh the
committed baselines from the new results::

    python benchmarks/bench_training_engine.py --scale tiny   # etc.
    python benchmarks/check_regression.py --update
    git add benchmarks/baselines/

``--update FILE.json ...`` refreshes a subset.  The CI bench-smoke job runs
this script after the benchmarks, so a regression fails the pull request
while an intentional improvement only asks for a baseline refresh.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from typing import Dict, Iterator, Tuple

HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS_DIR = os.path.join(HERE, "results")
BASELINES_DIR = os.path.join(HERE, "baselines")


def iter_metrics(record, prefix: str = "") -> Iterator[Tuple[str, str, float]]:
    """Yield ``(path, kind, value)`` for every recognised throughput metric."""
    if isinstance(record, dict):
        for key, value in record.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if key == "speedup" or key.endswith("_speedup"):
                    yield path, "ratio", float(value)
                elif key.endswith("per_second"):
                    yield path, "absolute", float(value)
            else:
                yield from iter_metrics(value, path)


def load_metrics(path: str) -> Dict[str, Tuple[str, float]]:
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    return {metric: (kind, value) for metric, kind, value in iter_metrics(record)}


def compare(name, results_path, baseline_path, tolerances, min_ratio_baseline):
    """Return (regressions, notes) for one result/baseline pair."""
    current = load_metrics(results_path)
    baseline = load_metrics(baseline_path)
    regressions, notes = [], []
    for metric, (kind, reference) in sorted(baseline.items()):
        if metric not in current:
            regressions.append(
                f"{name}: metric {metric!r} missing from new results (present in baseline)"
            )
            continue
        value = current[metric][1]
        if kind == "ratio" and reference < min_ratio_baseline:
            # A break-even baseline ratio carries no regression signal: a 30%
            # drop from 1.005 is ordinary scheduler noise, not a perf change.
            notes.append(
                f"  [      info] {name}:{metric} = {value:.4g} "
                f"(baseline {reference:.4g} below gating floor "
                f"{min_ratio_baseline:.4g}, not gated)"
            )
            continue
        floor = reference * (1.0 - tolerances[kind])
        status = "ok" if value >= floor else "REGRESSION"
        notes.append(
            f"  [{status:>10}] {name}:{metric} = {value:.4g} "
            f"(baseline {reference:.4g}, floor {floor:.4g}, {kind})"
        )
        if value < floor:
            regressions.append(
                f"{name}: {metric} regressed to {value:.4g} "
                f"({value / reference:.0%} of baseline {reference:.4g}; "
                f"tolerance {tolerances[kind]:.0%})"
            )
    return regressions, notes


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="result file names to check/update (default: every JSON in --results)",
    )
    parser.add_argument(
        "--results",
        default=RESULTS_DIR,
        help="directory holding fresh benchmark records",
    )
    parser.add_argument(
        "--baselines",
        default=BASELINES_DIR,
        help="directory holding committed baselines",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop for ratio metrics (default: 0.30)",
    )
    parser.add_argument(
        "--absolute-tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop for machine-dependent absolute throughput (default: 0.30)",
    )
    parser.add_argument(
        "--min-ratio-baseline",
        type=float,
        default=1.2,
        help="ratio metrics with a baseline below this are reported but not gated (default: 1.2)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the current results over the baselines instead of checking",
    )
    args = parser.parse_args(argv)

    def list_json(directory):
        if not os.path.isdir(directory):
            return []
        return sorted(name for name in os.listdir(directory) if name.endswith(".json"))

    result_names = list_json(args.results)
    baseline_names = list_json(args.baselines)
    # Walk the union so a committed baseline whose benchmark stopped emitting
    # results fails loudly instead of silently disarming the gate.
    names = args.files or sorted(set(result_names) | set(baseline_names))
    if not names:
        print(f"no benchmark records found in {args.results}")
        return 1

    if args.update:
        os.makedirs(args.baselines, exist_ok=True)
        for name in names:
            source = os.path.join(args.results, name)
            if not os.path.exists(source):
                print(f"[skip] {name}: baseline kept, no fresh result to copy")
                continue
            if not load_metrics(source):
                print(f"[skip] {name}: no throughput metrics to baseline")
                continue
            shutil.copyfile(source, os.path.join(args.baselines, name))
            print(f"[updated] baselines/{name}")
        return 0

    tolerances = {"ratio": args.tolerance, "absolute": args.absolute_tolerance}
    regressions, unarmed = [], []
    for name in names:
        results_path = os.path.join(args.results, name)
        baseline_path = os.path.join(args.baselines, name)
        if not os.path.exists(results_path):
            regressions.append(
                f"{name}: committed baseline has no matching result — the "
                "benchmark no longer runs or writes a different --output "
                "(delete the baseline if retiring it intentionally)"
            )
            continue
        if not load_metrics(results_path):
            print(f"[skip] {name}: no recognised throughput metrics")
            continue
        if not os.path.exists(baseline_path):
            unarmed.append(name)
            continue
        found, notes = compare(
            name, results_path, baseline_path, tolerances, args.min_ratio_baseline
        )
        print(f"{name}:")
        for note in notes:
            print(note)
        regressions.extend(found)

    for name in unarmed:
        print(
            f"[unarmed] {name}: no committed baseline — run "
            f"`python benchmarks/check_regression.py --update {name}` and "
            "commit benchmarks/baselines/ to arm the gate"
        )
    if regressions:
        print("\nPerformance regressions detected:")
        for line in regressions:
            print(f"  - {line}")
        print(
            "(intentional? refresh with `python benchmarks/check_regression.py"
            " --update` and commit the new baselines)"
        )
        return 1
    print("\nno regressions detected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
