"""Fleet benchmark: distributed Table 3 over real worker processes.

Spins up the whole distributed stack on localhost — a
``ByteStoreServer`` (the shared remote cache tier), a
:class:`~repro.dist.FleetExecutor` coordinator, and two
``python -m repro worker`` subprocesses — and runs a reduced Table 3 sweep
through it twice:

* **cold** — empty byte store, every unit is trained on a worker; the
  result is checked *identical* to a serial in-process run (the fleet is
  not allowed to change a single number);
* **warm** — fresh worker processes with *empty local caches* against the
  now-warm remote store: every unit must be answered from the shared tier
  with zero recomputation, which is the whole point of a fleet-shared
  cache (a new host joining the fleet pays network reads, not training).

The headline ``warm_store_speedup = cold_seconds / warm_seconds`` is capped
at 10.0 — beyond that the warm run is dominated by fixed round-trip costs
and the extra magnitude is pure noise on a shared CI host.  The run fails
(exit non-zero) if the warm run recomputed anything or either run deviates
from serial.  Emits JSON to ``benchmarks/results/dist_fleet.json`` for the
CI perf gate.

Run directly (no install needed)::

    python benchmarks/bench_dist_fleet.py [--workers 2] [--epochs 2]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

# Allow running straight from a checkout without installing the package.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.dist import ByteStoreServer, FleetConfig, FleetExecutor  # noqa: E402
from repro.experiments import run_table3, table3_spec, tiny_scale  # noqa: E402
from repro.models import TrainingConfig  # noqa: E402
from repro.runtime import SerialExecutor  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS_DIR = os.path.join(HERE, "results")

SWEEP = dict(seeds=["starlight"], dataset_types=(1, 2), dimensions=[3],
             models=["cnn", "dcnn"], base_seed=0)


def table3_numbers(result):
    """Flatten a Table3Result into an exactly-comparable structure."""
    return [
        (row.seed_name, row.dataset_type, row.n_dimensions,
         row.c_acc, row.dr_acc, row.success_ratio, row.random_dr_acc)
        for row in result.rows
    ]


def start_workers(count, address, cache_dir, store_address, env):
    return [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--connect", address,
             "--cache-dir", cache_dir, "--remote-store", store_address,
             "--poll-interval-s", "0.05", "--max-idle-s", "120"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for _ in range(count)
    ]


def fleet_run(scale, n_workers, store_address, cache_dir, env):
    """One full fleet sweep; returns (result, seconds, executor telemetry)."""
    with FleetExecutor(FleetConfig(lease_timeout_s=15.0)) as executor:
        workers = start_workers(n_workers, executor.address, cache_dir,
                                store_address, env)
        # Interpreter + numpy start-up is not fleet overhead: wait for every
        # worker to report in before starting the clock.
        deadline = time.monotonic() + 60.0
        while (len(executor.coordinator.workers_seen) < n_workers
               and time.monotonic() < deadline):
            time.sleep(0.02)
        start = time.perf_counter()
        result = run_table3(scale, executor=executor, **SWEEP)
        seconds = time.perf_counter() - start
        telemetry = executor.telemetry.snapshot()
    for worker in workers:
        try:
            worker.wait(timeout=30)
        except subprocess.TimeoutExpired:
            worker.kill()
    return result, seconds, telemetry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2,
                        help="fleet worker processes")
    parser.add_argument("--epochs", type=int, default=12,
                        help="training epochs per unit (big enough that the "
                             "warm-store ratio sits firmly above the 10.0 cap)")
    parser.add_argument("--warm-trials", type=int, default=2,
                        help="warm runs; the fastest counts (noise discipline)")
    parser.add_argument("--output",
                        default=os.path.join(RESULTS_DIR, "dist_fleet.json"),
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    scale = tiny_scale(random_state=0).with_overrides(
        name="bench-fleet",
        training=TrainingConfig(epochs=args.epochs, batch_size=8,
                                learning_rate=3e-3, patience=5, random_state=0),
    )
    n_units = len(table3_spec(scale, **SWEEP).units)
    print(f"[dist_fleet] reduced table3 sweep: {n_units} units, "
          f"{args.workers} workers")

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [_SRC] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p])

    print("[dist_fleet] serial reference run ...")
    serial_result = run_table3(scale, executor=SerialExecutor(), **SWEEP)

    with tempfile.TemporaryDirectory(prefix="bench-dist-fleet-") as tmp:
        server = ByteStoreServer(directory=os.path.join(tmp, "byte-store")).start()
        try:
            print(f"[dist_fleet] byte store at {server.address}; cold fleet run ...")
            cold_result, cold_seconds, _ = fleet_run(
                scale, args.workers, server.address,
                os.path.join(tmp, "cache-cold"), env)
            warm_result = warm_telemetry = None
            warm_seconds = float("inf")
            for trial in range(max(1, args.warm_trials)):
                print(f"[dist_fleet] warm-store fleet run {trial + 1} "
                      "(fresh local caches) ...")
                result, seconds, telemetry = fleet_run(
                    scale, args.workers, server.address,
                    os.path.join(tmp, f"cache-warm-{trial}"), env)
                if seconds < warm_seconds:
                    warm_result, warm_seconds, warm_telemetry = (
                        result, seconds, telemetry)
        finally:
            server.close()

    if table3_numbers(serial_result) != table3_numbers(cold_result):
        raise SystemExit("FAIL: cold fleet run deviates from serial results")
    if table3_numbers(serial_result) != table3_numbers(warm_result):
        raise SystemExit("FAIL: warm fleet run deviates from serial results")
    deduped = int(warm_telemetry.get("fleet_units_deduped", 0))
    completed = int(warm_telemetry.get("fleet_units_completed", 0))
    if deduped < completed:
        raise SystemExit(
            f"FAIL: warm run recomputed {completed - deduped} of {completed} "
            "units — the shared store did not serve them")

    raw_speedup = cold_seconds / warm_seconds if warm_seconds > 0 else 10.0
    warm_store_speedup = min(10.0, raw_speedup)
    print(f"[dist_fleet] cold {cold_seconds:6.2f}s   warm {warm_seconds:6.2f}s   "
          f"warm-store speedup {raw_speedup:.2f}x (capped at 10.0)   "
          f"({deduped}/{completed} units from shared store)")

    record = {
        "benchmark": "dist_fleet",
        "experiment": "table3",
        "n_units": n_units,
        "workers": args.workers,
        "epochs": args.epochs,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_store_speedup": warm_store_speedup,
        "warm_units_from_store": deduped,
        "results_identical": True,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    output_dir = os.path.dirname(args.output)
    if output_dir:
        os.makedirs(output_dir, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
