"""Throughput benchmark: legacy fit loop vs the fused training engine.

For one architecture per ``input_kind`` (CNN raw, cCNN channel, dCNN cube —
override with ``--models``) a tiny model is trained twice on synthetic data:

* **legacy** — the reference per-batch-prepare loop
  (``TrainingConfig(engine="legacy")``, kept in ``repro.training.legacy``);
* **engine** — the fused pipeline (``repro.training.TrainingEngine``):
  inputs prepared once per fit and gathered into preallocated batch slots,
  fused BatchNorm / conv1d / GAP-dense-cross-entropy autograd nodes, and
  im2col / col2im scratch buffers reused across batches.

Verifies first that both paths are float-identical (loss curve and final
state dict must match bit for bit; exits non-zero otherwise), then reports
training-epoch throughput and the per-model + geometric-mean speedup, and
writes a JSON record to ``benchmarks/results/training_engine.json`` for the
CI perf-regression gate (``benchmarks/check_regression.py``).

Run directly (no install needed)::

    python benchmarks/bench_training_engine.py [--scale tiny] [--epochs 20]
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import os
import platform
import sys
import time
from dataclasses import replace

# Allow running straight from a checkout without installing the package.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.data.synthetic import make_type1_dataset  # noqa: E402
from repro.experiments.config import get_scale  # noqa: E402
from repro.models.base import TrainingConfig  # noqa: E402
from repro.models.registry import create_model  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: One representative per prepare-input kind, plus the residual/inception
#: families whose add→relu / concat→BN→ReLU / pool tails have their own
#: fused nodes.
DEFAULT_MODELS = ("cnn", "ccnn", "dcnn", "resnet", "inceptiontime")


def train_once(model_name, dataset, scale, config):
    """Train a freshly seeded model; returns (history, state_dict, seconds)."""
    model = create_model(model_name, dataset.n_dimensions, dataset.length,
                         dataset.n_classes, rng=np.random.default_rng(0),
                         **scale.model_kwargs(model_name))
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        history = model.fit(dataset.X, dataset.y, config=config)
        seconds = time.perf_counter() - start
    finally:
        gc.enable()
    return history, model.state_dict(), seconds


def bench_model(model_name, dataset, scale, args):
    """Parity-check then time legacy vs engine training for one model."""
    config = TrainingConfig(epochs=args.epochs, batch_size=args.batch_size,
                            learning_rate=3e-3, patience=args.epochs + 1,
                            random_state=0)
    print(f"[{model_name}] training {args.epochs} epochs on "
          f"{dataset.n_dimensions}x{dataset.length} synthetic data ...")

    # Correctness first: the engine must match the legacy loop bit for bit.
    history_legacy, state_legacy, _ = train_once(
        model_name, dataset, scale, replace(config, engine="legacy"))
    history_engine, state_engine, _ = train_once(
        model_name, dataset, scale, replace(config, engine="fused"))
    if history_legacy.train_loss != history_engine.train_loss:
        raise SystemExit(f"FAIL [{model_name}]: engine loss curve deviates "
                         "from the legacy loop")
    for key in state_legacy:
        if not np.array_equal(state_legacy[key], state_engine[key]):
            raise SystemExit(f"FAIL [{model_name}]: engine weights deviate "
                             f"from the legacy loop at {key!r}")

    # Alternate the two paths so clock-frequency / noisy-neighbour drift hits
    # both measurements evenly; best-of-N absorbs the remaining spikes.
    legacy_times, engine_times = [], []
    for _ in range(args.repeats):
        legacy_times.append(train_once(
            model_name, dataset, scale, replace(config, engine="legacy"))[2])
        engine_times.append(train_once(
            model_name, dataset, scale, replace(config, engine="fused"))[2])
    legacy_seconds = min(legacy_times)
    engine_seconds = min(engine_times)
    epochs = history_legacy.epochs_run
    speedup = legacy_seconds / engine_seconds
    print(f"[{model_name}] legacy {epochs / legacy_seconds:7.2f} epochs/s   "
          f"engine {epochs / engine_seconds:7.2f} epochs/s   "
          f"speedup {speedup:.2f}x")
    return {
        "epochs": epochs,
        "legacy_seconds": legacy_seconds,
        "engine_seconds": engine_seconds,
        "legacy_epochs_per_second": epochs / legacy_seconds,
        "engine_epochs_per_second": epochs / engine_seconds,
        "speedup": speedup,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small"],
                        help="experiment scale of the models / dataset")
    parser.add_argument("--models", default=",".join(DEFAULT_MODELS),
                        help="comma-separated architectures to train")
    parser.add_argument("--epochs", type=int, default=20,
                        help="training epochs per measurement")
    parser.add_argument("--batch-size", type=int, default=8,
                        help="mini-batch size")
    parser.add_argument("--repeats", type=int, default=5,
                        help="measurement repetitions (best-of is reported)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="exit non-zero if the geometric-mean speedup "
                             "falls below this")
    parser.add_argument("--output",
                        default=os.path.join(RESULTS_DIR, "training_engine.json"),
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    scale = get_scale(args.scale, random_state=0)
    dataset = make_type1_dataset(scale.synthetic)
    models = [name.strip() for name in args.models.split(",") if name.strip()]

    record = {
        "benchmark": "training_engine",
        "scale": args.scale,
        "epochs": args.epochs,
        "batch_size": args.batch_size,
        "models": {},
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    for model_name in models:
        record["models"][model_name] = bench_model(model_name, dataset, scale, args)

    speedups = [entry["speedup"] for entry in record["models"].values()]
    record["geomean_speedup"] = math.exp(sum(math.log(s) for s in speedups)
                                         / len(speedups))
    print(f"geomean speedup: {record['geomean_speedup']:.2f}x")

    output_dir = os.path.dirname(args.output)
    if output_dir:
        os.makedirs(output_dir, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"[written to {args.output}]")

    if args.min_speedup and record["geomean_speedup"] < args.min_speedup:
        print(f"FAIL: geomean speedup {record['geomean_speedup']:.2f}x below "
              f"required {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
