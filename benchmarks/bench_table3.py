"""Benchmark regenerating Table 3: C-acc and Dr-acc on synthetic datasets."""

from repro.experiments import run_table3


def bench_table3(bench_scale, emit):
    result = run_table3(bench_scale)
    emit("table3", result.format())
    return result


def test_table3(benchmark, bench_scale, emit):
    result = benchmark.pedantic(bench_table3, args=(bench_scale, emit),
                                rounds=1, iterations=1)
    assert result.rows, "Table 3 produced no rows"
    for row in result.rows:
        assert set(row.c_acc) == set(result.models)
        assert set(row.dr_acc) == set(result.models)
        assert 0.0 <= row.random_dr_acc <= 1.0
        # the explanation methods should not be *worse* than random on average
        best_dr = max(row.dr_acc.values())
        assert best_dr >= row.random_dr_acc * 0.5
