"""Benchmark regenerating Figure 13: the surgeon-skill explanation use case."""

from repro.experiments import run_figure13


def bench_figure13(bench_scale, emit):
    result = run_figure13(bench_scale)
    emit("figure13", result.format())
    return result


def test_figure13(benchmark, bench_scale, emit):
    result = benchmark.pedantic(bench_figure13, args=(bench_scale, emit),
                                rounds=1, iterations=1)
    assert 0.0 <= result.train_accuracy <= 1.0
    assert 0.0 <= result.test_accuracy <= 1.0
    assert result.max_activation.shape[1] == 76
    assert len(result.per_gesture_activation) == 11
    assert result.top_sensors and result.top_gestures
