"""Shared configuration of the benchmark harness.

Each benchmark regenerates one table or figure of the paper at the ``tiny``
experiment scale (so the whole harness completes in minutes on a CPU) and
writes the formatted rows/series to ``benchmarks/results/<name>.txt`` in
addition to printing them, so the regenerated artefacts survive pytest's
output capturing.

Run with::

    pytest benchmarks/ --benchmark-only

Pass ``--repro-scale=small`` (or ``paper``) to regenerate at a larger scale.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import get_scale

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def pytest_addoption(parser):
    parser.addoption("--repro-scale", action="store", default="tiny",
                     choices=["tiny", "small", "paper"],
                     help="experiment scale used by the dCAM reproduction benchmarks")


@pytest.fixture(scope="session")
def bench_scale(request):
    """The experiment scale shared by every benchmark."""
    return get_scale(request.config.getoption("--repro-scale"), random_state=0)


@pytest.fixture(scope="session")
def emit():
    """Write a regenerated artefact to benchmarks/results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _emit(name: str, text: str) -> str:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _emit
