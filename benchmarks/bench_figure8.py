"""Benchmark regenerating Figure 8: d-architectures vs counterparts (scatter)."""

from repro.experiments import run_figure8

DATASETS = ["BasicMotions", "RacketSports", "PenDigits"]


def bench_figure8(bench_scale, emit):
    result = run_figure8(bench_scale, dataset_names=DATASETS)
    emit("figure8", result.format())
    return result


def test_figure8(benchmark, bench_scale, emit):
    result = benchmark.pedantic(bench_figure8, args=(bench_scale, emit),
                                rounds=1, iterations=1)
    assert result.points, "Figure 8 produced no comparison points"
    for (d_model, baseline), points in result.points.items():
        assert len(points) == len(DATASETS)
        assert 0 <= result.wins(d_model, baseline) <= len(points)
