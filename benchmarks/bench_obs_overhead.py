"""Observability overhead gate: tracing must be ~free when off, cheap when on.

Metrics/histograms are always-on in the serving and streaming layers, and
sampled tracing rides the same hot paths; this benchmark pins both costs.

* **serve** — a tiny trained cCNN serves a concurrent classify load through
  two :class:`repro.serve.ExplanationService` instances that differ only in
  ``ObsConfig.trace_sample_rate`` (0.0 vs 1.0).  Each request is wrapped in
  ``maybe_trace`` against the service tracer — the same edge decision the
  HTTP handler makes — so the traced round records the full span tree
  (request → batcher queue/flush → engine → cache) for *every* request.
* **stream** — an untrained (seeded) dCNN replays an identical incremental
  feed through three :class:`repro.stream.StreamSession` variants: ``plain``
  (no telemetry, no ambient trace — the pure no-op path), ``off``
  (telemetry-attached hop timer, unsampled tracer) and ``traced``
  (telemetry plus a sample-everything tracer around each push).

Before any timing, responses/emissions are verified **byte-identical**
across variants (exits non-zero otherwise): observability is out-of-band
and must never change a served bit.  The traced/off ratios are then gated
in-process (``--max-overhead`` / ``--max-off-overhead``) and the absolute
rates are emitted to ``benchmarks/results/obs_overhead.json`` for the CI
``check_regression`` gate.

The gates are sized to catch *structural* regressions (an accidental span
allocation on the unsampled path shows up as +50..100%), not scheduler
noise: at tiny per-request cost (~0.3 ms classify) best-of-round timing on
a 1-CPU CI runner still jitters by up to ~15%, and the sample-everything
span tree is itself a visible fraction of such cheap requests — on real
loads both shrink proportionally with request cost.

Run directly (no install needed)::

    python benchmarks/bench_obs_overhead.py [--requests 96] [--repeats 3]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

# Allow running straight from a checkout without installing the package.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.data.synthetic import make_type1_dataset  # noqa: E402
from repro.experiments.config import get_scale  # noqa: E402
from repro.models import DCNNClassifier  # noqa: E402
from repro.models.registry import create_model  # noqa: E402
from repro.obs import ObsConfig, Telemetry, Tracer, maybe_trace  # noqa: E402
from repro.serve import (  # noqa: E402
    ExplanationCache,
    ExplanationService,
    ModelArtifactStore,
    ServeConfig,
)
from repro.stream import StreamConfig, StreamSession  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


# --------------------------------------------------------------------------
# serve path
# --------------------------------------------------------------------------

def build_store(directory, scale, dataset, epochs):
    store = ModelArtifactStore(directory)
    print("[setup] training tiny ccnn ...")
    model = create_model("ccnn", dataset.n_dimensions, dataset.length,
                         dataset.n_classes, rng=np.random.default_rng(0),
                         **scale.model_kwargs("ccnn"))
    training = scale.training.__class__(epochs=epochs, batch_size=8,
                                        learning_rate=3e-3, random_state=0)
    model.fit(dataset.X, dataset.y, config=training)
    store.register("ccnn-obs", model, model_name="ccnn",
                   metadata={"model_kwargs": scale.model_kwargs("ccnn")})
    return store


def build_requests(dataset, n_requests):
    # Unique bytes per request so nothing short-circuits through the
    # response cache mid-round.
    return [dataset.X[index % len(dataset)] * (1.0 + 1e-3 * (index // len(dataset)))
            for index in range(n_requests)]


def make_service(store, sample_rate, args):
    config = ServeConfig(max_batch_size=args.max_batch_size,
                         max_wait_ms=args.max_wait_ms,
                         obs=ObsConfig(trace_sample_rate=sample_rate))
    return ExplanationService(store, cache=ExplanationCache(), config=config)


def serve_replay(service, requests, n_clients, pool=None):
    """Replay the load from ``n_clients`` threads; returns ordered logits.

    Every request runs under the same ``maybe_trace`` edge decision the HTTP
    handler makes, so a sample-everything tracer records a full span tree
    per request while an unsampled one costs a single check.
    """

    def one(series):
        with maybe_trace(service.tracer, "bench.request"):
            return service.classify("ccnn-obs", series).logits

    if pool is not None:
        return list(pool.map(one, requests))
    with ThreadPoolExecutor(max_workers=n_clients) as fresh_pool:
        return list(fresh_pool.map(one, requests))


def verify_serve_parity(store, requests, args):
    """Traced and untraced responses must be byte-identical."""
    with make_service(store, 0.0, args) as off_service:
        off = serve_replay(off_service, requests, args.clients)
    with make_service(store, 1.0, args) as traced_service:
        traced = serve_replay(traced_service, requests, args.clients)
    assert traced_service.tracer.ring.recorded > 0, \
        "traced round recorded no spans; the bench is not measuring tracing"
    for index, (left, right) in enumerate(zip(off, traced)):
        if left.tobytes() != right.tobytes():
            raise SystemExit(f"FAIL: traced response #{index} deviates from untraced")
    print(f"[parity] {len(requests)} traced serve responses byte-identical to untraced")


def serve_timed_round(store, requests, sample_rate, args):
    """Wall-clock seconds to serve the load with a fresh service."""
    service = make_service(store, sample_rate, args)
    try:
        with ThreadPoolExecutor(max_workers=args.clients) as pool:
            serve_replay(service, requests[: args.clients], args.clients, pool=pool)
            service.cache = ExplanationCache(telemetry=service.telemetry)
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            serve_replay(service, requests, args.clients, pool=pool)
            return time.perf_counter() - start
    finally:
        gc.enable()
        service.close()


# --------------------------------------------------------------------------
# stream path
# --------------------------------------------------------------------------

def make_stream_model(args):
    # Weights do not affect flop counts; a seeded untrained dCNN measures
    # the same per-hop work a trained one would.
    return DCNNClassifier(args.dimensions, args.window, args.classes,
                          filters=tuple(args.filters),
                          rng=np.random.default_rng(0))


def make_stream_session(model, args, variant):
    config = StreamConfig(hop=1, engine="incremental", k=args.k, seed=0)
    telemetry = None if variant == "plain" else Telemetry()
    session = StreamSession(model, config, telemetry=telemetry)
    tracer = None
    if variant == "traced":
        tracer = Tracer(sample_rate=1.0, process="bench-stream")
    elif variant == "off":
        tracer = Tracer(sample_rate=0.0, process="bench-stream")
    return session, tracer


def stream_replay(model, feed, args, variant):
    """Push ``feed`` one hop at a time; returns the emitted results."""
    session, tracer = make_stream_session(model, args, variant)
    results = list(session.push(feed[:, : args.window]))  # cold start
    for offset in range(args.window, feed.shape[1]):
        chunk = feed[:, offset : offset + 1]
        if tracer is None:
            results.extend(session.push(chunk))
        else:
            with maybe_trace(tracer, "bench.push"):
                results.extend(session.push(chunk))
    return results


def verify_stream_parity(model, feed, args):
    """Every instrumented emission must match the plain session, bitwise."""
    plain = stream_replay(model, feed, args, "plain")
    for variant in ("off", "traced"):
        other = stream_replay(model, feed, args, variant)
        if len(other) != len(plain):
            raise SystemExit(f"FAIL [{variant}]: emission counts diverge "
                             f"({len(other)} vs {len(plain)})")
        for left, right in zip(other, plain):
            if left.predicted != right.predicted:
                raise SystemExit(f"FAIL [{variant}]: predicted class diverges "
                                 f"at emission #{left.index}")
            if not np.array_equal(left.logits, right.logits):
                raise SystemExit(f"FAIL [{variant}]: logits diverge at #{left.index}")
            if not np.array_equal(left.heatmap, right.heatmap):
                raise SystemExit(f"FAIL [{variant}]: heatmap diverges at #{left.index}")
    print(f"[parity] {len(plain)} instrumented stream emissions bitwise-identical "
          f"to the plain session (off + traced)")


def stream_timed_round(model, warm_feed, hop_feed, args, variant):
    """Steady-state seconds for ``args.hops`` single-sample hops."""
    session, tracer = make_stream_session(model, args, variant)
    warm = session.push(warm_feed)
    assert len(warm) == 1, "warmup must emit exactly the first window"
    gc.collect()
    gc.disable()
    try:
        emitted = 0
        start = time.perf_counter()
        for offset in range(hop_feed.shape[1]):
            chunk = hop_feed[:, offset : offset + 1]
            if tracer is None:
                emitted += len(session.push(chunk))
            else:
                with maybe_trace(tracer, "bench.push"):
                    emitted += len(session.push(chunk))
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    assert emitted == args.hops, f"expected {args.hops} timed emissions, got {emitted}"
    return elapsed


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small"],
                        help="experiment scale of the served model / dataset")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent serve client threads (default: 8)")
    parser.add_argument("--requests", type=int, default=192,
                        help="classify requests per serve round (default: 192)")
    parser.add_argument("--epochs", type=int, default=3,
                        help="training epochs of the tiny served model")
    parser.add_argument("--max-batch-size", type=int, default=8,
                        help="micro-batcher flush threshold")
    parser.add_argument("--max-wait-ms", type=float, default=5.0,
                        help="micro-batcher wait bound")
    parser.add_argument("--dimensions", type=int, default=6,
                        help="stream dimensions D (default: 6)")
    parser.add_argument("--window", type=int, default=128,
                        help="stream window length (default: 128)")
    parser.add_argument("--classes", type=int, default=3,
                        help="stream classifier classes (default: 3)")
    parser.add_argument("--filters", type=int, nargs="+", default=[8, 16],
                        help="stream dCNN trunk filters (default: 8 16)")
    parser.add_argument("--k", type=int, default=8,
                        help="dCAM permutations per stream window (default: 8)")
    parser.add_argument("--hops", type=int, default=80,
                        help="timed steady-state stream hops per round")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurement repetitions (best-of is reported)")
    parser.add_argument("--max-overhead", type=float, default=0.30,
                        help="exit non-zero if sample-everything tracing costs "
                             "more than this fraction over untraced "
                             "(default: 0.30; negative disables)")
    parser.add_argument("--max-off-overhead", type=float, default=0.20,
                        help="exit non-zero if telemetry with tracing *off* "
                             "costs more than this fraction over the plain "
                             "stream session (default: 0.20; negative disables)")
    parser.add_argument("--output",
                        default=os.path.join(RESULTS_DIR, "obs_overhead.json"),
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    # --- serve ------------------------------------------------------------
    scale = get_scale(args.scale, random_state=0)
    dataset = make_type1_dataset(scale.synthetic)
    requests = build_requests(dataset, args.requests)
    with tempfile.TemporaryDirectory() as tmp:
        store = build_store(tmp, scale, dataset, args.epochs)
        store.load("ccnn-obs")  # warm the artifact cache outside the timers
        verify_serve_parity(store, requests, args)
        serve_seconds = {
            name: min(serve_timed_round(store, requests, rate, args)
                      for _ in range(args.repeats))
            for name, rate in (("off", 0.0), ("traced", 1.0))
        }
    serve_rates = {name: len(requests) / seconds
                   for name, seconds in serve_seconds.items()}
    serve_overhead = serve_seconds["traced"] / serve_seconds["off"] - 1.0
    for name in ("off", "traced"):
        print(f"[serve ] {name:6s} {serve_rates[name]:8.1f} req/s "
              f"({1e3 * serve_seconds[name] / len(requests):.2f} ms/req)")
    print(f"[serve ] sample-everything tracing overhead {serve_overhead:+.1%}")

    # --- stream -----------------------------------------------------------
    model = make_stream_model(args)
    rng = np.random.default_rng(1)
    parity_feed = rng.standard_normal((args.dimensions, args.window + 8))
    verify_stream_parity(model, parity_feed, args)
    warm_feed = rng.standard_normal((args.dimensions, args.window))
    hop_feed = rng.standard_normal((args.dimensions, args.hops))
    stream_seconds = {
        variant: min(stream_timed_round(model, warm_feed, hop_feed, args, variant)
                     for _ in range(args.repeats))
        for variant in ("plain", "off", "traced")
    }
    stream_rates = {variant: args.hops / seconds
                    for variant, seconds in stream_seconds.items()}
    stream_off_overhead = stream_seconds["off"] / stream_seconds["plain"] - 1.0
    stream_traced_overhead = stream_seconds["traced"] / stream_seconds["plain"] - 1.0
    for variant in ("plain", "off", "traced"):
        print(f"[stream] {variant:6s} {stream_rates[variant]:8.1f} hops/s "
              f"({1e3 * stream_seconds[variant] / args.hops:.2f} ms/hop)")
    print(f"[stream] tracing-off overhead {stream_off_overhead:+.1%}, "
          f"sample-everything {stream_traced_overhead:+.1%}")

    record = {
        "benchmark": "obs_overhead",
        "scale": args.scale,
        "clients": args.clients,
        "requests": args.requests,
        "hops": args.hops,
        "k": args.k,
        "serve_off_requests_per_second": serve_rates["off"],
        "serve_traced_requests_per_second": serve_rates["traced"],
        "serve_traced_overhead": serve_overhead,
        "stream_plain_hops_per_second": stream_rates["plain"],
        "stream_off_hops_per_second": stream_rates["off"],
        "stream_traced_hops_per_second": stream_rates["traced"],
        "stream_off_overhead": stream_off_overhead,
        "stream_traced_overhead": stream_traced_overhead,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    output_dir = os.path.dirname(args.output)
    if output_dir:
        os.makedirs(output_dir, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"[written to {args.output}]")

    failures = []
    if args.max_overhead >= 0.0:
        if serve_overhead > args.max_overhead:
            failures.append(f"serve tracing overhead {serve_overhead:+.1%} exceeds "
                            f"{args.max_overhead:.0%}")
        if stream_traced_overhead > args.max_overhead:
            failures.append(f"stream tracing overhead {stream_traced_overhead:+.1%} "
                            f"exceeds {args.max_overhead:.0%}")
    if args.max_off_overhead >= 0.0 and stream_off_overhead > args.max_off_overhead:
        failures.append(f"stream tracing-OFF overhead {stream_off_overhead:+.1%} "
                        f"exceeds {args.max_off_overhead:.0%}")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
