"""Benchmark regenerating Figure 10: influence of the number of permutations k."""

from repro.experiments import run_figure10


def bench_figure10(bench_scale, emit):
    result = run_figure10(bench_scale)
    emit("figure10", result.format())
    return result


def test_figure10(benchmark, bench_scale, emit):
    result = benchmark.pedantic(bench_figure10, args=(bench_scale, emit),
                                rounds=1, iterations=1)
    assert result.curves, "Figure 10 produced no curves"
    needed = result.permutations_to_reach(0.9)
    for key, curve in result.curves.items():
        assert len(curve) == len(result.k_values)
        assert all(0.0 <= value <= 1.0 for value in curve)
        assert needed[key] in result.k_values
