"""Benchmark regenerating Figure 9: C-acc / Dr-acc vs number of dimensions."""

from repro.experiments import run_figure9


def bench_figure9(bench_scale, emit):
    result = run_figure9(bench_scale)
    emit("figure9", result.format())
    return result


def test_figure9(benchmark, bench_scale, emit):
    result = benchmark.pedantic(bench_figure9, args=(bench_scale, emit),
                                rounds=1, iterations=1)
    for dataset_type in (1, 2):
        c_series = result.series("c_acc", dataset_type)
        dr_series = result.series("dr_acc", dataset_type)
        for model in result.models:
            assert len(c_series[model]) == len(result.dimensions)
            assert all(0.0 <= v <= 1.0 for v in c_series[model])
            assert all(0.0 <= v <= 1.0 for v in dr_series[model])
    harmonic = result.harmonic_series("c_acc")
    assert set(harmonic) == set(result.models)
