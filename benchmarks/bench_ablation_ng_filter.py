"""Ablation benchmark: averaging all permutations vs only correctly-classified ones."""

from repro.experiments import run_ng_filter_ablation


def bench_ng_filter_ablation(bench_scale, emit):
    result = run_ng_filter_ablation(bench_scale)
    emit("ablation_ng_filter", result.format("Ablation — permutation filtering by n_g (Dr-acc)"))
    return result


def test_ng_filter_ablation(benchmark, bench_scale, emit):
    result = benchmark.pedantic(bench_ng_filter_ablation, args=(bench_scale, emit),
                                rounds=1, iterations=1)
    assert result.rows
    for row in result.rows:
        assert 0.0 <= row["all_permutations"] <= 1.0
        assert 0.0 <= row["only_correct"] <= 1.0
