"""Distributed execution and fleet-shared state for the reproduction.

Two halves, one wire protocol (:mod:`repro.dist.protocol`):

* the **remote byte-store tier** — :class:`RemoteByteStore` against a
  ``python -m repro byte-store-server`` (:class:`ByteStoreServer`), slotted
  behind every local :class:`~repro.runtime.eviction.TieredByteStore` so the
  runtime result cache, the serving explanation cache and the model artifact
  store share one fleet-wide content-addressed namespace;
* the **fleet executor** — :class:`FleetExecutor` publishing work units to
  ``python -m repro worker`` processes with lease/heartbeat/re-queue failure
  handling and cache-fingerprint dedupe.
"""

from .client import (
    RemoteByteStore,
    RemoteRefusedError,
    RemoteStoreConfig,
    RemoteUnavailableError,
    WireClient,
)
from .coordinator import FleetConfig, FleetCoordinator, FleetExecutor, UnitFailedError
from .protocol import ConnectionClosed, ProtocolError, format_address, parse_address
from .server import ByteStoreServer, WireServer
from .worker import run_worker

__all__ = [
    "ByteStoreServer",
    "ConnectionClosed",
    "FleetConfig",
    "FleetCoordinator",
    "FleetExecutor",
    "ProtocolError",
    "RemoteByteStore",
    "RemoteRefusedError",
    "RemoteStoreConfig",
    "RemoteUnavailableError",
    "UnitFailedError",
    "WireClient",
    "WireServer",
    "format_address",
    "parse_address",
    "run_worker",
]
