"""Clients of the fleet wire protocol: pooled connections + the remote byte store.

:class:`WireClient` owns the transport concerns every protocol client shares —
a small pool of persistent connections, per-request timeouts, bounded retries
with exponential backoff (a retried request is safe because every protocol
operation is idempotent: puts are content-addressed, leases tolerate
re-delivery).  :class:`RemoteByteStore` wraps it into the third cache tier:
``get``/``put``/``contains`` over the wire with **graceful local-only
fallback** — when the server is unreachable the store answers misses and
drops writes instead of raising, and backs off for ``down_cooldown_s`` so a
dead remote costs one connect timeout per cooldown window, not per request.

All remote traffic is counted into a shared
:class:`~repro.telemetry.Telemetry` registry (``remote_hits`` /
``remote_misses`` / ``remote_puts`` / ``remote_errors`` /
``remote_refusals`` / ``remote_down_skips`` plus the ``remote_request``
timer), which the serving layer's ``/metrics`` endpoint surfaces.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from ..obs.tracing import span, trace_wire_header
from ..telemetry import Telemetry
from . import protocol


@dataclass
class RemoteStoreConfig:
    """Transport knobs of one remote byte-store (or coordinator) client."""

    #: ``host:port`` of the server (see ``python -m repro byte-store-server``).
    address: str
    #: Seconds allowed for establishing a TCP connection.
    connect_timeout_s: float = 2.0
    #: Seconds allowed for one request round-trip (send + receive).  Large
    #: blobs (model weights) transfer well inside this on a LAN; raise it for
    #: slow links rather than disabling it — an unbounded wait would stall a
    #: serving worker forever.
    request_timeout_s: float = 30.0
    #: Additional attempts after a failed request (0 disables retries).  Every
    #: retry dials a fresh connection, so a stale pooled socket never counts
    #: against the budget twice.
    retries: int = 2
    #: Backoff before the first retry; doubles per subsequent attempt.
    backoff_s: float = 0.05
    #: Connections kept open per client (requests beyond it dial ad hoc).
    pool_size: int = 4
    #: Seconds the client treats the remote as *down* after exhausting its
    #: retries.  During the cooldown every operation falls back locally
    #: without touching the network; afterwards the next operation probes the
    #: server again.  0 retries on every request.
    down_cooldown_s: float = 5.0

    def __post_init__(self) -> None:
        protocol.parse_address(self.address)  # fail fast on malformed input


class RemoteUnavailableError(ConnectionError):
    """Every attempt at one request failed; the remote is treated as down."""


class RemoteRefusedError(RemoteUnavailableError):
    """The server answered but *refused* the operation (``ok: false``).

    A refusal proves the server is alive — transport-level ``except
    RemoteUnavailableError`` handlers still catch it (it subclasses the
    transport error, preserving historical behaviour), but callers that need
    the distinction (e.g. probing an old server for an op it does not know,
    like ``index-update``) can catch this first and fall back without
    marking a healthy server down.
    """


class WireClient:
    """A pooled, retrying protocol client (shared by store and fleet ops)."""

    def __init__(self, config: RemoteStoreConfig, telemetry: Optional[Telemetry] = None) -> None:
        """Create a client for ``config.address`` (no connection is dialed yet).

        ``telemetry`` is the shared counter registry remote traffic is
        reported into; a private one is created when omitted.
        """
        self.config = config
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._host, self._port = protocol.parse_address(config.address)
        self._pool: List[socket.socket] = []
        self._pool_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def _dial(self) -> socket.socket:
        sock = socket.create_connection(
            (self._host, self._port), timeout=self.config.connect_timeout_s
        )
        sock.settimeout(self.config.request_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _checkout(self) -> socket.socket:
        with self._pool_lock:
            if self._pool:
                return self._pool.pop()
        return self._dial()

    def _checkin(self, sock: socket.socket) -> None:
        with self._pool_lock:
            if not self._closed and len(self._pool) < self.config.pool_size:
                self._pool.append(sock)
                return
        _close_quietly(sock)

    def request(
        self, header: Dict[str, Any], payload: bytes = b""
    ) -> Tuple[Dict[str, Any], bytes]:
        """One round-trip with bounded retries; raises :class:`RemoteUnavailableError`.

        When the calling thread carries an active trace context, it rides
        along under the frame header's ``"trace"`` key (opaque to old
        servers) and the round-trip records a client-side ``wire.<op>``
        span — observability never changes the op's payload bytes.
        """
        trace = trace_wire_header()
        if trace is not None:
            header = dict(header)
            header.setdefault("trace", trace)
        with span(f"wire.{header.get('op')}", address=self.config.address):
            return self._request_attempts(header, payload)

    def _request_attempts(
        self, header: Dict[str, Any], payload: bytes
    ) -> Tuple[Dict[str, Any], bytes]:
        last_error: Optional[Exception] = None
        for attempt in range(self.config.retries + 1):
            if attempt:
                time.sleep(self.config.backoff_s * (2 ** (attempt - 1)))
            try:
                sock = self._checkout()
            except OSError as error:
                last_error = error
                continue
            try:
                response, blob = protocol.request(sock, header, payload)
            except (OSError, protocol.ProtocolError) as error:
                last_error = error
                _close_quietly(sock)
                continue
            self._checkin(sock)
            if not response.get("ok", False):
                # The server answered but refused the operation — that is an
                # application error, not a transport failure: no retry.
                raise RemoteRefusedError(
                    f"server at {self.config.address} rejected "
                    f"{header.get('op')!r}: {response.get('error', 'unknown error')}"
                )
            return response, blob
        raise RemoteUnavailableError(
            f"no response from {self.config.address} after "
            f"{self.config.retries + 1} attempt(s): {last_error}"
        ) from last_error

    def close(self) -> None:
        """Close every pooled connection; in-flight requests finish ad hoc."""
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for sock in pool:
            _close_quietly(sock)


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass


class RemoteByteStore:
    """The remote cache tier: a byte store served by another process/host.

    Plugs in behind :class:`~repro.runtime.eviction.TieredByteStore` (and
    therefore behind the runtime :class:`~repro.runtime.cache.ResultCache`,
    the serving :class:`~repro.serve.cache.ExplanationCache` and the
    :class:`~repro.serve.store.ModelArtifactStore`).  Every method degrades
    gracefully: a dead or unreachable server makes ``get`` answer ``None``,
    ``put`` answer ``False`` and ``contains`` answer ``False`` — callers keep
    working from their local tiers — and the client backs off for
    ``down_cooldown_s`` before probing the server again.
    """

    def __init__(
        self,
        config: Union[str, RemoteStoreConfig],
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        """Create a store client from an ``"host:port"`` string or a full
        :class:`RemoteStoreConfig`; the first request dials the server."""
        if isinstance(config, str):
            config = RemoteStoreConfig(address=config)
        self.config = config
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._client = WireClient(config, telemetry=self.telemetry)
        self._down_until = 0.0
        # None until probed: does the server know the "index-update" op?
        # (Old servers answer a refusal, remembered here so every later
        # publish skips straight to the read-modify-write fallback.)
        self._index_update_supported: Optional[bool] = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        """The configured ``host:port`` of the remote server."""
        return self.config.address

    @property
    def available(self) -> bool:
        """False while the client sits in its down-cooldown window."""
        return time.monotonic() >= self._down_until

    def _mark_down(self) -> None:
        self.telemetry.increment("remote_errors")
        self._down_until = time.monotonic() + max(0.0, self.config.down_cooldown_s)

    def _request(
        self, header: Dict[str, Any], payload: bytes = b""
    ) -> Optional[Tuple[Dict[str, Any], bytes]]:
        """A round-trip, or ``None`` when the remote is (or goes) down."""
        if not self.available:
            self.telemetry.increment("remote_down_skips")
            return None
        try:
            with self.telemetry.timer("remote_request"):
                return self._client.request(header, payload)
        except RemoteRefusedError:
            # A refusal proves the server is alive: degrade this one
            # operation without disabling the tier for the whole cooldown.
            self.telemetry.increment("remote_refusals")
            return None
        except RemoteUnavailableError:
            self._mark_down()
            return None

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        """The remote blob for ``key``, or ``None`` on miss *or* server-down."""
        response = self._request({"op": "get", "key": key})
        if response is None:
            return None
        header, blob = response
        if header.get("found"):
            self.telemetry.increment("remote_hits")
            return blob
        self.telemetry.increment("remote_misses")
        return None

    def put(self, key: str, blob: bytes) -> bool:
        """Best-effort write-through; ``False`` means the write was dropped
        (server down) — safe because callers keep their local copy."""
        response = self._request({"op": "put", "key": key}, blob)
        if response is None:
            return False
        self.telemetry.increment("remote_puts")
        return True

    def contains(self, key: str) -> bool:
        """True when the server is reachable *and* holds ``key``."""
        response = self._request({"op": "contains", "key": key})
        return bool(response is not None and response[0].get("found"))

    def index_update(self, key: str, add) -> Optional[List[str]]:
        """Atomically union ``add`` names into the JSON list stored at ``key``.

        The merge happens server-side under one lock (the ``index-update``
        op), so two hosts registering concurrently can no longer overwrite
        each other's names with stale read-modify-write puts.  Returns the
        merged, sorted name list — or ``None`` when the server is down *or*
        too old to know the op (a refusal from a live server is remembered
        and does **not** start a down-cooldown); callers fall back to the
        legacy client-side read-modify-write put.
        """
        if self._index_update_supported is False:
            return None
        if not self.available:
            self.telemetry.increment("remote_down_skips")
            return None
        try:
            with self.telemetry.timer("remote_request"):
                header, _ = self._client.request(
                    {"op": "index-update", "key": key, "add": sorted(str(name) for name in add)}
                )
        except RemoteRefusedError:
            self._index_update_supported = False
            return None
        except RemoteUnavailableError:
            self._mark_down()
            return None
        self._index_update_supported = True
        self.telemetry.increment("remote_index_updates")
        return [str(name) for name in header.get("names", ())]

    def stats(self) -> Optional[Dict[str, Any]]:
        """The server's store statistics, or ``None`` when unreachable."""
        response = self._request({"op": "stats"})
        return None if response is None else dict(response[0].get("stats", {}))

    def ping(self) -> bool:
        """Probe the server, clearing the down state on success."""
        self._down_until = 0.0
        return self._request({"op": "ping"}) is not None

    def close(self) -> None:
        """Release the pooled connections (the store object stays usable —
        a later request dials fresh)."""
        self._client.close()

    def __repr__(self) -> str:
        return f"RemoteByteStore({self.config.address!r})"
