"""Reference servers for the fleet wire protocol.

:class:`WireServer` is a tiny threaded TCP server: one daemon thread per
connection, each running a persistent request loop (a client keeps one socket
open for many round-trips — connection setup never sits on the hot path).
Handlers are plain functions ``(header, payload) -> (response_header,
response_payload)`` registered per ``op``; a handler exception is answered as
``{"ok": false, "error": ...}`` instead of tearing the connection down, so a
single bad request never takes a worker's connection with it.

:class:`ByteStoreServer` registers the byte-store operations (``ping`` /
``get`` / ``put`` / ``contains`` / ``stats`` / ``index-update``) over a
:class:`~repro.runtime.eviction.TieredByteStore`, which gives the shared
remote tier the same LRU memory/disk bounds and torn-file-safe persistence as
every local cache.  Start it from the CLI::

    python -m repro byte-store-server --port 7070 --dir /srv/repro-store

The protocol is unauthenticated (see :mod:`repro.dist.protocol`): bind it to
interfaces reachable only by trusted hosts.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from ..obs.exposition import spans_to_json
from ..obs.tracing import Tracer
from ..runtime.eviction import TieredByteStore
from ..telemetry import Telemetry
from . import protocol

#: A request handler: ``(header, payload) -> (response_header, response_payload)``.
Handler = Callable[[Dict[str, Any], bytes], Tuple[Dict[str, Any], bytes]]


class _ConnectionHandler(socketserver.BaseRequestHandler):
    def setup(self) -> None:
        self.server.track(self.request)  # type: ignore[attr-defined]

    def finish(self) -> None:
        self.server.untrack(self.request)  # type: ignore[attr-defined]

    def handle(self) -> None:  # one persistent loop per connection
        server: "_InnerServer" = self.server  # type: ignore[assignment]
        sock: socket.socket = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        while True:
            try:
                header, payload = protocol.recv_message(
                    sock, max_payload_bytes=server.wire.max_payload_bytes
                )
            except (protocol.ProtocolError, OSError):
                return  # client went away (or spoke garbage): drop the connection
            response, blob = server.wire.dispatch(header, payload)
            try:
                protocol.send_message(sock, response, blob)
            except OSError:
                return


class _InnerServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], wire: "WireServer") -> None:
        self.wire = wire
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        super().__init__(address, _ConnectionHandler)

    def track(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.add(sock)

    def untrack(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.discard(sock)

    def close_connections(self) -> None:
        """Drop live connections so ``close()`` means dead to clients too."""
        with self._connections_lock:
            connections = list(self._connections)
        for sock in connections:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass


class WireServer:
    """A threaded TCP server routing protocol frames to registered handlers."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry: Optional[Telemetry] = None,
        process_label: str = "wire-server",
        trace_ring_size: int = 2048,
        max_payload_bytes: Optional[int] = None,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        #: Per-connection receive bound: the server rejects (and drops the
        #: connection of) any frame announcing a larger payload *before*
        #: buffering it.  The protocol is unauthenticated, so this is the
        #: only thing standing between a crafted frame header and a
        #: multi-GiB allocation; raise it only for trusted deployments that
        #: genuinely ship larger blobs.
        self.max_payload_bytes = (
            protocol.DEFAULT_SERVER_MAX_PAYLOAD_BYTES
            if max_payload_bytes is None
            else int(max_payload_bytes)
        )
        # Server-side spans only ever *adopt* contexts carried in frame
        # headers (the sampling decision was made at the requesting edge),
        # so the tracer's own sample rate stays 0.
        self.tracer = Tracer(sample_rate=0.0, ring_size=trace_ring_size, process=process_label)
        self._handlers: Dict[str, Handler] = {}
        self._server = _InnerServer((host, port), self)
        self._thread: Optional[threading.Thread] = None
        self.register("ping", lambda header, payload: ({"ok": True}, b""))
        self.register("trace-dump", self._handle_trace_dump)
        self.register("metrics", self._handle_metrics)

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        return protocol.format_address(self.host, self.port)

    def register(self, op: str, handler: Handler) -> None:
        self._handlers[op] = handler

    def dispatch(self, header: Dict[str, Any], payload: bytes) -> Tuple[Dict[str, Any], bytes]:
        op = header.get("op")
        handler = self._handlers.get(op)
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}, b""
        self.telemetry.increment(f"server_op_{op}")
        # Adopt a trace context riding the frame header (one dict lookup for
        # the untraced hot path); the server-side span parents to the
        # client's in-flight wire span.
        trace = self.tracer.adopt(header.get("trace"))
        started = time.perf_counter() if trace is not None else 0.0
        wall_started = time.time() if trace is not None else 0.0
        try:
            return handler(header, payload)
        except Exception as error:  # answer, don't tear down the connection
            self.telemetry.increment("server_handler_errors")
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}, b""
        finally:
            if trace is not None:
                self.tracer.record(
                    trace, f"server.{op}", wall_started, time.perf_counter() - started
                )

    def _handle_trace_dump(self, header: Dict[str, Any], payload: bytes) -> Tuple[Dict[str, Any], bytes]:
        """Export the server-side span ring (``python -m repro trace-dump --connect``)."""
        return {"ok": True, "spans": spans_to_json(self.tracer.ring.spans())}, b""

    def _handle_metrics(self, header: Dict[str, Any], payload: bytes) -> Tuple[Dict[str, Any], bytes]:
        """The server process's registry snapshot + histogram summaries."""
        return {
            "ok": True,
            "metrics": self.telemetry.snapshot(),
            "histograms": self.telemetry.histogram_summaries(),
        }, b""

    # ------------------------------------------------------------------
    def start(self) -> "WireServer":
        """Serve in a daemon thread; returns ``self`` for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"wire-server-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI server verbs block here)."""
        self._server.serve_forever(poll_interval=0.05)

    def close(self) -> None:
        self._server.shutdown()
        self._server.close_connections()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class ByteStoreServer:
    """The byte-store ops served over a local :class:`TieredByteStore`.

    One instance serialises nothing globally — the underlying memory tier is
    already thread-safe and disk writes are write-then-rename — so concurrent
    clients (a whole worker fleet plus serving hosts) stream blobs in
    parallel.  Keys are content-addressed by the callers, which is what makes
    last-write-wins safe: two writers racing on one key are writing identical
    bytes.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        directory: Optional[str] = None,
        max_memory_bytes: Optional[int] = None,
        max_disk_bytes: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        max_payload_bytes: Optional[int] = None,
    ) -> None:
        self.store = TieredByteStore(
            directory=directory,
            suffix=".blob",
            max_memory_bytes=max_memory_bytes,
            max_disk_bytes=max_disk_bytes,
        )
        self.wire = WireServer(
            host=host,
            port=port,
            telemetry=telemetry,
            process_label="byte-store",
            max_payload_bytes=max_payload_bytes,
        )
        self.wire.register("get", self._handle_get)
        self.wire.register("put", self._handle_put)
        self.wire.register("contains", self._handle_contains)
        self.wire.register("stats", self._handle_stats)
        self.wire.register("index-update", self._handle_index_update)
        self._served_hits = 0
        self._served_misses = 0
        self._served_puts = 0
        self._stats_lock = threading.Lock()
        # index-update is the one op that genuinely read-modify-writes a
        # shared key; everything else stays lock-free (content-addressed
        # last-write-wins — see the class docstring).
        self._index_lock = threading.Lock()

    # ------------------------------------------------------------------
    @staticmethod
    def _key(header: Dict[str, Any]) -> str:
        key = header.get("key")
        if not isinstance(key, str) or not key or "/" in key or "\\" in key or ".." in key:
            raise ValueError(f"invalid store key {key!r}")
        return key

    def _handle_get(self, header: Dict[str, Any], payload: bytes) -> Tuple[Dict[str, Any], bytes]:
        blob = self.store.get(self._key(header))
        with self._stats_lock:
            if blob is None:
                self._served_misses += 1
            else:
                self._served_hits += 1
        if blob is None:
            return {"ok": True, "found": False}, b""
        return {"ok": True, "found": True}, blob

    def _handle_put(self, header: Dict[str, Any], payload: bytes) -> Tuple[Dict[str, Any], bytes]:
        self.store.put(self._key(header), payload)
        with self._stats_lock:
            self._served_puts += 1
        return {"ok": True, "stored": len(payload)}, b""

    def _handle_contains(
        self, header: Dict[str, Any], payload: bytes
    ) -> Tuple[Dict[str, Any], bytes]:
        return {"ok": True, "found": self._key(header) in self.store}, b""

    def _handle_index_update(
        self, header: Dict[str, Any], payload: bytes
    ) -> Tuple[Dict[str, Any], bytes]:
        """Atomic server-side union into the JSON name list stored at ``key``.

        Closes the artifact-store race: two hosts registering concurrently
        used to read-modify-write the index from the client side, so the
        slower writer could erase the faster one's name until its next
        publish.  The server merges under one lock instead; a corrupt or
        missing index is rebuilt from the submitted names.
        """
        key = self._key(header)
        add = header.get("add")
        if not isinstance(add, list) or not all(isinstance(name, str) for name in add):
            raise ValueError("index-update requires 'add': a list of name strings")
        with self._index_lock:
            blob = self.store.get(key)
            names = set()
            if blob is not None:
                try:
                    decoded = json.loads(blob.decode("utf-8"))
                    names = {str(name) for name in decoded} if isinstance(decoded, list) else set()
                except (ValueError, UnicodeDecodeError):
                    names = set()
            names.update(add)
            merged = sorted(names)
            self.store.put(key, json.dumps(merged).encode("utf-8"))
        return {"ok": True, "names": merged}, b""

    def _handle_stats(self, header: Dict[str, Any], payload: bytes) -> Tuple[Dict[str, Any], bytes]:
        with self._stats_lock:
            stats = {
                "entries": len(self.store),
                "memory_bytes": self.store.memory.total_bytes,
                "evictions": self.store.evictions,
                "hits": self._served_hits,
                "misses": self._served_misses,
                "puts": self._served_puts,
            }
        return {"ok": True, "stats": stats}, b""

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return self.wire.address

    def start(self) -> "ByteStoreServer":
        self.wire.start()
        return self

    def serve_forever(self) -> None:
        self.wire.serve_forever()

    def close(self) -> None:
        self.wire.close()
