"""Fleet coordination: a work-unit queue served over the wire protocol.

:class:`FleetCoordinator` is the in-memory queue — pending unit deque, active
leases with heartbeat deadlines, completed result blobs — and
:class:`FleetExecutor` embeds one (plus a :class:`~repro.dist.server.WireServer`
publishing the ``fleet-*`` operations) to implement the runtime
:class:`~repro.runtime.executor.Executor` protocol across machines:
``python -m repro worker --connect host:port`` processes lease units, execute
them and post results back, while the executor's ``imap`` yields them in
submission order exactly like the serial and process-pool executors.

Failure semantics — the part that makes a fleet usable:

* a worker that *reports* an exception fails the unit; the coordinator
  re-queues it up to ``max_attempts`` times and only then surfaces the error
  to the caller (as the same exception type semantics as local execution:
  ``imap`` raises);
* a worker that *dies silently* (killed, OOM, network partition) simply stops
  heartbeating; when its lease deadline passes, the unit is re-queued for the
  next lease request.  Nothing is lost — at-least-once delivery — and because
  units are deterministic and results content-addressed, re-execution is
  idempotent;
* results are delivered as the worker's pickle bytes; when the worker served
  a unit from the shared cache it forwards the cached blob verbatim, so a
  warm fleet run is byte-identical to a warm local run.
"""

from __future__ import annotations

import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from ..obs.exposition import spans_to_json
from ..obs.metrics import Histogram
from ..obs.tracing import Span, SpanRing, TraceContext, current
from ..runtime.spec import WorkUnit, unit_fingerprint
from ..telemetry import Telemetry
from .server import WireServer


@dataclass
class FleetConfig:
    """Knobs of the coordinator embedded in a :class:`FleetExecutor`."""

    #: Interface the coordinator listens on (workers connect here).
    host: str = "127.0.0.1"
    #: Port to bind; 0 picks an ephemeral port (printed by the CLI).
    port: int = 0
    #: Seconds a leased unit may go without a heartbeat before it is
    #: considered abandoned and re-queued for another worker.
    lease_timeout_s: float = 10.0
    #: Times one unit may be attempted (initial execution + re-queues after
    #: worker-reported failures or silent deaths) before the run fails.
    max_attempts: int = 3
    #: Largest frame payload the coordinator's wire server will buffer
    #: (``None``: :data:`repro.dist.protocol.DEFAULT_SERVER_MAX_PAYLOAD_BYTES`).
    #: Raise it only when unit results genuinely exceed the default.
    max_payload_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.max_payload_bytes is not None and self.max_payload_bytes <= 0:
            raise ValueError("max_payload_bytes must be positive")


class UnitFailedError(RuntimeError):
    """A unit exhausted its attempts; carries the last worker-side error."""


@dataclass
class _UnitState:
    blob: bytes  # pickled (fn, payload)
    fingerprint: Optional[str]
    attempts: int = 0
    result_blob: Optional[bytes] = None
    from_cache: bool = False
    error: Optional[str] = None
    done: bool = False
    #: Monotonic clock at the latest lease; feeds the ``fleet_unit``
    #: lease-to-complete latency histogram on completion.
    leased_at: Optional[float] = None
    #: Trace context captured at submit time (the executor's calling
    #: thread); carried to the worker in the lease header and used to
    #: parent a ``fleet.unit`` span when the result lands.
    trace: Optional[TraceContext] = None


class FleetCoordinator:
    """The queue itself: thread-safe lease/complete/fail/heartbeat state."""

    def __init__(self, config: FleetConfig, telemetry: Optional[Telemetry] = None) -> None:
        """Create an empty queue governed by ``config``'s lease/retry knobs.

        ``telemetry`` receives the ``fleet_*`` counters (submitted, leased,
        completed, deduped, failed, expired); a private registry is created
        when omitted.
        """
        self.config = config
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._lock = threading.Condition()
        self._units: Dict[int, _UnitState] = {}
        self._pending: Deque[int] = deque()
        self._leases: Dict[int, Tuple[str, float]] = {}  # unit id -> (worker, deadline)
        self._next_id = 0
        self._draining = False
        self.workers_seen: set = set()
        # Fleet-wide observability aggregated from worker heartbeats: spans
        # drained out of worker rings land here, and each worker's latest
        # cumulative metric/histogram snapshot is kept whole (latest-wins —
        # merging cumulative snapshots per beat would double-count).
        self.span_ring = SpanRing(2048)
        self._worker_reports: Dict[str, Dict[str, Any]] = {}

    # -- executor side -------------------------------------------------
    def submit(self, blob: bytes, fingerprint: Optional[str] = None) -> int:
        """Enqueue one pickled ``(fn, payload)``; returns its unit id."""
        with self._lock:
            unit_id = self._next_id
            self._next_id += 1
            self._units[unit_id] = _UnitState(blob=blob, fingerprint=fingerprint, trace=current())
            self._pending.append(unit_id)
            self.telemetry.increment("fleet_units_submitted")
            self._lock.notify_all()
        return unit_id

    def wait(self, unit_id: int, timeout_s: Optional[float] = None) -> _UnitState:
        """Block until ``unit_id`` finishes (or fails); re-queues dead leases."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._lock:
            while True:
                state = self._units[unit_id]
                if state.done:
                    return state
                self._expire_leases_locked()
                remaining = 0.25
                if deadline is not None:
                    remaining = min(remaining, deadline - time.monotonic())
                    if remaining <= 0:
                        raise TimeoutError(f"unit {unit_id} not finished after {timeout_s}s")
                # Wake at least every 250ms so lease expiry runs even when no
                # worker traffic arrives (e.g. the only worker just died).
                self._lock.wait(timeout=remaining)

    def drain(self) -> None:
        """Tell pollers the run is over: subsequent leases answer ``shutdown``."""
        with self._lock:
            self._draining = True
            self._lock.notify_all()

    # -- worker side ---------------------------------------------------
    def lease(self, worker: str) -> Tuple[Optional[int], Optional[_UnitState], bool]:
        """``(unit_id, state, shutdown)`` — unit id ``None`` when queue is empty."""
        with self._lock:
            self.workers_seen.add(worker)
            self._expire_leases_locked()
            if not self._pending:
                return None, None, self._draining
            unit_id = self._pending.popleft()
            state = self._units[unit_id]
            state.attempts += 1
            state.leased_at = time.monotonic()
            self._leases[unit_id] = (worker, time.monotonic() + self.config.lease_timeout_s)
            self.telemetry.increment("fleet_units_leased")
            return unit_id, state, False

    def complete(self, unit_id: int, result_blob: bytes, from_cache: bool = False) -> None:
        """Record a worker's result for ``unit_id`` and release its lease.

        ``from_cache`` marks a unit the worker answered from the shared
        result cache (counted as ``fleet_units_deduped``).  A late delivery
        for a unit that already finished — e.g. a presumed-dead worker's
        answer arriving after the expiry re-run completed — is ignored.
        """
        with self._lock:
            state = self._units.get(unit_id)
            if state is None or state.done:
                return  # late delivery after an expiry re-run finished first
            state.result_blob = result_blob
            state.from_cache = from_cache
            state.done = True
            self._leases.pop(unit_id, None)
            self.telemetry.increment("fleet_units_completed")
            if from_cache:
                self.telemetry.increment("fleet_units_deduped")
            if state.leased_at is not None:
                lease_to_complete = max(0.0, time.monotonic() - state.leased_at)
            else:
                lease_to_complete = None
            trace = state.trace
            self._lock.notify_all()
        # Record observability outside the queue lock: nothing below touches
        # queue state, and result bytes are already delivered unchanged.
        if lease_to_complete is not None:
            self.telemetry.timer("fleet_unit").add(lease_to_complete)
            if trace is not None:
                trace.tracer.record(
                    trace,
                    "fleet.unit",
                    time.time() - lease_to_complete,
                    lease_to_complete,
                    attrs={"unit": unit_id, "cached": from_cache},
                )

    def fail(self, unit_id: int, error: str) -> None:
        """Record a worker-reported failure of ``unit_id``.

        The unit is re-queued for another attempt while its budget lasts;
        once ``max_attempts`` is exhausted it is marked done with ``error``
        set, which makes the waiting executor raise :class:`UnitFailedError`.
        """
        with self._lock:
            state = self._units.get(unit_id)
            if state is None or state.done:
                return
            self._leases.pop(unit_id, None)
            self.telemetry.increment("fleet_units_failed")
            if state.attempts >= self.config.max_attempts:
                state.error = error
                state.done = True
            else:
                self._pending.append(unit_id)
            self._lock.notify_all()

    def heartbeat(self, worker: str) -> int:
        """Extend every lease ``worker`` holds; returns how many it holds."""
        with self._lock:
            held = 0
            deadline = time.monotonic() + self.config.lease_timeout_s
            for unit_id, (owner, _) in list(self._leases.items()):
                if owner == worker:
                    self._leases[unit_id] = (owner, deadline)
                    held += 1
            return held

    # -- fleet-wide observability --------------------------------------
    def ingest_report(self, worker: str, report: Dict[str, Any]) -> None:
        """Fold a worker's heartbeat-carried observability into the aggregate.

        ``report`` may carry ``spans`` (drained from the worker's ring —
        appended to the coordinator-side ring) and ``metrics`` /
        ``histograms`` (the worker's *cumulative* registry snapshots — kept
        whole per worker, latest-wins, because folding cumulative counters
        on every beat would double-count).  Old workers send none of these
        keys; unknown keys are simply absent.
        """
        spans = report.get("spans")
        if isinstance(spans, list):
            for payload in spans:
                try:
                    self.span_ring.record(Span.from_dict(payload))
                except (KeyError, TypeError, ValueError):
                    continue  # a malformed span is dropped, never fatal
        metrics = report.get("metrics")
        histograms = report.get("histograms")
        if isinstance(metrics, dict) or isinstance(histograms, dict):
            with self._lock:
                self._worker_reports[worker] = {
                    "metrics": dict(metrics) if isinstance(metrics, dict) else {},
                    "histograms": dict(histograms) if isinstance(histograms, dict) else {},
                }

    def fleet_metrics(self) -> Dict[str, Any]:
        """Fleet-wide view: summed worker counters + merged histograms.

        Built fresh from each worker's latest cumulative snapshot, so the
        result is consistent however often workers heartbeat.  Returns
        ``{"workers": [...], "metrics": {...}, "histograms": {name:
        summary}}``.
        """
        with self._lock:
            reports = {worker: report for worker, report in self._worker_reports.items()}
        summed: Dict[str, float] = {}
        merged: Dict[str, Histogram] = {}
        for report in reports.values():
            for name, value in report["metrics"].items():
                if isinstance(value, (int, float)):
                    summed[name] = summed.get(name, 0) + value
            for name, payload in report["histograms"].items():
                if isinstance(payload, dict):
                    histogram = merged.get(name)
                    if histogram is None:
                        histogram = merged[name] = Histogram(name)
                    histogram.merge_dict(payload)
        return {
            "workers": sorted(reports),
            "metrics": summed,
            "histograms": {name: histogram.summary() for name, histogram in merged.items()},
        }

    # ------------------------------------------------------------------
    def _expire_leases_locked(self) -> None:
        now = time.monotonic()
        for unit_id, (worker, deadline) in list(self._leases.items()):
            if deadline >= now:
                continue
            del self._leases[unit_id]
            state = self._units[unit_id]
            self.telemetry.increment("fleet_leases_expired")
            if state.attempts >= self.config.max_attempts:
                state.error = f"worker {worker!r} stopped heartbeating and attempts are exhausted"
                state.done = True
            else:
                self._pending.appendleft(unit_id)  # dead-worker units jump the queue
            self._lock.notify_all()


class FleetExecutor:
    """Multi-host :class:`~repro.runtime.executor.Executor` over a worker fleet.

    Embeds the coordinator and its wire server in-process — only workers
    speak TCP; the executor reads coordinator state directly.  Payloads of
    the shape ``(scale, WorkUnit)`` (what :func:`repro.runtime.run` ships)
    are fingerprinted so workers can serve them straight from the shared
    :class:`~repro.runtime.cache.ResultCache` without executing anything.
    """

    def __init__(
        self,
        config: Optional[FleetConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        """Start the embedded coordinator and its wire server immediately.

        The bound address (``config.port`` 0 picks an ephemeral port) is
        available as :attr:`address` right after construction — hand it to
        ``python -m repro worker --connect``.
        """
        self.config = config if config is not None else FleetConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.coordinator = FleetCoordinator(self.config, telemetry=self.telemetry)
        self.server = WireServer(
            host=self.config.host,
            port=self.config.port,
            telemetry=self.telemetry,
            process_label="fleet-coordinator",
            max_payload_bytes=self.config.max_payload_bytes,
        )
        self._register_ops()
        self.server.start()

    # ------------------------------------------------------------------
    def _register_ops(self) -> None:
        coordinator = self.coordinator

        def handle_lease(header: Dict[str, Any], payload: bytes):
            worker = str(header.get("worker", "?"))
            unit_id, state, shutdown = coordinator.lease(worker)
            if unit_id is None:
                return {"ok": True, "unit": None, "shutdown": shutdown}, b""
            response = {
                "ok": True,
                "unit": unit_id,
                "fingerprint": state.fingerprint,
                "attempt": state.attempts,
            }
            if state.trace is not None:
                # Hand the submitter's trace context to the worker so its
                # unit-execution spans join the same trace (old workers
                # ignore the key).
                response["trace"] = state.trace.wire()
            return response, state.blob

        def handle_complete(header: Dict[str, Any], payload: bytes):
            worker = str(header.get("worker", "?"))
            # Ingest before completing: complete() wakes the submitter, so
            # the spans riding this frame must already be in the ring when
            # it resumes and inspects the trace.
            coordinator.ingest_report(worker, header)
            coordinator.complete(
                int(header["unit"]), payload, from_cache=bool(header.get("cached"))
            )
            return {"ok": True}, b""

        def handle_fail(header: Dict[str, Any], payload: bytes):
            coordinator.fail(int(header["unit"]), str(header.get("error", "unknown error")))
            return {"ok": True}, b""

        def handle_heartbeat(header: Dict[str, Any], payload: bytes):
            worker = str(header.get("worker", "?"))
            held = coordinator.heartbeat(worker)
            coordinator.ingest_report(worker, header)
            return {"ok": True, "held": held}, b""

        def handle_trace_dump(header: Dict[str, Any], payload: bytes):
            # The coordinator's dump covers both its own server-side spans
            # and the worker spans aggregated from heartbeats.
            spans = spans_to_json(self.server.tracer.ring.spans())
            spans.extend(spans_to_json(coordinator.span_ring.spans()))
            return {"ok": True, "spans": spans}, b""

        self.server.register("fleet-lease", handle_lease)
        self.server.register("fleet-complete", handle_complete)
        self.server.register("fleet-fail", handle_fail)
        self.server.register("fleet-heartbeat", handle_heartbeat)
        self.server.register("trace-dump", handle_trace_dump)

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        """``host:port`` the coordinator's wire server is listening on."""
        return self.server.address

    @property
    def label(self) -> str:
        """Human-readable executor label (shown by the CLI run banner)."""
        return f"fleet[{self.address}]"

    @staticmethod
    def _fingerprint(payload: Any) -> Optional[str]:
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and isinstance(payload[1], WorkUnit)
        ):
            return unit_fingerprint(payload[0], payload[1])
        return None

    def imap(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> Iterator[Any]:
        """Ordered lazy results, yielded as the fleet completes them in order."""
        unit_ids = [
            self.coordinator.submit(
                pickle.dumps((fn, payload), protocol=pickle.HIGHEST_PROTOCOL),
                fingerprint=self._fingerprint(payload),
            )
            for payload in payloads
        ]
        for unit_id in unit_ids:
            state = self.coordinator.wait(unit_id)
            if state.error is not None:
                raise UnitFailedError(
                    f"fleet unit {unit_id} failed after {state.attempts} attempt(s): {state.error}"
                )
            yield pickle.loads(state.result_blob)

    def map(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> List[Any]:
        """Eager :meth:`imap`: all results in submission order."""
        return list(self.imap(fn, payloads))

    def fleet_metrics(self) -> Dict[str, Any]:
        """Fleet-wide worker counters/histograms (see coordinator docs)."""
        return self.coordinator.fleet_metrics()

    def trace_spans(self) -> List[Span]:
        """Worker spans aggregated from heartbeats, oldest first."""
        return self.coordinator.span_ring.spans()

    def close(self) -> None:
        """Signal workers to shut down and stop the wire server."""
        self.coordinator.drain()
        self.server.close()

    def __enter__(self) -> "FleetExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"FleetExecutor(address={self.address!r})"
