"""The fleet wire protocol: length-prefixed framed messages over TCP.

Every message — byte-store requests, coordinator queue operations and their
responses — travels as one *frame*:

.. code-block:: text

    +-------+------------+-------------+-----------+--------------+---------+
    | magic | header len | payload len | crc32     | header JSON  | payload |
    | 2 B   | uint32 BE  | uint64 BE   | uint32 BE | (UTF-8)      | (bytes) |
    +-------+------------+-------------+-----------+--------------+---------+

The header is a small JSON object (``{"op": "get", "key": "..."}``); the
payload carries the raw bytes of a blob or a pickled work unit.  Keeping the
two separate means blobs are never base64-inflated and the server can route
on the header without touching the payload.  The CRC-32 of the payload is
verified on receipt, so a torn read (a peer dying mid-write, a proxy
truncating the stream) surfaces as a :class:`ProtocolError` instead of a
silently corrupt blob.

Both sides enforce hard size bounds (:data:`MAX_HEADER_BYTES`,
:data:`MAX_PAYLOAD_BYTES`): a malformed or hostile peer cannot make the
receiver allocate unbounded memory.  :data:`MAX_PAYLOAD_BYTES` is the frame
*format's* ceiling; because :func:`recv_message` buffers the whole payload in
memory, anything accepting connections should pass a much smaller
``max_payload_bytes`` sized to its real traffic —
:class:`~repro.dist.server.WireServer` defaults to
:data:`DEFAULT_SERVER_MAX_PAYLOAD_BYTES` so one crafted frame header cannot
demand a multi-GiB allocation per connection.

Security model: the protocol authenticates nothing and the fleet layer
exchanges *pickles* (executable on unpickle) — run servers and workers only
on networks where every peer is trusted, exactly like a process pool.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Any, Dict, Tuple

#: Frame preamble: magic, header length, payload length, payload CRC-32.
_PREFIX = struct.Struct("!2sIQI")
MAGIC = b"rD"

#: Hard bound on the JSON header of one frame.
MAX_HEADER_BYTES = 1 << 20
#: Hard bound the frame format supports for one binary payload (result
#: pickles, weights).  Receivers should usually enforce something far lower —
#: see :data:`DEFAULT_SERVER_MAX_PAYLOAD_BYTES`.
MAX_PAYLOAD_BYTES = 1 << 32
#: Default receive bound for server roles (byte-store, coordinator): large
#: enough for model-weight blobs and result pickles, small enough that an
#: untrusted peer cannot demand gigabytes per connection.
DEFAULT_SERVER_MAX_PAYLOAD_BYTES = 256 << 20


class ProtocolError(RuntimeError):
    """The peer sent bytes that are not a valid protocol frame."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (possibly mid-frame)."""


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; a bare ``":port"`` means localhost."""
    host, sep, port = address.rpartition(":")
    if not sep or not port:
        raise ValueError(f"address must look like 'host:port', got {address!r}")
    return (host or "127.0.0.1", int(port))


def format_address(host: str, port: int) -> str:
    return f"{host}:{port}"


def send_message(sock: socket.socket, header: Dict[str, Any], payload: bytes = b"") -> None:
    """Send one frame (header dict + payload bytes) over ``sock``."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header of {len(header_bytes)} bytes exceeds the protocol bound")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"payload of {len(payload)} bytes exceeds the protocol bound")
    prefix = _PREFIX.pack(MAGIC, len(header_bytes), len(payload), zlib.crc32(payload))
    sock.sendall(prefix + header_bytes + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ConnectionClosed`."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(f"connection closed with {remaining} of {n} bytes unread")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(
    sock: socket.socket, max_payload_bytes: int = MAX_PAYLOAD_BYTES
) -> Tuple[Dict[str, Any], bytes]:
    """Receive one frame; raises :class:`ProtocolError` on anything malformed.

    ``max_payload_bytes`` caps what this receiver will buffer — the check
    runs before any payload allocation, so an oversized length in a crafted
    frame header costs nothing but the dropped connection.
    """
    magic, header_len, payload_len, crc = _PREFIX.unpack(_recv_exact(sock, _PREFIX.size))
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"header length {header_len} exceeds the protocol bound")
    if payload_len > min(max_payload_bytes, MAX_PAYLOAD_BYTES):
        raise ProtocolError(
            f"payload length {payload_len} exceeds this receiver's bound "
            f"({min(max_payload_bytes, MAX_PAYLOAD_BYTES)} bytes)"
        )
    try:
        header = json.loads(_recv_exact(sock, header_len).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame header is not valid JSON: {error}") from error
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    payload = _recv_exact(sock, payload_len)
    if zlib.crc32(payload) != crc:
        raise ProtocolError("payload checksum mismatch (torn or corrupted frame)")
    return header, payload


def request(
    sock: socket.socket, header: Dict[str, Any], payload: bytes = b""
) -> Tuple[Dict[str, Any], bytes]:
    """One round-trip: send a frame, receive the response frame."""
    send_message(sock, header, payload)
    return recv_message(sock)
