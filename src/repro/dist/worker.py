"""The fleet worker loop behind ``python -m repro worker --connect host:port``.

A worker is a plain process that leases pickled ``(fn, payload)`` units from
a :class:`~repro.dist.coordinator.FleetCoordinator`, executes them and posts
the pickled result back.  Two behaviours make a fleet of them efficient and
survivable:

* **dedupe against the shared cache** — when a unit carries a content-address
  fingerprint and the worker holds a :class:`~repro.runtime.cache.ResultCache`
  (typically local disk backed by the shared remote tier), a cache hit is
  answered with the stored blob verbatim (``cached=True``) and nothing is
  executed; a miss stores the freshly computed blob *before* replying, so the
  whole fleet — and later serving hosts — reuse it;
* **heartbeats** — a daemon thread heartbeats the coordinator while the
  worker lives; a worker that dies mid-unit simply stops, its lease expires
  and the coordinator re-queues the unit for a peer.

The loop exits when the coordinator drains (the executor closed), when the
coordinator becomes unreachable, or after ``max_idle_s`` without work.
"""

from __future__ import annotations

import importlib
import os
import pickle
import socket
import threading
import time
import traceback
from typing import Iterable, Optional

from ..obs.tracing import Tracer, activate, span
from ..runtime.cache import ResultCache
from ..telemetry import Telemetry
from .client import RemoteStoreConfig, RemoteUnavailableError, WireClient


def import_providers(modules: Iterable[str]) -> None:
    """Import modules whose side effect registers work kinds on the worker."""
    for module in modules:
        importlib.import_module(module)


def default_worker_id() -> str:
    """The ``hostname-pid`` lease/heartbeat identity used when none is given."""
    return f"{socket.gethostname()}-{os.getpid()}"


class _Heartbeat(threading.Thread):
    """Daemon thread renewing this worker's leases every ``interval_s``.

    Each beat doubles as the worker's observability uplink: spans drained
    from the worker's ring plus its cumulative metric/histogram snapshots
    ride the heartbeat header (old coordinators ignore the extra keys), so
    the coordinator aggregates fleet-wide latency without any extra op.
    """

    def __init__(
        self,
        client: WireClient,
        worker_id: str,
        interval_s: float,
        telemetry: Optional[Telemetry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(name=f"fleet-heartbeat-{worker_id}", daemon=True)
        self._client = client
        self._worker_id = worker_id
        self._interval_s = interval_s
        self._telemetry = telemetry
        self._tracer = tracer
        self._stop = threading.Event()

    def _report_header(self) -> dict:
        header = {"op": "fleet-heartbeat", "worker": self._worker_id}
        if self._tracer is not None and len(self._tracer.ring):
            header["spans"] = [s.to_dict() for s in self._tracer.ring.drain(256)]
        if self._telemetry is not None:
            header["metrics"] = self._telemetry.snapshot()
            header["histograms"] = self._telemetry.histogram_dump()
        return header

    def run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                self._client.request(self._report_header())
            except RemoteUnavailableError:
                return  # coordinator gone; the main loop notices on its next op

    def stop(self) -> None:
        self._stop.set()


def run_worker(
    connect: str,
    cache: Optional[ResultCache] = None,
    providers: Iterable[str] = (),
    worker_id: Optional[str] = None,
    poll_interval_s: float = 0.2,
    heartbeat_interval_s: float = 2.0,
    max_idle_s: Optional[float] = None,
    max_units: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    tracer: Optional[Tracer] = None,
) -> int:
    """Lease-execute-report until the coordinator drains; returns units done.

    Parameters
    ----------
    connect:
        ``host:port`` of the coordinator (printed by ``repro run --executor
        fleet``).
    cache:
        Optional shared :class:`ResultCache`; fingerprinted units are served
        from it (dedupe) and freshly computed results stored into it.
    providers:
        Module names imported before the loop starts, so work kinds
        registered outside the core package resolve on this worker.
    worker_id:
        Identity used for leases/heartbeats; defaults to ``hostname-pid``.
    poll_interval_s / heartbeat_interval_s:
        Idle re-poll delay and heartbeat period.  Keep the heartbeat well
        under the coordinator's ``lease_timeout_s``.
    max_idle_s:
        Exit after this long without being handed a unit (``None``: wait for
        the coordinator to drain or disappear).
    max_units:
        Exit after completing this many units (test/bench hook).
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer` recording this worker's
        spans (a private one is created when omitted).  Units whose lease
        header carries a trace context execute under it, and finished spans
        ship to the coordinator in heartbeat/complete headers.
    """
    import_providers(providers)
    telemetry = telemetry if telemetry is not None else Telemetry()
    worker_id = worker_id or default_worker_id()
    if tracer is None:
        tracer = Tracer(sample_rate=0.0, process=f"worker:{worker_id}")
    # A worker's lease poll must out-survive transient coordinator pauses but
    # fail fast when it is truly gone; modest timeouts + retries do both.
    client = WireClient(
        RemoteStoreConfig(address=connect, connect_timeout_s=2.0, retries=2),
        telemetry=telemetry,
    )
    heartbeat = _Heartbeat(client, worker_id, heartbeat_interval_s, telemetry=telemetry, tracer=tracer)
    heartbeat.start()
    completed = 0
    idle_since: Optional[float] = None
    try:
        while True:
            try:
                header, blob = client.request({"op": "fleet-lease", "worker": worker_id})
            except RemoteUnavailableError:
                break  # coordinator gone
            if header.get("unit") is None:
                if header.get("shutdown"):
                    break
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if max_idle_s is not None and now - idle_since >= max_idle_s:
                    break
                time.sleep(poll_interval_s)
                continue
            idle_since = None
            unit_id = int(header["unit"])
            fingerprint = header.get("fingerprint")
            # Execute under the trace context that rode the lease header (if
            # any): the unit's span joins the submitter's trace.  The result
            # bytes are untouched either way.
            trace = tracer.adopt(header.get("trace"))
            try:
                with telemetry.timer("worker_unit"):
                    with activate(trace):
                        with span("worker.unit", unit=unit_id):
                            result_blob, from_cache = _evaluate(blob, fingerprint, cache)
            except Exception:
                telemetry.increment("worker_units_failed")
                try:
                    client.request(
                        {
                            "op": "fleet-fail",
                            "worker": worker_id,
                            "unit": unit_id,
                            "error": traceback.format_exc(limit=20),
                        }
                    )
                except RemoteUnavailableError:
                    break
                continue
            complete_header = {
                "op": "fleet-complete",
                "worker": worker_id,
                "unit": unit_id,
                "cached": from_cache,
            }
            if len(tracer.ring):
                # Ship finished spans with the result instead of waiting for
                # the next heartbeat — short-lived workers still report.
                complete_header["spans"] = [s.to_dict() for s in tracer.ring.drain(256)]
            try:
                client.request(complete_header, result_blob)
            except RemoteUnavailableError:
                break
            completed += 1
            telemetry.increment("worker_units_done")
            if from_cache:
                telemetry.increment("worker_units_deduped")
            if max_units is not None and completed >= max_units:
                break
    finally:
        heartbeat.stop()
        client.close()
    return completed


def _evaluate(blob: bytes, fingerprint: Optional[str], cache: Optional[ResultCache]):
    """``(result_blob, from_cache)`` for one leased unit."""
    if fingerprint and cache is not None:
        cached = cache.get_blob(fingerprint)
        if cached is not None:
            return cached, True
    fn, payload = pickle.loads(blob)
    result = fn(payload)
    if fingerprint and cache is not None:
        return cache.store(fingerprint, result), False
    return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL), False
