"""Classification architectures evaluated in the paper."""

from .base import BaseClassifier, TrainingConfig, TrainingHistory
from .cnn import CCNNClassifier, CNNClassifier, DCNNClassifier, PAPER_CNN_FILTERS
from .conv_common import ConvBackboneClassifier
from .inception import (
    CInceptionTimeClassifier,
    DInceptionTimeClassifier,
    InceptionTimeClassifier,
)
from .mtex import MTEXCNNClassifier
from .recurrent import GRUClassifier, LSTMClassifier, RNNClassifier
from .registry import (
    BASELINE_MODELS,
    C_BASELINE_MODELS,
    CUBE_MODELS,
    D_MODELS,
    MODEL_REGISTRY,
    available_models,
    create_model,
)
from .resnet import CResNetClassifier, DResNetClassifier, ResNetClassifier

__all__ = [
    "BaseClassifier",
    "TrainingConfig",
    "TrainingHistory",
    "ConvBackboneClassifier",
    "CNNClassifier",
    "CCNNClassifier",
    "DCNNClassifier",
    "PAPER_CNN_FILTERS",
    "ResNetClassifier",
    "CResNetClassifier",
    "DResNetClassifier",
    "InceptionTimeClassifier",
    "CInceptionTimeClassifier",
    "DInceptionTimeClassifier",
    "MTEXCNNClassifier",
    "RNNClassifier",
    "LSTMClassifier",
    "GRUClassifier",
    "MODEL_REGISTRY",
    "BASELINE_MODELS",
    "C_BASELINE_MODELS",
    "D_MODELS",
    "CUBE_MODELS",
    "available_models",
    "create_model",
]
