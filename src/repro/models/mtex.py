"""MTEX-CNN baseline (Assaf et al., ICDM 2019) — Section 2.3 of the paper.

MTEX-CNN is a two-block architecture designed to explain multivariate series:

* **Block 1** applies 2D convolutions with ``(1, ℓ)`` kernels, treating each
  dimension independently (exactly like cCNN).  Its last feature maps are
  explained with grad-CAM to attribute importance per dimension and time.
* **Block 2** collapses the dimension axis with a ``(D, 1)`` convolution and
  continues with 1D convolutions over time, enabling (limited) comparison of
  dimensions; its feature maps are explained with a temporal grad-CAM.
* A dense classification head follows.

The paper uses it as a representative of architectures that separate the
"which dimension" and "which time window" questions, and shows that it fails
on cross-dimension (Type 2) discriminant features.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import BatchNorm, Conv1d, Conv2d, Linear, ReLU, Sequential, Tensor
from ..nn import functional as F
from .base import BaseClassifier


class MTEXCNNClassifier(BaseClassifier):
    """MTEX-CNN: per-dimension 2D block followed by a dimension-merging 1D block."""

    input_kind = "channel"
    supports_cam = False  # explanation uses grad-CAM, not GAP-based CAM
    explainer_family = "gradcam"
    kwargs_family = "mtex"

    def __init__(self, n_dimensions: int, length: int, n_classes: int,
                 block1_filters: Tuple[int, int] = (16, 32), block2_filters: int = 32,
                 kernel_size: int = 3, hidden_units: int = 64,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(n_dimensions, length, n_classes, rng)
        padding = (0, kernel_size // 2)
        filters1, filters2 = block1_filters
        self.block1 = Sequential(
            Conv2d(1, filters1, (1, kernel_size), padding=padding, rng=self.rng),
            BatchNorm(filters1),
            ReLU(),
            Conv2d(filters1, filters2, (1, kernel_size), padding=padding, rng=self.rng),
            BatchNorm(filters2),
            ReLU(),
        )
        # Merge the dimension axis: kernel spanning all D rows.
        self.merge = Conv2d(filters2, block2_filters, (n_dimensions, 1), rng=self.rng)
        self.block2 = Sequential(
            Conv1d(block2_filters, block2_filters, kernel_size,
                   padding=kernel_size // 2, rng=self.rng),
            BatchNorm(block2_filters),
            ReLU(),
        )
        self.hidden = Linear(block2_filters, hidden_units, rng=self.rng)
        self.output = Linear(hidden_units, n_classes, rng=self.rng)

    # ------------------------------------------------------------------
    # Input preparation / forward pass
    # ------------------------------------------------------------------
    def prepare_input(self, X: np.ndarray, order: Optional[np.ndarray] = None) -> Tensor:
        if order is not None:
            raise ValueError("MTEX-CNN does not accept dimension permutations")
        X = np.asarray(X, dtype=self.compute_dtype)
        if X.ndim != 3:
            raise ValueError("expected a batch of shape (batch, D, n)")
        return Tensor(X[:, None, :, :])

    def block1_features(self, x: Tensor) -> Tensor:
        """Per-dimension feature maps of shape ``(batch, filters, D, n)``."""
        return self.block1(x)

    def block2_features(self, x: Tensor) -> Tensor:
        """Temporal feature maps of shape ``(batch, filters, n)`` after merging."""
        merged = self.merge(self.block1_features(x))  # (batch, filters, 1, n)
        return self.block2(merged.squeeze(axis=2))

    def features(self, x: Tensor) -> Tensor:
        """Expose block-1 maps as the "explanation" features (per dimension)."""
        return self.block1_features(x)

    def forward(self, x: Tensor) -> Tensor:
        temporal = self.block2_features(x)
        pooled = F.global_average_pool(temporal)
        return self.output(self.hidden(pooled).relu())
