"""The InceptionTime family: InceptionTime, cInceptionTime and dInceptionTime.

Follows Ismail Fawaz et al. (2020), the architecture the paper re-uses
unchanged (Section 5.2): a stack of inception modules, each made of a
bottleneck 1×1 convolution, three parallel convolutions with geometrically
decreasing kernel sizes, and a max-pooling + bottleneck branch, concatenated
and batch-normalised; residual connections every ``residual_every`` modules;
GAP + dense head.

The c- and d-variants use ``(1, ℓ)`` 2D convolutions, as in Section 4.3 of the
paper.  Kernel sizes are capped at the series length.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn import BatchNorm, Conv1d, Conv2d, Identity, Module, ReLU, Tensor
from ..nn import functional as F
from ..nn import fused as _fused
from .conv_common import ChannelInputMixin, ConvBackboneClassifier, CubeInputMixin

#: Default number of inception modules (depth) in the original architecture.
PAPER_INCEPTION_DEPTH = 6
#: Default number of filters per branch in the original architecture.
PAPER_INCEPTION_FILTERS = 32
#: Default largest kernel size in the original architecture.
PAPER_INCEPTION_KERNEL = 40


def _make_conv(two_dimensional: bool, in_channels: int, out_channels: int,
               kernel_size: int, rng: np.random.Generator, bias: bool = False) -> Module:
    # Even kernels with symmetric "same" padding would change the series length
    # and break branch concatenation / residual additions: round down to odd.
    if kernel_size % 2 == 0 and kernel_size > 1:
        kernel_size -= 1
    if two_dimensional:
        return Conv2d(in_channels, out_channels, (1, kernel_size),
                      padding=(0, kernel_size // 2), bias=bias, rng=rng)
    return Conv1d(in_channels, out_channels, kernel_size,
                  padding=kernel_size // 2, bias=bias, rng=rng)


class InceptionModule(Module):
    """One inception module (bottleneck + multi-scale convolutions + pool branch)."""

    def __init__(self, in_channels: int, n_filters: int, kernel_sizes: Sequence[int],
                 two_dimensional: bool, rng: np.random.Generator,
                 use_bottleneck: bool = True) -> None:
        super().__init__()
        self.two_dimensional = two_dimensional
        bottleneck_channels = n_filters if use_bottleneck and in_channels > 1 else in_channels
        if use_bottleneck and in_channels > 1:
            self.bottleneck: Module = _make_conv(two_dimensional, in_channels,
                                                 n_filters, 1, rng)
            bottleneck_channels = n_filters
        else:
            self.bottleneck = Identity()
        self.branches = [
            _make_conv(two_dimensional, bottleneck_channels, n_filters, kernel_size, rng)
            for kernel_size in kernel_sizes
        ]
        self.pool_conv = _make_conv(two_dimensional, in_channels, n_filters, 1, rng)
        self.norm = BatchNorm(n_filters * (len(kernel_sizes) + 1))
        self.activation = ReLU()
        self.out_channels = n_filters * (len(kernel_sizes) + 1)

    def _max_pool(self, x: Tensor) -> Tensor:
        # "Same" max pooling with window 3: pad then pool with stride 1.
        if _fused.is_fused_training():
            return _fused.same_max_pool3(x)
        if self.two_dimensional:
            padded = x.pad(((0, 0), (0, 0), (0, 0), (1, 1)))
            return F.max_pool2d(padded, (1, 3), (1, 1))
        padded = x.pad(((0, 0), (0, 0), (1, 1)))
        return F.max_pool1d(padded, 3, 1)

    def forward(self, x: Tensor) -> Tensor:
        bottlenecked = self.bottleneck(x)
        outputs = [branch(bottlenecked) for branch in self.branches]
        outputs.append(self.pool_conv(self._max_pool(x)))
        # One concatenate → BatchNorm → ReLU node under fused training, the
        # exact composed graph everywhere else.
        return _fused.concat_batch_norm_relu(outputs, self.norm, axis=1)


class _InceptionTimeBase(ConvBackboneClassifier):
    """Shared trunk builder for the three InceptionTime variants."""

    kwargs_family = "inception"
    two_dimensional: bool = False

    def __init__(self, n_dimensions: int, length: int, n_classes: int,
                 depth: int = PAPER_INCEPTION_DEPTH,
                 n_filters: int = PAPER_INCEPTION_FILTERS,
                 kernel_size: int = PAPER_INCEPTION_KERNEL,
                 residual_every: int = 3,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(n_dimensions, length, n_classes, rng)
        if depth < 1:
            raise ValueError("depth must be >= 1")
        largest = min(kernel_size, max(3, length - 1))
        kernel_sizes = [max(3, largest // (2 ** i)) for i in range(3)]
        self.residual_every = residual_every
        self.modules_list: List[InceptionModule] = []
        self.residual_projections: List[Module] = []
        self.residual_norms: List[Module] = []
        in_channels = self._input_channels()
        residual_channels = in_channels
        for index in range(depth):
            module = InceptionModule(in_channels, n_filters, kernel_sizes,
                                     self.two_dimensional, self.rng)
            self.modules_list.append(module)
            in_channels = module.out_channels
            if residual_every and (index + 1) % residual_every == 0:
                self.residual_projections.append(
                    _make_conv(self.two_dimensional, residual_channels, in_channels, 1, self.rng))
                self.residual_norms.append(BatchNorm(in_channels))
                residual_channels = in_channels
        self.activation = ReLU()
        self.feature_channels = in_channels
        self._build_head()

    def _input_channels(self) -> int:
        return self.n_dimensions

    def features(self, x: Tensor) -> Tensor:
        residual_input = x
        residual_index = 0
        out = x
        for index, module in enumerate(self.modules_list):
            out = module(out)
            if self.residual_every and (index + 1) % self.residual_every == 0:
                projection = self.residual_projections[residual_index]
                norm = self.residual_norms[residual_index]
                out = _fused.add_relu(out, norm(projection(residual_input)))
                residual_input = out
                residual_index += 1
        return out

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.gap(self.features(x)))


class InceptionTimeClassifier(_InceptionTimeBase):
    """Standard 1D InceptionTime."""

    input_kind = "raw"
    two_dimensional = False


class CInceptionTimeClassifier(ChannelInputMixin, _InceptionTimeBase):
    """cInceptionTime baseline (dimensions never compared)."""

    two_dimensional = True

    def _input_channels(self) -> int:
        return 1


class DInceptionTimeClassifier(CubeInputMixin, _InceptionTimeBase):
    """dInceptionTime: InceptionTime over the ``C(T)`` cube (supports dCAM)."""

    two_dimensional = True

    def _input_channels(self) -> int:
        return self.n_dimensions
