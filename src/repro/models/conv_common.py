"""Shared plumbing for the convolutional architecture families.

The paper derives three variants of every convolutional architecture
(Section 2.3 and 4):

* the **plain** variant (CNN / ResNet / InceptionTime) consumes the raw
  ``(batch, D, n)`` series with 1D convolutions whose kernels span all
  dimensions — CAM is univariate;
* the **c-variant** (cCNN / cResNet / cInceptionTime) consumes a
  ``(batch, 1, D, n)`` image with ``(1, ℓ)`` kernels that slide over each
  dimension independently — CAM is multivariate but dimensions are never
  compared;
* the **d-variant** (dCNN / dResNet / dInceptionTime) consumes the ``C(T)``
  cube as a ``(batch, D, D, n)`` image (channels = position within a cube
  row) with ``(1, ℓ)`` kernels whose channel extent spans all dimensions —
  CAM is multivariate *and* dimensions are compared.

All three share the same head (GAP + dense), which is what enables CAM.  This
module factors the head, the CAM-feature access, and the input preparation for
each variant, so the architecture files only describe their convolutional
trunks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.input_transform import build_cube_batch
from ..nn import GlobalAveragePooling, Linear, Module, Tensor
from .base import BaseClassifier


class ConvBackboneClassifier(BaseClassifier):
    """A convolutional trunk followed by global average pooling and a dense layer.

    Sub-classes must set ``self.feature_extractor`` (a :class:`Module` mapping
    the prepared input to the last convolutional feature maps) and
    ``self.feature_channels`` before calling :meth:`_build_head`.
    """

    supports_cam = True
    explainer_family = "cam"
    # forward is exactly classifier(gap(features(x))), so the training engine
    # may compute the loss through its fused GAP + dense + cross-entropy node.
    fused_head = True

    feature_extractor: Module
    feature_channels: int

    def _build_head(self) -> None:
        self.gap = GlobalAveragePooling()
        self.classifier = Linear(self.feature_channels, self.n_classes, rng=self.rng)

    def features(self, x: Tensor) -> Tensor:
        """Feature maps ``A_m`` of the last convolutional layer."""
        return self.feature_extractor(x)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.gap(self.features(x)))

    @property
    def class_weights(self) -> np.ndarray:
        """Dense-layer weights ``w_m^{C_j}`` of shape ``(n_classes, n_filters)``."""
        return self.classifier.weight.data


class ChannelInputMixin:
    """Input preparation of the c-architectures: add a singleton channel axis."""

    input_kind = "channel"

    def prepare_input(self, X: np.ndarray, order: Optional[np.ndarray] = None) -> Tensor:
        if order is not None:
            raise ValueError("c-architectures do not accept dimension permutations")
        X = np.asarray(X, dtype=self.compute_dtype)
        if X.ndim != 3:
            raise ValueError("expected a batch of shape (batch, D, n)")
        return Tensor(X[:, None, :, :])


class CubeInputMixin:
    """Input preparation of the d-architectures: the ``C(T)`` cube.

    :class:`repro.nn.Conv2d` expects the position-within-a-row axis as the
    channel axis, i.e. the ``(batch, rows, positions, n)`` cube with axes 1
    and 2 swapped.  Because the rotation matrix ``(row + position) mod D`` is
    symmetric, the cube equals its own (rows, positions) transpose, so it is
    consumed directly without a transpose or copy.
    """

    input_kind = "cube"
    # Listed before ConvBackboneClassifier in every d-architecture's bases, so
    # this overrides the backbone's "cam" family.
    explainer_family = "dcam"

    def prepare_input(self, X: np.ndarray, order: Optional[np.ndarray] = None) -> Tensor:
        X = np.asarray(X, dtype=self.compute_dtype)
        if X.ndim != 3:
            raise ValueError("expected a batch of shape (batch, D, n)")
        cube = build_cube_batch(X, order)
        # The rotation matrix (row + position) mod D is symmetric, so the cube
        # is invariant under the (rows, positions) transpose — it is already
        # in the channels-first layout, no copy needed.
        return Tensor(cube)
