"""Recurrent baselines: RNN, LSTM and GRU classifiers (Section 5.2).

The paper uses one recurrent hidden layer of 128 neurons followed by a dense
layer mapping to the class neurons, following the UCR/UEA evaluation protocol
of Smirnov & Mephu Nguifo (2018).  These models cannot produce a CAM (no GAP
over convolutional features) and serve purely as accuracy baselines in
Table 2.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Linear, RecurrentLayer, Tensor
from .base import BaseClassifier

#: Hidden size used in the paper's recurrent baselines.
PAPER_RECURRENT_HIDDEN = 128


class _RecurrentClassifier(BaseClassifier):
    """Shared implementation of the recurrent baselines."""

    cell_type: str = "rnn"
    input_kind = "raw"
    supports_cam = False
    kwargs_family = "recurrent"

    def __init__(self, n_dimensions: int, length: int, n_classes: int,
                 hidden_size: int = PAPER_RECURRENT_HIDDEN,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(n_dimensions, length, n_classes, rng)
        self.recurrent = RecurrentLayer(self.cell_type, n_dimensions, hidden_size, rng=self.rng)
        self.classifier = Linear(hidden_size, n_classes, rng=self.rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.recurrent(x))


class RNNClassifier(_RecurrentClassifier):
    """Vanilla (Elman) RNN baseline."""

    cell_type = "rnn"


class LSTMClassifier(_RecurrentClassifier):
    """LSTM baseline."""

    cell_type = "lstm"


class GRUClassifier(_RecurrentClassifier):
    """GRU baseline."""

    cell_type = "gru"
