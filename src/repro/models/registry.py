"""Model registry: build any of the paper's architectures by name.

Names follow the paper's terminology:

``rnn, gru, lstm`` — recurrent baselines;
``cnn, resnet, inceptiontime`` — plain 1D convolutional architectures (CAM);
``ccnn, cresnet, cinceptiontime`` — c-variants (cCAM);
``dcnn, dresnet, dinceptiontime`` — d-variants (dCAM);
``mtex`` — MTEX-CNN (grad-CAM based explanation).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .base import BaseClassifier
from .cnn import CCNNClassifier, CNNClassifier, DCNNClassifier
from .inception import (
    CInceptionTimeClassifier,
    DInceptionTimeClassifier,
    InceptionTimeClassifier,
)
from .mtex import MTEXCNNClassifier
from .recurrent import GRUClassifier, LSTMClassifier, RNNClassifier
from .resnet import CResNetClassifier, DResNetClassifier, ResNetClassifier

MODEL_REGISTRY: Dict[str, type] = {
    "rnn": RNNClassifier,
    "gru": GRUClassifier,
    "lstm": LSTMClassifier,
    "mtex": MTEXCNNClassifier,
    "cnn": CNNClassifier,
    "resnet": ResNetClassifier,
    "inceptiontime": InceptionTimeClassifier,
    "ccnn": CCNNClassifier,
    "cresnet": CResNetClassifier,
    "cinceptiontime": CInceptionTimeClassifier,
    "dcnn": DCNNClassifier,
    "dresnet": DResNetClassifier,
    "dinceptiontime": DInceptionTimeClassifier,
}

#: Architecture groups as reported in Table 2 of the paper.
BASELINE_MODELS: List[str] = ["rnn", "gru", "lstm", "mtex", "cnn", "resnet", "inceptiontime"]
C_BASELINE_MODELS: List[str] = ["ccnn", "cresnet", "cinceptiontime"]
D_MODELS: List[str] = ["dcnn", "dresnet", "dinceptiontime"]

#: Models whose explanations use the ``C(T)`` cube (i.e. support dCAM).
CUBE_MODELS: List[str] = list(D_MODELS)


def available_models() -> List[str]:
    """Names accepted by :func:`create_model`."""
    return list(MODEL_REGISTRY)


def _normalize(name: str) -> str:
    return name.lower().replace("-", "").replace("_", "")


def explainer_family_of_model(name: str) -> Optional[str]:
    """The ``explainer_family`` declared by the architecture named ``name``.

    Returns ``None`` for architectures without an explanation method (the
    recurrent baselines).
    """
    key = _normalize(name)
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    return getattr(MODEL_REGISTRY[key], "explainer_family", None)


def kwargs_family_of_model(name: str) -> Optional[str]:
    """The ``kwargs_family`` declared by the architecture named ``name``.

    The constructor-kwargs family ("cnn", "resnet", "inception", "recurrent"
    or "mtex") picks which width preset of an
    :class:`~repro.experiments.config.ExperimentScale` applies; ``None``
    means the architecture takes no scale kwargs.  Replaces the old
    string-suffix heuristics (``name.endswith("cnn")``, ...), mirroring the
    ``explainer_family`` de-stringing.
    """
    key = _normalize(name)
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    return getattr(MODEL_REGISTRY[key], "kwargs_family", None)


def models_with_explainer_family(family: str,
                                 names: Optional[List[str]] = None) -> List[str]:
    """Model names served by explanation ``family`` ("cam"/"gradcam"/"dcam").

    ``names`` restricts (and orders) the candidates; defaults to every
    registered model.  Replaces the old name-prefix filters such as
    ``name.startswith("d")``.
    """
    pool = list(names) if names is not None else list(MODEL_REGISTRY)
    return [name for name in pool if explainer_family_of_model(name) == family]


def create_model(name: str, n_dimensions: int, length: int, n_classes: int,
                 rng: Optional[np.random.Generator] = None, **kwargs) -> BaseClassifier:
    """Instantiate an architecture by (case-insensitive) name.

    Extra keyword arguments are forwarded to the architecture constructor
    (e.g. ``filters`` for the CNN family, ``depth`` for InceptionTime).
    """
    key = _normalize(name)
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    model_class = MODEL_REGISTRY[key]
    return model_class(n_dimensions, length, n_classes, rng=rng, **kwargs)
