"""The ResNet family: ResNet, cResNet and dResNet (Sections 2.1, 2.3, 4.3).

Follows the time-series ResNet of Wang et al. used by the paper: three
residual blocks of three convolutional layers with kernel sizes (8, 5, 3) and
(64, 64, 128) filters, each convolution followed by batch normalisation, a
shortcut connection around every block, and a GAP + dense head.

The c- and d-variants replace the 1D convolutions with ``(1, ℓ)`` 2D
convolutions exactly as described for dCNN (Section 4.3).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..nn import BatchNorm, Conv1d, Conv2d, Identity, Module, ReLU, Sequential, Tensor
from ..nn import fused as _fused
from .conv_common import ChannelInputMixin, ConvBackboneClassifier, CubeInputMixin

#: Filter counts of the three residual blocks in the paper's setup.
PAPER_RESNET_FILTERS: Tuple[int, ...] = (64, 64, 128)
#: Kernel sizes of the three convolutions inside each block.
PAPER_RESNET_KERNELS: Tuple[int, ...] = (8, 5, 3)


def _make_conv(two_dimensional: bool, in_channels: int, out_channels: int,
               kernel_size: int, rng: np.random.Generator) -> Module:
    # Even kernels with symmetric "same" padding would change the series length
    # and break the residual additions, so even sizes are rounded down to odd.
    if kernel_size % 2 == 0:
        kernel_size -= 1
    if two_dimensional:
        return Conv2d(in_channels, out_channels, (1, kernel_size),
                      padding=(0, kernel_size // 2), rng=rng)
    return Conv1d(in_channels, out_channels, kernel_size,
                  padding=kernel_size // 2, rng=rng)


class ResidualBlock(Module):
    """Three convolutions with batch norm plus a shortcut connection."""

    def __init__(self, in_channels: int, out_channels: int, kernel_sizes: Sequence[int],
                 two_dimensional: bool, rng: np.random.Generator) -> None:
        super().__init__()
        self.convolutions = []
        self.norms = []
        channels = in_channels
        for kernel_size in kernel_sizes:
            self.convolutions.append(
                _make_conv(two_dimensional, channels, out_channels, kernel_size, rng))
            self.norms.append(BatchNorm(out_channels))
            channels = out_channels
        if in_channels != out_channels:
            self.shortcut: Module = _make_conv(two_dimensional, in_channels, out_channels, 1, rng)
            self.shortcut_norm: Module = BatchNorm(out_channels)
        else:
            self.shortcut = Identity()
            self.shortcut_norm = Identity()
        self.activation = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        # The BatchNorm → ReLU pairs and the residual add → relu tail dispatch
        # through the fused helpers: single bit-exact autograd nodes under
        # fused training, the exact composed modules everywhere else.
        out = x
        last = len(self.convolutions) - 1
        for index, (conv, norm) in enumerate(zip(self.convolutions, self.norms)):
            if index != last:
                out = _fused.batch_norm_relu(norm, conv(out))
            else:
                out = norm(conv(out))
        shortcut = self.shortcut_norm(self.shortcut(x))
        return _fused.add_relu(out, shortcut)


class _ResNetBase(ConvBackboneClassifier):
    """Shared trunk builder for the three ResNet variants."""

    kwargs_family = "resnet"
    two_dimensional: bool = False

    def __init__(self, n_dimensions: int, length: int, n_classes: int,
                 filters: Sequence[int] = PAPER_RESNET_FILTERS,
                 kernel_sizes: Sequence[int] = PAPER_RESNET_KERNELS,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(n_dimensions, length, n_classes, rng)
        if not filters:
            raise ValueError("filters must not be empty")
        in_channels = self._input_channels()
        blocks = []
        for out_channels in filters:
            blocks.append(ResidualBlock(in_channels, out_channels, kernel_sizes,
                                        self.two_dimensional, self.rng))
            in_channels = out_channels
        self.feature_extractor = Sequential(*blocks)
        self.feature_channels = in_channels
        self._build_head()

    def _input_channels(self) -> int:
        return self.n_dimensions


class ResNetClassifier(_ResNetBase):
    """Standard 1D time-series ResNet."""

    input_kind = "raw"
    two_dimensional = False


class CResNetClassifier(ChannelInputMixin, _ResNetBase):
    """cResNet baseline: dimensions treated as image rows, never compared."""

    two_dimensional = True

    def _input_channels(self) -> int:
        return 1


class DResNetClassifier(CubeInputMixin, _ResNetBase):
    """dResNet: ResNet over the ``C(T)`` cube (supports dCAM)."""

    two_dimensional = True

    def _input_channels(self) -> int:
        return self.n_dimensions
