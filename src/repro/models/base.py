"""Common training / prediction machinery for all classifier architectures.

Every architecture in :mod:`repro.models` follows the same contract:

* :meth:`BaseClassifier.prepare_input` converts a raw batch of multivariate
  series ``(batch, D, n)`` into the tensor layout the architecture expects
  (identity for 1D architectures, a channel axis for the c-architectures, the
  ``C(T)`` cube for the d-architectures).
* :meth:`BaseClassifier.features` returns the output of the last convolutional
  block (the ``A_m`` maps used by CAM/dCAM); architectures without a GAP-based
  CAM (the recurrent baselines) raise :class:`NotImplementedError`.
* :meth:`BaseClassifier.forward` maps the prepared input to class logits.

Training follows the paper's protocol (Section 5.2): Adam, cross-entropy,
mini-batches, early stopping on the validation loss.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn import Adam, Module, Tensor, cross_entropy, inference_mode
from ..nn.optim import clip_grad_norm


@dataclass
class TrainingConfig:
    """Hyper-parameters of a training run.

    The paper uses ``learning_rate=1e-5``, ``batch_size=16`` and up to 1000
    epochs with early stopping; those values are impractically slow for the
    CPU-only NumPy substrate, so the defaults here are scaled (larger learning
    rate, fewer epochs) while remaining overridable to the paper's values.
    """

    epochs: int = 50
    batch_size: int = 16
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    patience: int = 10
    min_delta: float = 1e-4
    gradient_clip: Optional[float] = 5.0
    shuffle: bool = True
    verbose: bool = False
    random_state: Optional[int] = None


@dataclass
class TrainingHistory:
    """Per-epoch metrics recorded by :meth:`BaseClassifier.fit`."""

    train_loss: List[float] = field(default_factory=list)
    validation_loss: List[float] = field(default_factory=list)
    validation_accuracy: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    best_epoch: int = 0
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)

    def best_validation_loss(self) -> float:
        if not self.validation_loss:
            return float("nan")
        return float(np.min(self.validation_loss))

    def epochs_to_fraction_of_best(self, fraction: float = 0.9) -> int:
        """Epochs needed to reach ``fraction`` of the way to the best loss.

        Used by the Figure 12(c) convergence experiment ("number of epochs to
        reach 90% of best loss").
        """
        losses = np.asarray(self.validation_loss if self.validation_loss else self.train_loss)
        if len(losses) == 0:
            return 0
        start, best = losses[0], losses.min()
        target = start - fraction * (start - best)
        reached = np.flatnonzero(losses <= target)
        return int(reached[0]) + 1 if len(reached) else len(losses)


class BaseClassifier(Module):
    """Abstract multivariate-series classifier."""

    #: How :meth:`prepare_input` reorganises raw series: "raw" (1D models),
    #: "channel" (c-models) or "cube" (d-models).
    input_kind: str = "raw"
    #: Whether the architecture ends with GAP + dense, i.e. supports CAM.
    supports_cam: bool = False
    #: Which explanation family of :mod:`repro.explain` serves this
    #: architecture ("cam", "gradcam" or "dcam"); ``None`` for architectures
    #: without an explanation method (the recurrent baselines).
    explainer_family: Optional[str] = None
    #: Which constructor-kwargs family this architecture belongs to ("cnn",
    #: "resnet", "inception", "recurrent" or "mtex") — the key
    #: :meth:`repro.experiments.config.ExperimentScale.model_kwargs` uses to
    #: pick the width preset; ``None`` means "takes no scale kwargs".
    kwargs_family: Optional[str] = None

    def __init__(self, n_dimensions: int, length: int, n_classes: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if n_dimensions < 1 or length < 1 or n_classes < 2:
            raise ValueError("invalid problem shape")
        self.n_dimensions = n_dimensions
        self.length = length
        self.n_classes = n_classes
        self.rng = rng or np.random.default_rng()

    # ------------------------------------------------------------------
    # Architecture contract
    # ------------------------------------------------------------------
    def prepare_input(self, X: np.ndarray, order: Optional[np.ndarray] = None) -> Tensor:
        """Convert a raw batch ``(batch, D, n)`` to the architecture's layout.

        ``order`` (a dimension permutation) is only meaningful for the
        d-architectures and rejected elsewhere.
        """
        if order is not None:
            raise ValueError(f"{type(self).__name__} does not accept dimension permutations")
        return Tensor(np.asarray(X, dtype=np.float64))

    def features(self, x: Tensor) -> Tensor:
        """Output of the last convolutional block (the CAM feature maps)."""
        raise NotImplementedError(f"{type(self).__name__} does not expose CAM feature maps")

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Prediction helpers
    # ------------------------------------------------------------------
    def logits(self, X: np.ndarray, batch_size: int = 32) -> np.ndarray:
        """Class logits for a raw batch of series, computed in eval mode."""
        self.eval()
        outputs = []
        with inference_mode():
            for start in range(0, len(X), batch_size):
                batch = X[start: start + batch_size]
                outputs.append(self.forward(self.prepare_input(batch)).data)
        return np.concatenate(outputs, axis=0)

    def predict_proba(self, X: np.ndarray, batch_size: int = 32) -> np.ndarray:
        logits = self.logits(X, batch_size)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exps = np.exp(shifted)
        return exps / exps.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray, batch_size: int = 32) -> np.ndarray:
        return self.logits(X, batch_size).argmax(axis=1)

    def score(self, X: np.ndarray, y: np.ndarray, batch_size: int = 32) -> float:
        """Classification accuracy (the paper's C-acc) on ``(X, y)``."""
        predictions = self.predict(X, batch_size)
        return float(np.mean(predictions == np.asarray(y)))

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def _evaluate_loss(self, X: np.ndarray, y: np.ndarray, batch_size: int) -> Tuple[float, float]:
        self.eval()
        losses, correct, total = [], 0, 0
        with inference_mode():
            for start in range(0, len(X), batch_size):
                batch_X = X[start: start + batch_size]
                batch_y = y[start: start + batch_size]
                logits = self.forward(self.prepare_input(batch_X))
                loss = cross_entropy(logits, batch_y)
                losses.append(loss.item() * len(batch_X))
                correct += int((logits.data.argmax(axis=1) == batch_y).sum())
                total += len(batch_X)
        return float(np.sum(losses) / total), correct / total

    def fit(self, X: np.ndarray, y: np.ndarray,
            validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
            config: Optional[TrainingConfig] = None) -> TrainingHistory:
        """Train with Adam + cross-entropy and early stopping.

        Parameters
        ----------
        X, y:
            Training series ``(instances, D, n)`` and integer labels.
        validation_data:
            Optional ``(X_val, y_val)`` pair used for early stopping.
        config:
            Training hyper-parameters; see :class:`TrainingConfig`.
        """
        config = config or TrainingConfig()
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 3:
            raise ValueError("X must be (instances, dimensions, length)")
        if X.shape[1] != self.n_dimensions or X.shape[2] != self.length:
            raise ValueError(
                f"model built for (D={self.n_dimensions}, n={self.length}) "
                f"but got series of shape {X.shape[1:]}"
            )
        rng = np.random.default_rng(config.random_state)
        optimizer = Adam(self.parameters(), lr=config.learning_rate,
                         weight_decay=config.weight_decay)
        history = TrainingHistory()
        best_loss = float("inf")
        best_state: Optional[Dict[str, np.ndarray]] = None
        epochs_without_improvement = 0

        for epoch in range(config.epochs):
            start_time = time.perf_counter()
            self.train()
            indices = rng.permutation(len(X)) if config.shuffle else np.arange(len(X))
            epoch_losses = []
            for start in range(0, len(X), config.batch_size):
                batch_idx = indices[start: start + config.batch_size]
                logits = self.forward(self.prepare_input(X[batch_idx]))
                loss = cross_entropy(logits, y[batch_idx])
                optimizer.zero_grad()
                loss.backward()
                if config.gradient_clip is not None:
                    clip_grad_norm(self.parameters(), config.gradient_clip)
                optimizer.step()
                epoch_losses.append(loss.item())
            history.train_loss.append(float(np.mean(epoch_losses)))
            history.epoch_seconds.append(time.perf_counter() - start_time)

            if validation_data is not None:
                val_loss, val_acc = self._evaluate_loss(validation_data[0],
                                                        validation_data[1],
                                                        config.batch_size)
                history.validation_loss.append(val_loss)
                history.validation_accuracy.append(val_acc)
                monitored = val_loss
            else:
                monitored = history.train_loss[-1]

            if config.verbose:  # pragma: no cover - logging only
                message = f"epoch {epoch + 1}/{config.epochs} train_loss={history.train_loss[-1]:.4f}"
                if validation_data is not None:
                    message += f" val_loss={history.validation_loss[-1]:.4f}"
                    message += f" val_acc={history.validation_accuracy[-1]:.3f}"
                print(message)

            if monitored < best_loss - config.min_delta:
                best_loss = monitored
                best_state = self.state_dict()
                history.best_epoch = epoch
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= config.patience:
                    history.stopped_early = True
                    break

        if best_state is not None:
            self.load_state_dict(best_state)
        return history
