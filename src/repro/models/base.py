"""Common training / prediction machinery for all classifier architectures.

Every architecture in :mod:`repro.models` follows the same contract:

* :meth:`BaseClassifier.prepare_input` converts a raw batch of multivariate
  series ``(batch, D, n)`` into the tensor layout the architecture expects
  (identity for 1D architectures, a channel axis for the c-architectures, the
  ``C(T)`` cube for the d-architectures).
* :meth:`BaseClassifier.features` returns the output of the last convolutional
  block (the ``A_m`` maps used by CAM/dCAM); architectures without a GAP-based
  CAM (the recurrent baselines) raise :class:`NotImplementedError`.
* :meth:`BaseClassifier.forward` maps the prepared input to class logits.

Training follows the paper's protocol (Section 5.2): Adam, cross-entropy,
mini-batches, early stopping on the validation loss.  :meth:`BaseClassifier.fit`
is a thin wrapper over :class:`repro.training.TrainingEngine` (the fused
prepare-once pipeline); ``TrainingConfig(engine="legacy")`` selects the
reference per-batch-prepare loop, which the engine matches float for float.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..nn import Module, Tensor, cross_entropy, inference_mode


@dataclass
class TrainingConfig:
    """Hyper-parameters of a training run.

    The paper uses ``learning_rate=1e-5``, ``batch_size=16`` and up to 1000
    epochs with early stopping; those values are impractically slow for the
    CPU-only NumPy substrate, so the defaults here are scaled (larger learning
    rate, fewer epochs) while remaining overridable to the paper's values.
    """

    #: Upper bound on training epochs; early stopping usually ends the run
    #: sooner (the paper trains up to 1000 with ``patience=50``).
    epochs: int = 50
    #: Mini-batch size of the gradient loop (16 in the paper).
    batch_size: int = 16
    #: Adam step size.  The paper's ``1e-5`` assumes GPU-scale epoch counts;
    #: the scaled default converges in tens of epochs on the NumPy substrate.
    learning_rate: float = 1e-3
    #: L2 penalty coefficient applied through AdamW-style decoupled decay;
    #: 0 disables it.
    weight_decay: float = 0.0
    #: Early-stopping patience: epochs without validation improvement
    #: tolerated before training halts and the best weights are restored.
    patience: int = 10
    #: Smallest validation-loss drop that counts as an improvement for
    #: early stopping.
    min_delta: float = 1e-4
    #: Global gradient-norm clip threshold; ``None`` disables clipping.
    gradient_clip: Optional[float] = 5.0
    #: Reshuffle the training set every epoch (seeded by ``random_state``).
    shuffle: bool = True
    #: Print per-epoch loss/accuracy lines to stdout during ``fit``.
    verbose: bool = False
    #: Seed for weight init, shuffling and dropout; ``None`` draws from the
    #: global NumPy state (non-reproducible runs).
    random_state: Optional[int] = None
    #: Which fit implementation runs: "fused" (the prepare-once
    #: :class:`repro.training.TrainingEngine`) or "legacy" (the reference
    #: per-batch-prepare loop).  Both produce float-identical results.
    engine: str = "fused"
    #: Compute precision of the fit: "float64" (the reference, bit-exact
    #: against the legacy loop) or "float32" (the opt-in fast tier — casts the
    #: model weights and runs every kernel in single precision; requires the
    #: fused engine and agrees with float64 to documented tolerances only).
    precision: str = "float64"


@dataclass
class TrainingHistory:
    """Per-epoch metrics recorded by :meth:`BaseClassifier.fit`."""

    train_loss: List[float] = field(default_factory=list)
    validation_loss: List[float] = field(default_factory=list)
    validation_accuracy: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    #: One-off input-preparation wall clock of the fused engine (0.0 for the
    #: legacy loop, which pays preparation inside every epoch instead).  Total
    #: training time is ``prepare_seconds + sum(epoch_seconds)``.
    prepare_seconds: float = 0.0
    best_epoch: int = 0
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)

    def best_validation_loss(self) -> float:
        if not self.validation_loss:
            return float("nan")
        return float(np.min(self.validation_loss))

    def epochs_to_fraction_of_best(self, fraction: float = 0.9) -> int:
        """Epochs needed to reach ``fraction`` of the way to the best loss.

        Used by the Figure 12(c) convergence experiment ("number of epochs to
        reach 90% of best loss").
        """
        losses = np.asarray(self.validation_loss if self.validation_loss else self.train_loss)
        if len(losses) == 0:
            return 0
        start, best = losses[0], losses.min()
        target = start - fraction * (start - best)
        reached = np.flatnonzero(losses <= target)
        return int(reached[0]) + 1 if len(reached) else len(losses)


class BaseClassifier(Module):
    """Abstract multivariate-series classifier."""

    #: How :meth:`prepare_input` reorganises raw series: "raw" (1D models),
    #: "channel" (c-models) or "cube" (d-models).
    input_kind: str = "raw"
    #: Whether the architecture ends with GAP + dense, i.e. supports CAM.
    supports_cam: bool = False
    #: Which explanation family of :mod:`repro.explain` serves this
    #: architecture ("cam", "gradcam" or "dcam"); ``None`` for architectures
    #: without an explanation method (the recurrent baselines).
    explainer_family: Optional[str] = None
    #: Which constructor-kwargs family this architecture belongs to ("cnn",
    #: "resnet", "inception", "recurrent" or "mtex") — the key
    #: :meth:`repro.experiments.config.ExperimentScale.model_kwargs` uses to
    #: pick the width preset; ``None`` means "takes no scale kwargs".
    kwargs_family: Optional[str] = None
    #: Whether ``forward`` is exactly ``classifier(gap(features(x)))`` — the
    #: GAP + dense head every CAM architecture shares — letting the training
    #: engine compute the loss through the fused single-node head.
    fused_head: bool = False

    def __init__(self, n_dimensions: int, length: int, n_classes: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if n_dimensions < 1 or length < 1 or n_classes < 2:
            raise ValueError("invalid problem shape")
        self.n_dimensions = n_dimensions
        self.length = length
        self.n_classes = n_classes
        self.rng = rng or np.random.default_rng()
        self._compute_dtype = np.dtype(np.float64)

    # ------------------------------------------------------------------
    # Compute precision
    # ------------------------------------------------------------------
    @property
    def compute_dtype(self) -> np.dtype:
        """Dtype of the weights and of every prepared input (float64 default)."""
        return getattr(self, "_compute_dtype", np.dtype(np.float64))

    def astype(self, dtype) -> "BaseClassifier":
        """Cast the model to a compute dtype (see :meth:`Module.astype`).

        Also retargets :meth:`prepare_input`, so subsequent forward passes,
        explanations and servings run entirely in that precision.
        """
        super().astype(dtype)
        self._compute_dtype = np.dtype(dtype)
        return self

    # ------------------------------------------------------------------
    # Architecture contract
    # ------------------------------------------------------------------
    def prepare_input(self, X: np.ndarray, order: Optional[np.ndarray] = None) -> Tensor:
        """Convert a raw batch ``(batch, D, n)`` to the architecture's layout.

        ``order`` (a dimension permutation) is only meaningful for the
        d-architectures and rejected elsewhere.
        """
        if order is not None:
            raise ValueError(f"{type(self).__name__} does not accept dimension permutations")
        return Tensor(np.asarray(X, dtype=self.compute_dtype))

    def features(self, x: Tensor) -> Tensor:
        """Output of the last convolutional block (the CAM feature maps)."""
        raise NotImplementedError(f"{type(self).__name__} does not expose CAM feature maps")

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Prediction helpers
    # ------------------------------------------------------------------
    def logits(self, X: np.ndarray, batch_size: int = 32, *,
               prepared=None) -> np.ndarray:
        """Class logits for a raw batch of series, computed in eval mode.

        The model's train/eval mode is restored afterwards, so calling this
        mid-training (e.g. from a validation callback) cannot silently leave
        dropout and batch-norm in inference behaviour for subsequent epochs.
        ``prepared`` optionally supplies a
        :class:`repro.training.PreparedInputs` cache so the per-batch
        ``prepare_input`` calls are skipped (the training engine's validation
        path uses this).
        """
        was_training = self.training
        try:
            self.eval()
            outputs = []
            with inference_mode():
                for start in range(0, len(X), batch_size):
                    if prepared is not None:
                        batch = Tensor(prepared.slice(start, start + batch_size))
                    else:
                        batch = self.prepare_input(X[start: start + batch_size])
                    outputs.append(self.forward(batch).data)
            return np.concatenate(outputs, axis=0)
        finally:
            if was_training:
                self.train()

    def predict_proba(self, X: np.ndarray, batch_size: int = 32) -> np.ndarray:
        logits = self.logits(X, batch_size)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exps = np.exp(shifted)
        return exps / exps.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray, batch_size: int = 32) -> np.ndarray:
        return self.logits(X, batch_size).argmax(axis=1)

    def score(self, X: np.ndarray, y: np.ndarray, batch_size: int = 32) -> float:
        """Classification accuracy (the paper's C-acc) on ``(X, y)``."""
        predictions = self.predict(X, batch_size)
        return float(np.mean(predictions == np.asarray(y)))

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def _evaluate_loss(self, X: np.ndarray, y: np.ndarray, batch_size: int,
                       prepared=None) -> Tuple[float, float]:
        """Mean cross-entropy and accuracy on ``(X, y)`` in eval mode.

        ``prepared`` optionally supplies a prepared-input cache (see
        :meth:`logits`); the train/eval mode is restored afterwards.
        """
        was_training = self.training
        try:
            self.eval()
            losses, correct, total = [], 0, 0
            with inference_mode():
                for start in range(0, len(X), batch_size):
                    batch_y = y[start: start + batch_size]
                    if prepared is not None:
                        batch = Tensor(prepared.slice(start, start + batch_size))
                    else:
                        batch = self.prepare_input(X[start: start + batch_size])
                    logits = self.forward(batch)
                    loss = cross_entropy(logits, batch_y)
                    losses.append(loss.item() * len(batch_y))
                    correct += int((logits.data.argmax(axis=1) == batch_y).sum())
                    total += len(batch_y)
            return float(np.sum(losses) / total), correct / total
        finally:
            if was_training:
                self.train()

    def fit(self, X: np.ndarray, y: np.ndarray,
            validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
            config: Optional[TrainingConfig] = None) -> TrainingHistory:
        """Train with Adam + cross-entropy and early stopping.

        Thin wrapper over the fused :class:`repro.training.TrainingEngine`
        (``config.engine == "fused"``, the default) or the reference loop in
        :func:`repro.training.legacy.fit_legacy` (``"legacy"``).  Both are
        float-identical; the engine prepares inputs once per fit and runs the
        fused forward/backward kernels.  The model is left in eval mode with
        the best weights loaded.

        Parameters
        ----------
        X, y:
            Training series ``(instances, D, n)`` and integer labels.
        validation_data:
            Optional ``(X_val, y_val)`` pair used for early stopping.
        config:
            Training hyper-parameters; see :class:`TrainingConfig`.
        """
        config = config or TrainingConfig()
        if config.precision not in ("float64", "float32"):
            raise ValueError(f"unknown precision {config.precision!r}; "
                             "expected 'float64' or 'float32'")
        if config.engine == "legacy":
            if config.precision != "float64":
                raise ValueError("precision='float32' requires the fused engine; "
                                 "the legacy loop is the float64 reference")
            from ..training.legacy import fit_legacy

            return fit_legacy(self, X, y, validation_data, config)
        if config.engine != "fused":
            raise ValueError(f"unknown training engine {config.engine!r}; "
                             "expected 'fused' or 'legacy'")
        self.astype(np.float32 if config.precision == "float32" else np.float64)
        from ..training.engine import TrainingEngine

        return TrainingEngine(self, config).fit(X, y, validation_data)
