"""The CNN family: CNN (1D), cCNN and dCNN (Sections 2.1, 2.3 and 4.2).

The paper's setup (Section 5.2) uses five convolutional layers with
``(64, 128, 256, 256, 256)`` filters and kernel size 3 for all three variants.
Each convolution is followed by batch normalisation and a ReLU, the last layer
feeds a global average pooling layer and a dense softmax classifier.

Unlike the paper we use "same" padding (``kernel // 2``) instead of padding 2,
so that the CAM time axis aligns exactly with the input time axis; this only
changes the feature-map length bookkeeping, not the architecture.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..nn import BatchNorm, Conv1d, Conv2d, ReLU, Sequential
from .conv_common import ChannelInputMixin, ConvBackboneClassifier, CubeInputMixin

#: Filter counts used in the paper's experiments.
PAPER_CNN_FILTERS: Tuple[int, ...] = (64, 128, 256, 256, 256)


def _conv_block_1d(in_channels: int, out_channels: int, kernel_size: int,
                   rng: np.random.Generator) -> Sequential:
    padding = kernel_size // 2
    return Sequential(
        Conv1d(in_channels, out_channels, kernel_size, padding=padding, rng=rng),
        BatchNorm(out_channels),
        ReLU(),
    )


def _conv_block_2d(in_channels: int, out_channels: int, kernel_size: int,
                   rng: np.random.Generator) -> Sequential:
    padding = (0, kernel_size // 2)
    return Sequential(
        Conv2d(in_channels, out_channels, (1, kernel_size), padding=padding, rng=rng),
        BatchNorm(out_channels),
        ReLU(),
    )


class CNNClassifier(ConvBackboneClassifier):
    """Standard 1D CNN whose first-layer kernels span all dimensions."""

    input_kind = "raw"
    kwargs_family = "cnn"

    def __init__(self, n_dimensions: int, length: int, n_classes: int,
                 filters: Sequence[int] = PAPER_CNN_FILTERS, kernel_size: int = 3,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(n_dimensions, length, n_classes, rng)
        if not filters:
            raise ValueError("filters must not be empty")
        blocks = []
        in_channels = n_dimensions
        for out_channels in filters:
            blocks.append(_conv_block_1d(in_channels, out_channels, kernel_size, self.rng))
            in_channels = out_channels
        self.feature_extractor = Sequential(*blocks)
        self.feature_channels = in_channels
        self._build_head()


class CCNNClassifier(ChannelInputMixin, ConvBackboneClassifier):
    """cCNN baseline: 2D CNN whose ``(1, ℓ)`` kernels never compare dimensions."""

    kwargs_family = "cnn"

    def __init__(self, n_dimensions: int, length: int, n_classes: int,
                 filters: Sequence[int] = PAPER_CNN_FILTERS, kernel_size: int = 3,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(n_dimensions, length, n_classes, rng)
        if not filters:
            raise ValueError("filters must not be empty")
        blocks = []
        in_channels = 1
        for out_channels in filters:
            blocks.append(_conv_block_2d(in_channels, out_channels, kernel_size, self.rng))
            in_channels = out_channels
        self.feature_extractor = Sequential(*blocks)
        self.feature_channels = in_channels
        self._build_head()


class DCNNClassifier(CubeInputMixin, ConvBackboneClassifier):
    """dCNN: the paper's architecture operating on the ``C(T)`` cube."""

    kwargs_family = "cnn"

    def __init__(self, n_dimensions: int, length: int, n_classes: int,
                 filters: Sequence[int] = PAPER_CNN_FILTERS, kernel_size: int = 3,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(n_dimensions, length, n_classes, rng)
        if not filters:
            raise ValueError("filters must not be empty")
        blocks = []
        in_channels = n_dimensions
        for out_channels in filters:
            blocks.append(_conv_block_2d(in_channels, out_channels, kernel_size, self.rng))
            in_channels = out_channels
        self.feature_extractor = Sequential(*blocks)
        self.feature_channels = in_channels
        self._build_head()
