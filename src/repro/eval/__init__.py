"""Evaluation measures and protocols (C-acc, Dr-acc, ranks)."""

from .dr_acc import dr_acc, dr_acc_batch, random_baseline_dr_acc
from .metrics import (
    classification_accuracy,
    harmonic_mean,
    pr_auc,
    precision_recall_curve,
    roc_auc,
)
from .protocol import (
    EvaluationResult,
    evaluate_classification,
    evaluate_explanation,
    explanation_for,
    fit_on_dataset,
    repeated_runs,
)
from .ranking import average_ranks, mean_scores, rank_scores

__all__ = [
    "classification_accuracy",
    "precision_recall_curve",
    "pr_auc",
    "roc_auc",
    "harmonic_mean",
    "dr_acc",
    "dr_acc_batch",
    "random_baseline_dr_acc",
    "rank_scores",
    "average_ranks",
    "mean_scores",
    "EvaluationResult",
    "fit_on_dataset",
    "evaluate_classification",
    "evaluate_explanation",
    "explanation_for",
    "repeated_runs",
]
