"""Evaluation protocols shared by the experiment drivers.

Encapsulates the paper's protocol (Section 5.2): stratified 80/20
train/validation split, training with Adam + early stopping, C-acc on a held
out test set, Dr-acc via the appropriate explanation method of each
architecture family, averaged over several runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.dcam import DEFAULT_BATCH_SIZE
from ..data.datasets import MultivariateDataset
from ..data.splits import train_validation_split
from ..models.base import BaseClassifier, TrainingConfig
from ..models.registry import create_model

# NOTE: the explanation wrappers below import from ``repro.explain`` lazily so
# that the eval layer has no load-time dependency on it (repro.explain imports
# ``repro.eval.dr_acc``; a module-level import here would close a cycle that
# only resolves for one package import order).


@dataclass
class EvaluationResult:
    """Result of training + evaluating one model on one dataset."""

    model_name: str
    dataset_name: str
    c_acc: float
    dr_acc: Optional[float] = None
    success_ratio: Optional[float] = None
    epochs_run: int = 0
    train_seconds: float = 0.0
    extra: Dict = field(default_factory=dict)


def fit_on_dataset(model: BaseClassifier, dataset: MultivariateDataset,
                   training: Optional[TrainingConfig] = None,
                   validation_fraction: float = 0.2,
                   random_state: Optional[int] = None):
    """Train ``model`` with the paper's 80/20 stratified split protocol."""
    train, validation = train_validation_split(dataset, 1.0 - validation_fraction,
                                               random_state=random_state)
    history = model.fit(train.X, train.y, validation_data=(validation.X, validation.y),
                        config=training or TrainingConfig())
    return history


def evaluate_classification(model_name: str, dataset: MultivariateDataset,
                            test: MultivariateDataset,
                            training: Optional[TrainingConfig] = None,
                            model_kwargs: Optional[Dict] = None,
                            random_state: Optional[int] = None) -> Tuple[BaseClassifier, EvaluationResult]:
    """Train one architecture on ``dataset`` and measure C-acc on ``test``."""
    rng = np.random.default_rng(random_state)
    model = create_model(model_name, dataset.n_dimensions, dataset.length,
                         dataset.n_classes, rng=rng, **(model_kwargs or {}))
    history = fit_on_dataset(model, dataset, training, random_state=random_state)
    accuracy = model.score(test.X, test.y)
    result = EvaluationResult(
        model_name=model_name,
        dataset_name=dataset.name,
        c_acc=accuracy,
        epochs_run=history.epochs_run,
        train_seconds=float(history.prepare_seconds + np.sum(history.epoch_seconds)),
    )
    return model, result


def explanation_for(model: BaseClassifier, model_name: str, series: np.ndarray,
                    class_id: int, k: int = 20,
                    rng: Optional[np.random.Generator] = None,
                    batch_size: int = DEFAULT_BATCH_SIZE) -> Tuple[np.ndarray, Optional[float]]:
    """Explain one series via the model family's registered explainer.

    Dispatch is driven by the ``explainer_family`` attribute of the model
    class (see :mod:`repro.explain.registry`); ``model_name`` is kept for
    call-site compatibility but no longer consulted.  Returns the ``(D, n)``
    explanation heatmap and, for the dCAM family, the ``n_g / k`` success
    ratio (None otherwise).  ``batch_size`` is the micro-batch knob of the
    family's batch engine; it trades speed against peak memory, affecting
    results only at float round-off level.
    """
    from ..explain.registry import get_explainer

    explainer = get_explainer(model, k=k, batch_size=batch_size, rng=rng)
    explanation = explainer.explain(series, class_id)
    return explanation.heatmap, explanation.success_ratio


def evaluate_explanation(model: BaseClassifier, model_name: str,
                         test: MultivariateDataset, target_class: int = 1,
                         n_instances: int = 10, k: int = 20,
                         random_state: Optional[int] = None,
                         batch_size: int = DEFAULT_BATCH_SIZE) -> Tuple[float, Optional[float]]:
    """Average Dr-acc of a trained model over instances of ``target_class``.

    Only instances whose ground-truth mask is non-empty are considered (the
    class with injected discriminant features).  Thin wrapper over
    :func:`repro.explain.evaluate_explainer`, kept for the legacy
    ``(dr_acc, success_ratio)`` return shape; ``model_name`` is no longer
    consulted (dispatch uses the model's ``explainer_family``).
    """
    from ..explain.evaluation import evaluate_explainer

    report = evaluate_explainer(model, test, target_class=target_class,
                                n_instances=n_instances, k=k,
                                batch_size=batch_size, random_state=random_state)
    return report.as_tuple()


def repeated_runs(model_name: str, dataset: MultivariateDataset, test: MultivariateDataset,
                  n_runs: int = 3, training: Optional[TrainingConfig] = None,
                  model_kwargs: Optional[Dict] = None,
                  base_seed: int = 0) -> List[EvaluationResult]:
    """Repeat train+evaluate ``n_runs`` times with different seeds (paper: 10)."""
    results = []
    for run in range(n_runs):
        _, result = evaluate_classification(model_name, dataset, test, training,
                                            model_kwargs, random_state=base_seed + run)
        results.append(result)
    return results
