"""Evaluation protocols shared by the experiment drivers.

Encapsulates the paper's protocol (Section 5.2): stratified 80/20
train/validation split, training with Adam + early stopping, C-acc on a held
out test set, Dr-acc via the appropriate explanation method of each
architecture family, averaged over several runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.cam import cam_as_multivariate, class_activation_map
from ..core.dcam import DEFAULT_BATCH_SIZE, compute_dcam
from ..core.gradcam import mtex_explanation
from ..data.datasets import MultivariateDataset
from ..data.splits import train_validation_split
from ..models.base import BaseClassifier, TrainingConfig
from ..models.registry import create_model
from .dr_acc import dr_acc


@dataclass
class EvaluationResult:
    """Result of training + evaluating one model on one dataset."""

    model_name: str
    dataset_name: str
    c_acc: float
    dr_acc: Optional[float] = None
    success_ratio: Optional[float] = None
    epochs_run: int = 0
    train_seconds: float = 0.0
    extra: Dict = field(default_factory=dict)


def fit_on_dataset(model: BaseClassifier, dataset: MultivariateDataset,
                   training: Optional[TrainingConfig] = None,
                   validation_fraction: float = 0.2,
                   random_state: Optional[int] = None):
    """Train ``model`` with the paper's 80/20 stratified split protocol."""
    train, validation = train_validation_split(dataset, 1.0 - validation_fraction,
                                               random_state=random_state)
    history = model.fit(train.X, train.y, validation_data=(validation.X, validation.y),
                        config=training or TrainingConfig())
    return history


def evaluate_classification(model_name: str, dataset: MultivariateDataset,
                            test: MultivariateDataset,
                            training: Optional[TrainingConfig] = None,
                            model_kwargs: Optional[Dict] = None,
                            random_state: Optional[int] = None) -> Tuple[BaseClassifier, EvaluationResult]:
    """Train one architecture on ``dataset`` and measure C-acc on ``test``."""
    rng = np.random.default_rng(random_state)
    model = create_model(model_name, dataset.n_dimensions, dataset.length,
                         dataset.n_classes, rng=rng, **(model_kwargs or {}))
    history = fit_on_dataset(model, dataset, training, random_state=random_state)
    accuracy = model.score(test.X, test.y)
    result = EvaluationResult(
        model_name=model_name,
        dataset_name=dataset.name,
        c_acc=accuracy,
        epochs_run=history.epochs_run,
        train_seconds=float(np.sum(history.epoch_seconds)),
    )
    return model, result


def explanation_for(model: BaseClassifier, model_name: str, series: np.ndarray,
                    class_id: int, k: int = 20,
                    rng: Optional[np.random.Generator] = None,
                    batch_size: int = DEFAULT_BATCH_SIZE) -> Tuple[np.ndarray, Optional[float]]:
    """Dispatch to the explanation method matching the architecture family.

    Returns the ``(D, n)`` explanation heatmap and, for the d-architectures,
    the ``n_g / k`` success ratio (None otherwise).  ``batch_size`` is the
    dCAM micro-batch knob (permuted cubes per forward pass); it trades speed
    against peak memory, affecting results only at float round-off level.
    """
    n_dimensions = series.shape[0]
    name = model_name.lower()
    if name.startswith("d"):
        result = compute_dcam(model, series, class_id, k=k, rng=rng,
                              batch_size=batch_size)
        return result.dcam, result.success_ratio
    if name == "mtex":
        return mtex_explanation(model, series, class_id), None
    cam = class_activation_map(model, series, class_id)
    if cam.ndim == 1:
        return cam_as_multivariate(cam, n_dimensions), None
    return cam, None


def evaluate_explanation(model: BaseClassifier, model_name: str,
                         test: MultivariateDataset, target_class: int = 1,
                         n_instances: int = 10, k: int = 20,
                         random_state: Optional[int] = None,
                         batch_size: int = DEFAULT_BATCH_SIZE) -> Tuple[float, Optional[float]]:
    """Average Dr-acc of a trained model over instances of ``target_class``.

    Only instances whose ground-truth mask is non-empty are considered (the
    class with injected discriminant features).
    """
    if test.ground_truth is None:
        raise ValueError("dataset has no ground-truth masks")
    rng = np.random.default_rng(random_state)
    candidate_indices = [
        index for index in range(len(test))
        if test.y[index] == target_class and test.ground_truth[index].sum() > 0
    ]
    if not candidate_indices:
        raise ValueError(f"no instances of class {target_class} with ground truth")
    chosen = candidate_indices[:n_instances]
    scores, ratios = [], []
    for index in chosen:
        heatmap, ratio = explanation_for(model, model_name, test.X[index],
                                         int(test.y[index]), k=k, rng=rng,
                                         batch_size=batch_size)
        scores.append(dr_acc(heatmap, test.ground_truth[index]))
        if ratio is not None:
            ratios.append(ratio)
    mean_ratio = float(np.mean(ratios)) if ratios else None
    return float(np.mean(scores)), mean_ratio


def repeated_runs(model_name: str, dataset: MultivariateDataset, test: MultivariateDataset,
                  n_runs: int = 3, training: Optional[TrainingConfig] = None,
                  model_kwargs: Optional[Dict] = None,
                  base_seed: int = 0) -> List[EvaluationResult]:
    """Repeat train+evaluate ``n_runs`` times with different seeds (paper: 10)."""
    results = []
    for run in range(n_runs):
        _, result = evaluate_classification(model_name, dataset, test, training,
                                            model_kwargs, random_state=base_seed + run)
        results.append(result)
    return results
