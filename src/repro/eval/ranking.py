"""Average-rank aggregation across datasets (the "Rank" rows of Tables 2/3)."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def rank_scores(scores: Dict[str, float], higher_is_better: bool = True) -> Dict[str, float]:
    """Competition-style ranks (1 = best) with ties receiving the average rank."""
    if not scores:
        raise ValueError("scores must not be empty")
    names = list(scores)
    values = np.asarray([scores[name] for name in names], dtype=float)
    order_sign = -1.0 if higher_is_better else 1.0
    sortable = order_sign * values
    ranks = np.empty(len(values), dtype=float)
    order = np.argsort(sortable, kind="mergesort")
    position = 0
    while position < len(values):
        tie_end = position
        while (tie_end + 1 < len(values)
               and sortable[order[tie_end + 1]] == sortable[order[position]]):
            tie_end += 1
        average_rank = 0.5 * (position + tie_end) + 1.0
        for index in order[position: tie_end + 1]:
            ranks[index] = average_rank
        position = tie_end + 1
    return dict(zip(names, ranks.tolist()))


def average_ranks(per_dataset_scores: Sequence[Dict[str, float]],
                  higher_is_better: bool = True) -> Dict[str, float]:
    """Average the per-dataset ranks of each method (Tables 2 and 3)."""
    if not per_dataset_scores:
        raise ValueError("no datasets provided")
    methods = list(per_dataset_scores[0])
    totals = {method: 0.0 for method in methods}
    for scores in per_dataset_scores:
        if set(scores) != set(methods):
            raise ValueError("every dataset must report the same methods")
        ranks = rank_scores(scores, higher_is_better)
        for method, rank in ranks.items():
            totals[method] += rank
    count = len(per_dataset_scores)
    return {method: total / count for method, total in totals.items()}


def mean_scores(per_dataset_scores: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Per-method mean over datasets (the "Mean" row of Table 2)."""
    if not per_dataset_scores:
        raise ValueError("no datasets provided")
    methods = list(per_dataset_scores[0])
    return {
        method: float(np.mean([scores[method] for scores in per_dataset_scores]))
        for method in methods
    }
