"""Evaluation metrics (classification accuracy, PR-AUC, ROC-AUC).

Implemented from scratch (no scikit-learn dependency).  PR-AUC is computed as
average precision, the standard step-wise approximation of the area under the
precision-recall curve; the paper uses PR-AUC for the Dr-acc measure because
the injected discriminant patterns cover a tiny fraction of the series
(heavily unbalanced positives), where PR-AUC is more informative than ROC-AUC
(Davis & Goadrich, 2006).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def classification_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correctly classified instances (the paper's C-acc)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of an empty label set")
    return float(np.mean(y_true == y_pred))


def _validate_binary_scores(y_true: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel().astype(float)
    scores = np.asarray(scores).ravel().astype(float)
    if y_true.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    if y_true.size == 0:
        raise ValueError("empty input")
    unique = np.unique(y_true)
    if not np.all(np.isin(unique, (0.0, 1.0))):
        raise ValueError("labels must be binary (0/1)")
    return y_true, scores


def precision_recall_curve(y_true: np.ndarray, scores: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision and recall at every distinct score threshold.

    Returns ``(precision, recall, thresholds)`` with precision/recall ordered
    by decreasing threshold (increasing recall), mirroring the scikit-learn
    convention minus the trailing ``(1, 0)`` sentinel point.
    """
    y_true, scores = _validate_binary_scores(y_true, scores)
    n_positive = y_true.sum()
    if n_positive == 0:
        raise ValueError("precision-recall curve undefined without positive labels")
    order = np.argsort(-scores, kind="mergesort")
    sorted_true = y_true[order]
    sorted_scores = scores[order]
    # Evaluate only at the last occurrence of each distinct score value.
    distinct = np.flatnonzero(np.diff(np.append(sorted_scores, -np.inf)))
    true_positives = np.cumsum(sorted_true)[distinct]
    predicted_positives = distinct + 1.0
    precision = true_positives / predicted_positives
    recall = true_positives / n_positive
    thresholds = sorted_scores[distinct]
    return precision, recall, thresholds


def pr_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the precision-recall curve (average precision)."""
    precision, recall, _ = precision_recall_curve(y_true, scores)
    recall = np.concatenate(([0.0], recall))
    return float(np.sum(np.diff(recall) * precision))


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve, via the Mann-Whitney U statistic."""
    y_true, scores = _validate_binary_scores(y_true, scores)
    n_positive = int(y_true.sum())
    n_negative = int(len(y_true) - n_positive)
    if n_positive == 0 or n_negative == 0:
        raise ValueError("ROC-AUC requires both positive and negative labels")
    # Average ranks (ties shared) of the positive scores.
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=float)
    sorted_scores = scores[order]
    index = 0
    while index < len(scores):
        tie_end = index
        while tie_end + 1 < len(scores) and sorted_scores[tie_end + 1] == sorted_scores[index]:
            tie_end += 1
        ranks[order[index: tie_end + 1]] = 0.5 * (index + tie_end) + 1.0
        index = tie_end + 1
    positive_rank_sum = ranks[y_true == 1].sum()
    u_statistic = positive_rank_sum - n_positive * (n_positive + 1) / 2.0
    return float(u_statistic / (n_positive * n_negative))


def harmonic_mean(first: float, second: float) -> float:
    """The paper's combined score ``F(Type1, Type2)`` (Figure 9(a.3)/(b.3))."""
    if first < 0 or second < 0:
        raise ValueError("harmonic mean requires non-negative values")
    if first + second == 0:
        return 0.0
    return 2.0 * first * second / (first + second)
