"""Discriminant-features identification accuracy (Dr-acc) — Section 5.1.2.

Dr-acc is the PR-AUC between an explanation heatmap (CAM, cCAM, dCAM or
MTEX-grad) and the ground-truth mask marking the injected discriminant
subsequences.  The heatmap values act as the detection scores and the mask
(flattened over dimensions and time) as the binary labels.

For the plain architectures, whose CAM is univariate, the paper assumes that
the CAM value applies to every dimension (see
:func:`repro.core.cam.cam_as_multivariate`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .metrics import pr_auc


def dr_acc(explanation: np.ndarray, ground_truth: np.ndarray) -> float:
    """PR-AUC of an explanation heatmap against a 0/1 ground-truth mask.

    Parameters
    ----------
    explanation:
        Heatmap of shape ``(D, n)`` (or ``(n,)`` for a univariate CAM that
        should already have been broadcast to all dimensions).
    ground_truth:
        Mask of the same shape with 1 at discriminant positions.
    """
    explanation = np.asarray(explanation, dtype=np.float64)
    ground_truth = np.asarray(ground_truth, dtype=np.float64)
    if explanation.shape != ground_truth.shape:
        raise ValueError(
            f"explanation shape {explanation.shape} does not match "
            f"ground truth shape {ground_truth.shape}"
        )
    if ground_truth.sum() == 0:
        raise ValueError("ground truth contains no discriminant positions")
    return pr_auc(ground_truth.ravel(), explanation.ravel())


def dr_acc_batch(explanations: Sequence[np.ndarray], ground_truths: Sequence[np.ndarray]) -> float:
    """Average Dr-acc over several instances (the paper averages 50 instances)."""
    if len(explanations) != len(ground_truths):
        raise ValueError("explanations and ground truths must align")
    if len(explanations) == 0:
        raise ValueError("empty batch")
    scores = [dr_acc(explanation, mask) for explanation, mask in zip(explanations, ground_truths)]
    return float(np.mean(scores))


def random_baseline_dr_acc(ground_truth: np.ndarray,
                           rng: Optional[np.random.Generator] = None,
                           repeats: int = 10) -> float:
    """Dr-acc of a random explanation (the "Random" column of Table 3).

    In expectation this equals the fraction of positions that are
    discriminant, which is the floor any useful explanation must beat.
    """
    rng = rng or np.random.default_rng(0)
    ground_truth = np.asarray(ground_truth, dtype=np.float64)
    scores = []
    for _ in range(repeats):
        random_scores = rng.random(ground_truth.shape)
        scores.append(dr_acc(random_scores, ground_truth))
    return float(np.mean(scores))
