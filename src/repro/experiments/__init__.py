"""Experiment drivers regenerating every table and figure of the paper.

Every driver is a thin spec-builder + result-assembler over the
:mod:`repro.runtime` job-graph API: ``<name>_spec(...)`` describes the sweep
as frozen work units, ``run_<name>(..., executor=..., cache=...)`` evaluates
it (serially by default, or on a process pool) and reassembles the paper's
tables/figures.  The work functions behind the unit kinds live in
:mod:`repro.experiments.units`.
"""

from .ablation import (
    AblationResult,
    EXTRACTION_VARIANTS,
    extract_variant,
    extraction_ablation_spec,
    ng_filter_ablation_spec,
    run_extraction_ablation,
    run_ng_filter_ablation,
)
from .config import ExperimentScale, get_scale, paper_scale, small_scale, tiny_scale
from .figure8 import FIGURE8_PAIRS, Figure8Result, run_figure8
from .figure9 import Figure9Result, run_figure9
from .figure10 import Figure10Result, figure10_spec, run_figure10
from .figure11 import Figure11Point, Figure11Result, figure11_spec, run_figure11
from .figure12 import Figure12Result, figure12_spec, run_figure12
from .figure13 import Figure13Result, figure13_spec, run_figure13
from .reporting import format_series, format_table
from .table2 import Table2Result, run_table2, table2_spec
from .table3 import Table3Result, Table3Row, run_table3, table3_spec

__all__ = [
    "ExperimentScale",
    "get_scale",
    "tiny_scale",
    "small_scale",
    "paper_scale",
    "format_table",
    "format_series",
    "Table2Result",
    "run_table2",
    "table2_spec",
    "Table3Result",
    "Table3Row",
    "run_table3",
    "table3_spec",
    "figure10_spec",
    "figure11_spec",
    "figure12_spec",
    "figure13_spec",
    "extraction_ablation_spec",
    "ng_filter_ablation_spec",
    "FIGURE8_PAIRS",
    "Figure8Result",
    "run_figure8",
    "Figure9Result",
    "run_figure9",
    "Figure10Result",
    "run_figure10",
    "Figure11Point",
    "Figure11Result",
    "run_figure11",
    "Figure12Result",
    "run_figure12",
    "Figure13Result",
    "run_figure13",
    "AblationResult",
    "EXTRACTION_VARIANTS",
    "extract_variant",
    "run_extraction_ablation",
    "run_ng_filter_ablation",
]
