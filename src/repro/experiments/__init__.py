"""Experiment drivers regenerating every table and figure of the paper."""

from .ablation import (
    AblationResult,
    EXTRACTION_VARIANTS,
    extract_variant,
    run_extraction_ablation,
    run_ng_filter_ablation,
)
from .config import ExperimentScale, get_scale, paper_scale, small_scale, tiny_scale
from .figure8 import FIGURE8_PAIRS, Figure8Result, run_figure8
from .figure9 import Figure9Result, run_figure9
from .figure10 import Figure10Result, run_figure10
from .figure11 import Figure11Point, Figure11Result, run_figure11
from .figure12 import Figure12Result, run_figure12
from .figure13 import Figure13Result, run_figure13
from .reporting import format_series, format_table
from .table2 import Table2Result, run_table2
from .table3 import Table3Result, Table3Row, run_table3

__all__ = [
    "ExperimentScale",
    "get_scale",
    "tiny_scale",
    "small_scale",
    "paper_scale",
    "format_table",
    "format_series",
    "Table2Result",
    "run_table2",
    "Table3Result",
    "Table3Row",
    "run_table3",
    "FIGURE8_PAIRS",
    "Figure8Result",
    "run_figure8",
    "Figure9Result",
    "run_figure9",
    "Figure10Result",
    "run_figure10",
    "Figure11Point",
    "Figure11Result",
    "run_figure11",
    "Figure12Result",
    "run_figure12",
    "Figure13Result",
    "run_figure13",
    "AblationResult",
    "EXTRACTION_VARIANTS",
    "extract_variant",
    "run_extraction_ablation",
    "run_ng_filter_ablation",
]
