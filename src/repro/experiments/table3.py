"""Table 3: C-acc and Dr-acc on the synthetic Type 1 / Type 2 benchmarks.

For every (seed dataset, type, number of dimensions) combination, train the
selected architectures, measure the classification accuracy on a freshly
generated test dataset, and measure the discriminant-feature identification
accuracy (Dr-acc, PR-AUC against the injected-pattern ground truth) of the
architecture's explanation method (CAM, cCAM, dCAM or MTEX-grad).  The
"Random" column reports the Dr-acc of random scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


from ..eval.ranking import average_ranks
from ..runtime import ExperimentSpec, ResultCache, WorkUnit
from ..runtime import run as run_spec
from ..runtime.executor import Executor
from .config import ExperimentScale, get_scale
from .reporting import format_table
from .runner import averaged_over_runs


@dataclass
class Table3Row:
    """One row of Table 3: a (seed, type, D) configuration."""

    seed_name: str
    dataset_type: int
    n_dimensions: int
    c_acc: Dict[str, float] = field(default_factory=dict)
    dr_acc: Dict[str, float] = field(default_factory=dict)
    success_ratio: Dict[str, float] = field(default_factory=dict)
    random_dr_acc: float = float("nan")


@dataclass
class Table3Result:
    rows: List[Table3Row] = field(default_factory=list)
    models: List[str] = field(default_factory=list)

    def c_acc_ranks(self) -> Dict[str, float]:
        return average_ranks([row.c_acc for row in self.rows])

    def dr_acc_ranks(self) -> Dict[str, float]:
        return average_ranks([row.dr_acc for row in self.rows])

    def as_rows(self) -> List[Dict[str, object]]:
        formatted: List[Dict[str, object]] = []
        for row in self.rows:
            entry: Dict[str, object] = {
                "dataset": row.seed_name,
                "type": row.dataset_type,
                "dimensions": row.n_dimensions,
            }
            for model in self.models:
                entry[f"C-acc:{model}"] = row.c_acc.get(model, float("nan"))
            for model in self.models:
                entry[f"Dr-acc:{model}"] = row.dr_acc.get(model, float("nan"))
            entry["Dr-acc:random"] = row.random_dr_acc
            formatted.append(entry)
        return formatted

    def format(self) -> str:
        table = format_table(self.as_rows(),
                             title="Table 3 — C-acc and Dr-acc on synthetic datasets")
        rank_lines = [
            "",
            "C-acc average ranks:  "
            + ", ".join(f"{m}={r:.2f}" for m, r in sorted(self.c_acc_ranks().items())),
            "Dr-acc average ranks: "
            + ", ".join(f"{m}={r:.2f}" for m, r in sorted(self.dr_acc_ranks().items())),
        ]
        return table + "\n".join(rank_lines)


def _table3_options(scale, seeds, dimensions, models):
    """Resolve the defaulted option lists shared by spec builder and runner."""
    seeds = list(seeds or scale.synthetic_seeds)
    dimensions = list(dimensions or scale.dimension_sweep)
    models = list(models or scale.table3_models)
    return seeds, dimensions, models


def table3_spec(scale: Optional[ExperimentScale] = None,
                seeds: Optional[Sequence[str]] = None,
                dataset_types: Sequence[int] = (1, 2),
                dimensions: Optional[Sequence[int]] = None,
                models: Optional[Sequence[str]] = None,
                base_seed: int = 0) -> ExperimentSpec:
    """Declarative description of the Table 3 sweep.

    One ``synthetic_random_baseline`` unit per (seed dataset, type, D)
    configuration plus one ``synthetic_cell`` unit per (configuration, model,
    run).  The per-unit seeds (``config_seed = base_seed + 1000*seed_index +
    100*type + D``, ``run_seed = config_seed + run``) reproduce the legacy
    serial loops exactly, so any executor yields identical numbers.
    """
    scale = scale or get_scale("small")
    seeds, dimensions, models = _table3_options(scale, seeds, dimensions, models)
    units: List[WorkUnit] = []
    for seed_index, seed_name in enumerate(seeds):
        for dataset_type in dataset_types:
            for n_dimensions in dimensions:
                config_seed = base_seed + 1000 * seed_index + 100 * dataset_type + n_dimensions
                units.append(WorkUnit.create(
                    "synthetic_random_baseline", seed_name=seed_name,
                    dataset_type=dataset_type, n_dimensions=n_dimensions,
                    config_seed=config_seed))
                for model_name in models:
                    for run in range(scale.n_runs):
                        units.append(WorkUnit.create(
                            "synthetic_cell", seed_name=seed_name,
                            dataset_type=dataset_type, n_dimensions=n_dimensions,
                            model_name=model_name, config_seed=config_seed,
                            run_seed=config_seed + run))
    return ExperimentSpec(name="table3", scale=scale, units=tuple(units))


def run_table3(scale: Optional[ExperimentScale] = None,
               seeds: Optional[Sequence[str]] = None,
               dataset_types: Sequence[int] = (1, 2),
               dimensions: Optional[Sequence[int]] = None,
               models: Optional[Sequence[str]] = None,
               base_seed: int = 0,
               executor: Optional[Executor] = None,
               cache: Optional[ResultCache] = None) -> Table3Result:
    """Run the Table 3 experiment at the requested scale.

    ``executor`` selects where the (configuration, model, run) cells are
    evaluated (serial by default, a process pool via
    :class:`repro.runtime.ParallelExecutor`); ``cache`` reuses cells across
    drivers sharing this protocol (e.g. Figure 9).
    """
    scale = scale or get_scale("small")
    seeds, dimensions, models = _table3_options(scale, seeds, dimensions, models)
    spec = table3_spec(scale, seeds, dataset_types, dimensions, models, base_seed)
    results = iter(run_spec(spec, executor=executor, cache=cache))

    result = Table3Result(models=models)
    for seed_name in seeds:
        for dataset_type in dataset_types:
            for n_dimensions in dimensions:
                row = Table3Row(seed_name, dataset_type, n_dimensions)
                row.random_dr_acc = next(results)
                for model_name in models:
                    c_scores, d_scores, ratios = [], [], []
                    for _ in range(scale.n_runs):
                        cell = next(results)
                        c_scores.append(cell["c_acc"])
                        d_scores.append(cell["dr_acc"])
                        if cell["success_ratio"] is not None:
                            ratios.append(cell["success_ratio"])
                    row.c_acc[model_name] = averaged_over_runs(c_scores)
                    row.dr_acc[model_name] = averaged_over_runs(d_scores)
                    if ratios:
                        row.success_ratio[model_name] = averaged_over_runs(ratios)
                result.rows.append(row)
    return result
