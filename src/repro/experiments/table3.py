"""Table 3: C-acc and Dr-acc on the synthetic Type 1 / Type 2 benchmarks.

For every (seed dataset, type, number of dimensions) combination, train the
selected architectures, measure the classification accuracy on a freshly
generated test dataset, and measure the discriminant-feature identification
accuracy (Dr-acc, PR-AUC against the injected-pattern ground truth) of the
architecture's explanation method (CAM, cCAM, dCAM or MTEX-grad).  The
"Random" column reports the Dr-acc of random scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


from ..eval.ranking import average_ranks
from .config import ExperimentScale, get_scale
from .reporting import format_table
from .runner import (
    averaged_over_runs,
    classification_accuracy_of,
    explanation_accuracy_of,
    random_explanation_accuracy,
    synthetic_train_test,
    train_model,
)


@dataclass
class Table3Row:
    """One row of Table 3: a (seed, type, D) configuration."""

    seed_name: str
    dataset_type: int
    n_dimensions: int
    c_acc: Dict[str, float] = field(default_factory=dict)
    dr_acc: Dict[str, float] = field(default_factory=dict)
    success_ratio: Dict[str, float] = field(default_factory=dict)
    random_dr_acc: float = float("nan")


@dataclass
class Table3Result:
    rows: List[Table3Row] = field(default_factory=list)
    models: List[str] = field(default_factory=list)

    def c_acc_ranks(self) -> Dict[str, float]:
        return average_ranks([row.c_acc for row in self.rows])

    def dr_acc_ranks(self) -> Dict[str, float]:
        return average_ranks([row.dr_acc for row in self.rows])

    def as_rows(self) -> List[Dict[str, object]]:
        formatted: List[Dict[str, object]] = []
        for row in self.rows:
            entry: Dict[str, object] = {
                "dataset": row.seed_name,
                "type": row.dataset_type,
                "dimensions": row.n_dimensions,
            }
            for model in self.models:
                entry[f"C-acc:{model}"] = row.c_acc.get(model, float("nan"))
            for model in self.models:
                entry[f"Dr-acc:{model}"] = row.dr_acc.get(model, float("nan"))
            entry["Dr-acc:random"] = row.random_dr_acc
            formatted.append(entry)
        return formatted

    def format(self) -> str:
        table = format_table(self.as_rows(),
                             title="Table 3 — C-acc and Dr-acc on synthetic datasets")
        rank_lines = [
            "",
            "C-acc average ranks:  "
            + ", ".join(f"{m}={r:.2f}" for m, r in sorted(self.c_acc_ranks().items())),
            "Dr-acc average ranks: "
            + ", ".join(f"{m}={r:.2f}" for m, r in sorted(self.dr_acc_ranks().items())),
        ]
        return table + "\n".join(rank_lines)


def run_table3(scale: Optional[ExperimentScale] = None,
               seeds: Optional[Sequence[str]] = None,
               dataset_types: Sequence[int] = (1, 2),
               dimensions: Optional[Sequence[int]] = None,
               models: Optional[Sequence[str]] = None,
               base_seed: int = 0) -> Table3Result:
    """Run the Table 3 experiment at the requested scale."""
    scale = scale or get_scale("small")
    seeds = list(seeds or scale.synthetic_seeds)
    dimensions = list(dimensions or scale.dimension_sweep)
    models = list(models or scale.table3_models)
    result = Table3Result(models=models)
    for seed_index, seed_name in enumerate(seeds):
        for dataset_type in dataset_types:
            for n_dimensions in dimensions:
                row = Table3Row(seed_name, dataset_type, n_dimensions)
                config_seed = base_seed + 1000 * seed_index + 100 * dataset_type + n_dimensions
                train, test = synthetic_train_test(seed_name, dataset_type,
                                                   n_dimensions, scale, config_seed)
                row.random_dr_acc = random_explanation_accuracy(test, scale)
                for model_name in models:
                    c_scores, d_scores, ratios = [], [], []
                    for run in range(scale.n_runs):
                        run_seed = config_seed + run
                        model, _ = train_model(model_name, train, scale, random_state=run_seed)
                        c_scores.append(classification_accuracy_of(model, test))
                        dr_score, ratio = explanation_accuracy_of(model, model_name, test,
                                                                  scale, random_state=run_seed)
                        d_scores.append(dr_score)
                        if ratio is not None:
                            ratios.append(ratio)
                    row.c_acc[model_name] = averaged_over_runs(c_scores)
                    row.dr_acc[model_name] = averaged_over_runs(d_scores)
                    if ratios:
                        row.success_ratio[model_name] = averaged_over_runs(ratios)
                result.rows.append(row)
    return result
