"""Table 2: classification accuracy (C-acc) over the UCR/UEA archive.

For every dataset and every architecture (recurrent baselines, MTEX-CNN, the
plain CNN/ResNet/InceptionTime, their c-variants and their d-variants), train
the model and report the test C-acc, plus the per-method mean over datasets
and the average rank — exactly the rows of Table 2 of the paper (on the
simulated archive, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


from ..eval.ranking import average_ranks, mean_scores
from ..runtime import ExperimentSpec, ResultCache, WorkUnit
from ..runtime import run as run_spec
from ..runtime.executor import Executor
from .config import ExperimentScale, get_scale
from .reporting import format_table
from .runner import averaged_over_runs


@dataclass
class Table2Result:
    """C-acc per dataset per model, plus the aggregate rows."""

    accuracies: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metadata: Dict[str, Dict[str, int]] = field(default_factory=dict)
    models: List[str] = field(default_factory=list)

    @property
    def mean_row(self) -> Dict[str, float]:
        return mean_scores([self.accuracies[name] for name in self.accuracies])

    @property
    def rank_row(self) -> Dict[str, float]:
        return average_ranks([self.accuracies[name] for name in self.accuracies])

    def as_rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for dataset_name, scores in self.accuracies.items():
            row: Dict[str, object] = {"dataset": dataset_name}
            row.update(self.metadata.get(dataset_name, {}))
            row.update(scores)
            rows.append(row)
        mean_row: Dict[str, object] = {"dataset": "Mean"}
        mean_row.update(self.mean_row)
        rank_row: Dict[str, object] = {"dataset": "Rank"}
        rank_row.update(self.rank_row)
        rows.append(mean_row)
        rows.append(rank_row)
        return rows

    def format(self) -> str:
        columns = ["dataset", "classes", "length", "dimensions"] + list(self.models)
        return format_table(self.as_rows(), columns,
                            title="Table 2 — C-acc over (simulated) UCR/UEA datasets")


#: Representative UEA subset evaluated by default at reduced scales.
DEFAULT_TABLE2_DATASETS = ("BasicMotions", "RacketSports", "Epilepsy")


def _table2_options(scale, dataset_names, models):
    """Resolve the defaulted option lists shared by spec builder and runner."""
    models = list(models or scale.table2_models)
    dataset_names = list(dataset_names if dataset_names is not None
                         else DEFAULT_TABLE2_DATASETS)
    return dataset_names, models


def table2_spec(scale: Optional[ExperimentScale] = None,
                dataset_names: Optional[Sequence[str]] = None,
                models: Optional[Sequence[str]] = None,
                base_seed: int = 0) -> ExperimentSpec:
    """Declarative description of the Table 2 sweep.

    One ``uea_cell`` unit per (dataset, model, run) with the legacy seed
    derivations: the train/validation split is seeded ``base_seed +
    dataset_index``, each training run ``base_seed + 100*dataset_index + run``.
    """
    scale = scale or get_scale("small")
    dataset_names, models = _table2_options(scale, dataset_names, models)
    units: List[WorkUnit] = []
    for dataset_index, dataset_name in enumerate(dataset_names):
        for model_name in models:
            for run in range(scale.n_runs):
                units.append(WorkUnit.create(
                    "uea_cell", dataset_name=dataset_name, model_name=model_name,
                    split_seed=base_seed + dataset_index,
                    run_seed=base_seed + 100 * dataset_index + run))
    return ExperimentSpec(name="table2", scale=scale, units=tuple(units))


def run_table2(scale: Optional[ExperimentScale] = None,
               dataset_names: Optional[Sequence[str]] = None,
               models: Optional[Sequence[str]] = None,
               base_seed: int = 0,
               executor: Optional[Executor] = None,
               cache: Optional[ResultCache] = None) -> Table2Result:
    """Run the Table 2 experiment.

    Parameters
    ----------
    scale:
        Experiment scale (defaults to the ``small`` preset).
    dataset_names:
        UEA dataset names to include (defaults to a representative subset at
        reduced scales — pass :data:`repro.data.UEA_DATASET_NAMES` for all 23).
    models:
        Architectures to evaluate (defaults to the scale's ``table2_models``).
    executor, cache:
        Where cells run and whether they are reused — see
        :func:`repro.runtime.run`.
    """
    scale = scale or get_scale("small")
    dataset_names, models = _table2_options(scale, dataset_names, models)
    spec = table2_spec(scale, dataset_names, models, base_seed)
    results = iter(run_spec(spec, executor=executor, cache=cache))

    result = Table2Result(models=models)
    for dataset_name in dataset_names:
        scores: Dict[str, float] = {}
        for model_name in models:
            run_scores = []
            for _ in range(scale.n_runs):
                cell = next(results)
                run_scores.append(cell["c_acc"])
                result.metadata.setdefault(dataset_name, cell["metadata"])
            scores[model_name] = averaged_over_runs(run_scores)
        result.accuracies[dataset_name] = scores
    return result
