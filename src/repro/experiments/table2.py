"""Table 2: classification accuracy (C-acc) over the UCR/UEA archive.

For every dataset and every architecture (recurrent baselines, MTEX-CNN, the
plain CNN/ResNet/InceptionTime, their c-variants and their d-variants), train
the model and report the test C-acc, plus the per-method mean over datasets
and the average rank — exactly the rows of Table 2 of the paper (on the
simulated archive, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


from ..data.splits import train_validation_split
from ..data.uea import make_uea_dataset
from ..eval.ranking import average_ranks, mean_scores
from .config import ExperimentScale, get_scale
from .reporting import format_table
from .runner import averaged_over_runs, classification_accuracy_of, train_model


@dataclass
class Table2Result:
    """C-acc per dataset per model, plus the aggregate rows."""

    accuracies: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metadata: Dict[str, Dict[str, int]] = field(default_factory=dict)
    models: List[str] = field(default_factory=list)

    @property
    def mean_row(self) -> Dict[str, float]:
        return mean_scores([self.accuracies[name] for name in self.accuracies])

    @property
    def rank_row(self) -> Dict[str, float]:
        return average_ranks([self.accuracies[name] for name in self.accuracies])

    def as_rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for dataset_name, scores in self.accuracies.items():
            row: Dict[str, object] = {"dataset": dataset_name}
            row.update(self.metadata.get(dataset_name, {}))
            row.update(scores)
            rows.append(row)
        mean_row: Dict[str, object] = {"dataset": "Mean"}
        mean_row.update(self.mean_row)
        rank_row: Dict[str, object] = {"dataset": "Rank"}
        rank_row.update(self.rank_row)
        rows.append(mean_row)
        rows.append(rank_row)
        return rows

    def format(self) -> str:
        columns = ["dataset", "classes", "length", "dimensions"] + list(self.models)
        return format_table(self.as_rows(), columns,
                            title="Table 2 — C-acc over (simulated) UCR/UEA datasets")


def run_table2(scale: Optional[ExperimentScale] = None,
               dataset_names: Optional[Sequence[str]] = None,
               models: Optional[Sequence[str]] = None,
               base_seed: int = 0) -> Table2Result:
    """Run the Table 2 experiment.

    Parameters
    ----------
    scale:
        Experiment scale (defaults to the ``small`` preset).
    dataset_names:
        UEA dataset names to include (defaults to a representative subset at
        reduced scales — pass :data:`repro.data.UEA_DATASET_NAMES` for all 23).
    models:
        Architectures to evaluate (defaults to the scale's ``table2_models``).
    """
    scale = scale or get_scale("small")
    models = list(models or scale.table2_models)
    if dataset_names is None:
        dataset_names = ["BasicMotions", "RacketSports", "Epilepsy"]
    result = Table2Result(models=models)
    for dataset_index, dataset_name in enumerate(dataset_names):
        dataset = make_uea_dataset(dataset_name, scale.uea)
        train, test = train_validation_split(dataset, 0.75,
                                             random_state=base_seed + dataset_index)
        n_classes, length, n_dims = dataset.metadata["scaled_metadata"]
        result.metadata[dataset_name] = {
            "classes": n_classes, "length": length, "dimensions": n_dims,
        }
        scores: Dict[str, float] = {}
        for model_name in models:
            run_scores = []
            for run in range(scale.n_runs):
                seed = base_seed + 100 * dataset_index + run
                model, _ = train_model(model_name, train, scale, random_state=seed)
                run_scores.append(classification_accuracy_of(model, test))
            scores[model_name] = averaged_over_runs(run_scores)
        result.accuracies[dataset_name] = scores
    return result
