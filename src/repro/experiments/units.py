"""Work functions behind every experiment driver's :class:`WorkUnit` kinds.

Each function evaluates one self-contained cell of the paper's evaluation —
generate the dataset deterministically from the unit's config seed, train the
model with the unit's derived run seed, measure the metrics — and returns a
plain picklable result.  They are registered with
:func:`repro.runtime.register_work` so the runtime can evaluate them in the
calling process (:class:`~repro.runtime.SerialExecutor`) or in worker
processes (:class:`~repro.runtime.ParallelExecutor`) interchangeably.

Determinism contract: a work function must derive every RNG it uses from its
own parameters (``config_seed`` / ``run_seed`` / ``seed``), never from shared
or global state.  This is what makes serial and parallel execution produce
bit-identical numbers and what makes the unit fingerprint a sound cache key.

The seed derivations reproduce the legacy drivers' nested loops exactly:
``config_seed = base_seed + 1000*seed_index + 100*dataset_type + D`` for the
synthetic sweeps and ``run_seed = config_seed + run``, so results are
float-identical to the pre-runtime serial implementations.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Dict, Sequence, Tuple

import numpy as np

from ..data.jigsaws import JigsawsConfig
from ..data.splits import train_validation_split
from ..data.synthetic import SyntheticConfig, make_type1_dataset
from ..data.uea import make_uea_dataset
from ..eval.dr_acc import dr_acc
from ..explain.evaluation import evaluate_explainer, select_explainable_instances
from ..explain.registry import get_explainer
from ..models.base import TrainingConfig
from ..models.registry import create_model
from ..runtime.registry import register_work
from ..runtime.spec import scale_fingerprint_payload
from .ablation import EXTRACTION_VARIANTS, extract_variant
from .runner import (
    classification_accuracy_of,
    explanation_accuracy_of,
    random_explanation_accuracy,
    synthetic_train_test,
    train_model,
)


# ----------------------------------------------------------------------
# Per-process dataset memo: many units of one sweep share a configuration
# (the legacy loops generated each (train, test) pair once per config, then
# evaluated every model/run against it).  Generation is deterministic, so
# memoizing changes nothing numerically — it only removes redundant work
# within a worker process.  Keyed on the scale fingerprint + config params;
# small and FIFO-bounded because executors walk configurations in order.
_DATASET_MEMO: "OrderedDict[Tuple, Any]" = OrderedDict()
_DATASET_MEMO_SIZE = 4


def _memoized(key: Tuple, build) -> Any:
    value = _DATASET_MEMO.get(key)
    if value is None:
        value = build()
        _DATASET_MEMO[key] = value
        while len(_DATASET_MEMO) > _DATASET_MEMO_SIZE:
            _DATASET_MEMO.popitem(last=False)
    else:
        _DATASET_MEMO.move_to_end(key)
    return value


def _synthetic_pair(scale, seed_name: str, dataset_type: int, n_dimensions: int,
                    config_seed: int):
    key = ("synthetic", scale_fingerprint_payload(scale), seed_name,
           dataset_type, n_dimensions, config_seed)
    return _memoized(key, lambda: synthetic_train_test(
        seed_name, dataset_type, n_dimensions, scale, config_seed))


def _uea_pair(scale, dataset_name: str, split_seed: int):
    def build():
        dataset = make_uea_dataset(dataset_name, scale.uea)
        train, test = train_validation_split(dataset, 0.75, random_state=split_seed)
        return dataset, train, test

    key = ("uea", scale_fingerprint_payload(scale), dataset_name, split_seed)
    return _memoized(key, build)


@register_work("synthetic_cell")
def synthetic_cell(scale, *, seed_name: str, dataset_type: int, n_dimensions: int,
                   model_name: str, config_seed: int, run_seed: int,
                   target_class: int = 1) -> Dict[str, Any]:
    """One Table 3 / Figure 9 / Figure 11 cell: train + C-acc + Dr-acc.

    The (train, test) pair is regenerated deterministically from
    ``config_seed`` (memoized per process), so cells sharing a configuration
    agree with the legacy build-once-per-config loops bit for bit.
    """
    train, test = _synthetic_pair(scale, seed_name, dataset_type, n_dimensions,
                                  config_seed)
    model, _ = train_model(model_name, train, scale, random_state=run_seed)
    c_acc = classification_accuracy_of(model, test)
    dr_score, success_ratio = explanation_accuracy_of(
        model, model_name, test, scale, target_class=target_class,
        random_state=run_seed)
    return {"c_acc": c_acc, "dr_acc": dr_score, "success_ratio": success_ratio}


@register_work("synthetic_random_baseline")
def synthetic_random_baseline(scale, *, seed_name: str, dataset_type: int,
                              n_dimensions: int, config_seed: int,
                              target_class: int = 1) -> float:
    """Dr-acc of random scores on one synthetic configuration (Table 3 "Random")."""
    _, test = _synthetic_pair(scale, seed_name, dataset_type, n_dimensions,
                              config_seed)
    return random_explanation_accuracy(test, scale, target_class)


@register_work("uea_cell")
def uea_cell(scale, *, dataset_name: str, model_name: str, split_seed: int,
             run_seed: int) -> Dict[str, Any]:
    """One Table 2 / Figure 8 cell: train on a UEA dataset, measure C-acc."""
    dataset, train, test = _uea_pair(scale, dataset_name, split_seed)
    model, _ = train_model(model_name, train, scale, random_state=run_seed)
    n_classes, length, n_dims = dataset.metadata["scaled_metadata"]
    return {
        "c_acc": classification_accuracy_of(model, test),
        "metadata": {"classes": int(n_classes), "length": int(length),
                     "dimensions": int(n_dims)},
    }


@register_work("figure10_curve")
def figure10_curve(scale, *, seed_name: str, dataset_type: int, n_dimensions: int,
                   model_name: str, k_values: Sequence[int],
                   config_seed: int) -> Dict[str, Any]:
    """Train once, then re-evaluate Dr-acc at each permutation count ``k``.

    The per-``k`` evaluations share an in-memory
    :class:`~repro.serve.cache.ExplanationCache`: every evaluation seeds its
    permutation generator identically, so the ``k₁`` draw is a prefix of any
    ``k₂ > k₁`` draw and the dCAM explainer reuses the cached permutation
    CAMs — the sweep costs ``max(k)`` forwards per instance instead of
    ``sum(k)``, with bit-identical Dr-acc values (pinned by tests).
    """
    from ..serve.cache import ExplanationCache

    train, test = _synthetic_pair(scale, seed_name, dataset_type, n_dimensions,
                                  config_seed)
    model, _ = train_model(model_name, train, scale, random_state=config_seed)
    permutation_cams = ExplanationCache(max_memory_bytes=None)
    curve = [evaluate_explainer(model, test, scale, k=int(k),
                                random_state=config_seed,
                                cache=permutation_cams).dr_acc
             for k in k_values]
    return {"dr_acc": curve}


@register_work("trained_model_state")
def trained_model_state(scale, *, seed_name: str, dataset_type: int,
                        n_dimensions: int, model_name: str,
                        config_seed: int) -> Dict[str, Any]:
    """Train one model and return its full serialisable state (no metrics).

    The unit behind ``python -m repro export-model``: its result — the state
    dict plus the problem shape and a content fingerprint of the training
    data — is everything the serving layer's artifact store needs, and it is
    cached by the runtime :class:`~repro.runtime.ResultCache` like any other
    unit, so re-exporting (or exporting after a sweep already trained the
    configuration) performs no training at all.
    """
    from ..serve.cache import content_key

    train, _ = _synthetic_pair(scale, seed_name, dataset_type, n_dimensions,
                               config_seed)
    model, history = train_model(model_name, train, scale, random_state=config_seed)
    return {
        "state": model.state_dict(),
        "training_mode": bool(model.training),
        "n_dimensions": int(train.n_dimensions),
        "length": int(train.length),
        "n_classes": int(train.n_classes),
        "dataset_fingerprint": content_key("synthetic-train", train.X, train.y),
        "epochs_run": int(history.epochs_run),
        "best_epoch": int(history.best_epoch),
    }


@register_work("figure12_epoch_time")
def figure12_epoch_time(scale, *, model_name: str, n_dimensions: int, length: int,
                        seed: int, n_instances: int = 8) -> float:
    """Wall-clock seconds for one training epoch on a synthetic dataset.

    Timed around the whole one-epoch ``fit`` call rather than via
    ``history.epoch_seconds``: the fused engine prepares inputs (including the
    D-dependent ``C(T)`` cube of the d-architectures) once *before* its epoch
    loop, so the inner-loop timer alone would drop exactly the input-pipeline
    cost whose scaling this figure reproduces.  The legacy loop pays the same
    cost inside its batches; the outer wall clock covers both fairly.
    """
    config = SyntheticConfig(n_dimensions=n_dimensions,
                             n_instances_per_class=n_instances // 2,
                             series_length=length,
                             seed_instance_length=max(8, length // 4),
                             pattern_length=max(4, length // 8), random_state=seed)
    dataset = make_type1_dataset(config)
    rng = np.random.default_rng(seed)
    model = create_model(model_name, dataset.n_dimensions, dataset.length,
                         dataset.n_classes, rng=rng, **scale.model_kwargs(model_name))
    training = TrainingConfig(epochs=1, batch_size=scale.training.batch_size,
                              learning_rate=scale.training.learning_rate,
                              patience=10, random_state=seed,
                              engine=scale.training.engine)
    start = time.perf_counter()
    model.fit(dataset.X, dataset.y, config=training)
    return time.perf_counter() - start


@register_work("figure12_dcam_time")
def figure12_dcam_time(scale, *, model_name: str, n_dimensions: int, length: int,
                       k: int, seed: int) -> float:
    """Wall-clock seconds of one dCAM computation on an untrained d-model."""
    rng = np.random.default_rng(seed)
    series = rng.standard_normal((n_dimensions, length))
    model = create_model(model_name, n_dimensions, length, 2, rng=rng,
                         **scale.model_kwargs(model_name))
    explainer = get_explainer(model, k=k, rng=rng,
                              batch_size=scale.dcam_batch_size)
    start = time.perf_counter()
    explainer.explain(series, 0)
    return time.perf_counter() - start


@register_work("figure12_convergence")
def figure12_convergence(scale, *, model_name: str, n_dimensions: int,
                         seed_name: str = "shapes", dataset_type: int = 1,
                         base_seed: int = 0) -> Dict[str, Any]:
    """Epochs / seconds for a training run to reach 90% of its best loss."""
    train, _ = _synthetic_pair(scale, seed_name, dataset_type, n_dimensions,
                               base_seed)
    _, history = train_model(model_name, train, scale, random_state=base_seed)
    epochs_needed = history.epochs_to_fraction_of_best(0.9)
    # prepare_seconds is the engine's hoisted input-pipeline cost (the legacy
    # loop pays it inside the epochs); reaching any epoch requires it.
    seconds = float(history.prepare_seconds
                    + np.sum(history.epoch_seconds[:epochs_needed]))
    return {
        "model": model_name,
        "epochs_to_90pct": epochs_needed,
        "seconds_to_90pct": seconds,
        "epochs_run": history.epochs_run,
    }


@register_work("figure13_usecase")
def figure13_usecase(scale, *, jigsaws: Dict[str, Any], model_name: str,
                     top_k_sensors: int, top_k_gestures: int, base_seed: int):
    """The whole surgeon-skill use case (one coarse unit; see figure13.py)."""
    from .figure13 import compute_figure13

    return compute_figure13(scale, JigsawsConfig(**jigsaws), model_name,
                            top_k_sensors, top_k_gestures, base_seed)


@register_work("ablation_extraction_cell")
def ablation_extraction_cell(scale, *, seed_name: str, dataset_type: int,
                             n_dimensions: int, model_name: str,
                             config_seed: int) -> Dict[str, Any]:
    """Dr-acc of the three dCAM extraction rules on one configuration."""
    train, test = _synthetic_pair(scale, seed_name, dataset_type, n_dimensions,
                                  config_seed)
    model, _ = train_model(model_name, train, scale, random_state=config_seed)
    indices = select_explainable_instances(test, target_class=1,
                                           n_instances=scale.n_explained_instances)
    scores: Dict[str, list] = {variant: [] for variant in EXTRACTION_VARIANTS}
    explainer = get_explainer(model, k=scale.k_permutations,
                              rng=np.random.default_rng(config_seed),
                              batch_size=scale.dcam_batch_size)
    # Per-instance explain keeps only one (D, D, n) M̄ payload alive at a
    # time; the draws come off the shared generator in sequence, so the
    # results match the batch engine exactly.
    for index in indices:
        explanation = explainer.explain(test.X[index], int(test.y[index]))
        for variant in EXTRACTION_VARIANTS:
            heatmap = extract_variant(explanation.details.m_bar, variant)
            scores[variant].append(dr_acc(heatmap, test.ground_truth[index]))
    row: Dict[str, Any] = {"dataset": f"{seed_name}-type{dataset_type}-D{n_dimensions}",
                           "model": model_name}
    for variant in EXTRACTION_VARIANTS:
        row[variant] = float(np.mean(scores[variant]))
    return row


@register_work("ablation_ng_filter_cell")
def ablation_ng_filter_cell(scale, *, seed_name: str, dataset_type: int,
                            n_dimensions: int, model_name: str,
                            config_seed: int) -> Dict[str, Any]:
    """All-permutations vs only-correct averaging on one configuration."""
    train, test = _synthetic_pair(scale, seed_name, dataset_type, n_dimensions,
                                  config_seed)
    model, _ = train_model(model_name, train, scale, random_state=config_seed)
    indices = select_explainable_instances(test, target_class=1,
                                           n_instances=scale.n_explained_instances)
    all_scores, correct_scores, ratios = [], [], []
    for index in indices:
        # Fresh generators so both variants see the same permutations on
        # every instance (the ablated quantity is the filter, not the draw).
        explanation_all = get_explainer(
            model, k=scale.k_permutations, rng=np.random.default_rng(config_seed),
            batch_size=scale.dcam_batch_size, use_only_correct=False,
        ).explain(test.X[index], int(test.y[index]))
        explanation_correct = get_explainer(
            model, k=scale.k_permutations, rng=np.random.default_rng(config_seed),
            batch_size=scale.dcam_batch_size, use_only_correct=True,
        ).explain(test.X[index], int(test.y[index]))
        all_scores.append(dr_acc(explanation_all.heatmap, test.ground_truth[index]))
        correct_scores.append(dr_acc(explanation_correct.heatmap,
                                     test.ground_truth[index]))
        ratios.append(explanation_all.success_ratio)
    return {
        "dataset": f"{seed_name}-type{dataset_type}-D{n_dimensions}",
        "model": model_name,
        "all_permutations": float(np.mean(all_scores)),
        "only_correct": float(np.mean(correct_scores)),
        "ng/k": float(np.mean(ratios)),
    }


__all__ = [
    "synthetic_cell",
    "synthetic_random_baseline",
    "uea_cell",
    "figure10_curve",
    "trained_model_state",
    "figure12_epoch_time",
    "figure12_dcam_time",
    "figure12_convergence",
    "figure13_usecase",
    "ablation_extraction_cell",
    "ablation_ng_filter_cell",
]
