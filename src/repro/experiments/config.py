"""Experiment scales: paper-faithful parameters and reduced CPU presets.

Every experiment driver takes an :class:`ExperimentScale`.  The ``paper``
preset records the parameters reported in Section 5 of the paper (for
reference and for users with large compute budgets); the ``small`` and
``tiny`` presets shrink model width, dataset size and number of runs so the
full benchmark suite completes on a laptop CPU in minutes while preserving the
comparative shapes the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..core.dcam import DEFAULT_BATCH_SIZE
from ..data.synthetic import SyntheticConfig
from ..data.uea import UEASimulationConfig
from ..models.base import TrainingConfig
from ..models.registry import kwargs_family_of_model


@dataclass
class ExperimentScale:
    """All knobs that trade fidelity for runtime."""

    name: str = "small"
    #: Number of train/evaluate repetitions (the paper uses 10).
    n_runs: int = 1
    #: Number of random permutations for dCAM (the paper uses 100).
    k_permutations: int = 20
    #: Permuted cubes per forward pass in the batched dCAM pipeline.  A
    #: speed / peak-memory trade-off; results agree across values to float
    #: round-off (≤ 1e-10).
    dcam_batch_size: int = DEFAULT_BATCH_SIZE
    #: Number of test instances explained when measuring Dr-acc (paper: 50).
    n_explained_instances: int = 5
    #: Dimension counts swept in Table 3 / Figure 9 (paper: 10..100).
    dimension_sweep: Tuple[int, ...] = (6, 10)
    #: Seeds datasets used for the synthetic benchmarks (paper adds "fish").
    synthetic_seeds: Tuple[str, ...] = ("starlight", "shapes")
    #: Architectures evaluated by default in each experiment group.
    table2_models: Tuple[str, ...] = (
        "rnn", "gru", "lstm", "mtex", "cnn", "resnet", "inceptiontime",
        "ccnn", "cresnet", "cinceptiontime", "dcnn", "dresnet", "dinceptiontime",
    )
    table3_models: Tuple[str, ...] = ("mtex", "resnet", "cresnet", "dcnn", "dresnet", "dinceptiontime")
    training: TrainingConfig = field(default_factory=TrainingConfig)
    uea: UEASimulationConfig = field(default_factory=UEASimulationConfig)
    synthetic: SyntheticConfig = field(default_factory=SyntheticConfig)
    #: Per-family constructor keyword arguments (model width).
    cnn_kwargs: Dict = field(default_factory=dict)
    resnet_kwargs: Dict = field(default_factory=dict)
    inception_kwargs: Dict = field(default_factory=dict)
    recurrent_kwargs: Dict = field(default_factory=dict)
    mtex_kwargs: Dict = field(default_factory=dict)

    def model_kwargs(self, model_name: str) -> Dict:
        """Constructor keyword arguments for ``model_name`` at this scale.

        Dispatches on the ``kwargs_family`` the architecture class declares
        in the model registry (no string-suffix heuristics).
        """
        family = kwargs_family_of_model(model_name)
        per_family = {
            "cnn": self.cnn_kwargs,
            "resnet": self.resnet_kwargs,
            "inception": self.inception_kwargs,
            "recurrent": self.recurrent_kwargs,
            "mtex": self.mtex_kwargs,
        }
        return dict(per_family.get(family, {}))

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


def tiny_scale(random_state: Optional[int] = 0) -> ExperimentScale:
    """Smallest usable scale: used by the test suite and pytest benchmarks."""
    return ExperimentScale(
        name="tiny",
        n_runs=1,
        k_permutations=16,
        n_explained_instances=3,
        dimension_sweep=(4, 6),
        synthetic_seeds=("starlight",),
        table2_models=("gru", "cnn", "resnet", "ccnn", "dcnn", "dresnet"),
        table3_models=("resnet", "cresnet", "dcnn", "dresnet"),
        training=TrainingConfig(epochs=20, batch_size=8, learning_rate=3e-3,
                                patience=20, random_state=random_state),
        uea=UEASimulationConfig(instances_per_class=8, max_length=32,
                                max_dimensions=4, max_classes=3,
                                random_state=random_state),
        synthetic=SyntheticConfig(n_dimensions=4, n_instances_per_class=16,
                                  series_length=48, seed_instance_length=24,
                                  pattern_length=12, random_state=random_state),
        cnn_kwargs={"filters": (8, 16)},
        resnet_kwargs={"filters": (8, 16)},
        inception_kwargs={"depth": 2, "n_filters": 4},
        recurrent_kwargs={"hidden_size": 16},
        mtex_kwargs={"block1_filters": (4, 8), "block2_filters": 8, "hidden_units": 16},
    )


def small_scale(random_state: Optional[int] = 0) -> ExperimentScale:
    """Laptop-scale preset: minutes per experiment, preserves trends."""
    return ExperimentScale(
        name="small",
        n_runs=2,
        k_permutations=30,
        n_explained_instances=5,
        dimension_sweep=(6, 10, 20),
        synthetic_seeds=("starlight", "shapes"),
        training=TrainingConfig(epochs=30, batch_size=8, learning_rate=2e-3,
                                patience=10, random_state=random_state),
        uea=UEASimulationConfig(instances_per_class=10, max_length=64,
                                max_dimensions=8, max_classes=5,
                                random_state=random_state),
        synthetic=SyntheticConfig(n_dimensions=10, n_instances_per_class=20,
                                  series_length=96, seed_instance_length=32,
                                  pattern_length=24, random_state=random_state),
        cnn_kwargs={"filters": (16, 32, 32)},
        resnet_kwargs={"filters": (16, 32)},
        inception_kwargs={"depth": 3, "n_filters": 8},
        recurrent_kwargs={"hidden_size": 32},
        mtex_kwargs={"block1_filters": (8, 16), "block2_filters": 16, "hidden_units": 32},
    )


def paper_scale(random_state: Optional[int] = 0) -> ExperimentScale:
    """The paper's parameters (Section 5.2) — requires GPU-class compute."""
    return ExperimentScale(
        name="paper",
        n_runs=10,
        k_permutations=100,
        n_explained_instances=50,
        dimension_sweep=(10, 20, 40, 60, 100),
        synthetic_seeds=("starlight", "shapes", "fish"),
        training=TrainingConfig(epochs=1000, batch_size=16, learning_rate=1e-5,
                                patience=50, random_state=random_state),
        uea=UEASimulationConfig(instances_per_class=50, max_length=None,
                                max_dimensions=None, max_classes=None,
                                random_state=random_state),
        synthetic=SyntheticConfig(n_dimensions=10, n_instances_per_class=100,
                                  series_length=400, seed_instance_length=100,
                                  pattern_length=100, random_state=random_state),
        cnn_kwargs={"filters": (64, 128, 256, 256, 256)},
        resnet_kwargs={"filters": (64, 64, 128)},
        inception_kwargs={"depth": 6, "n_filters": 32},
        recurrent_kwargs={"hidden_size": 128},
        mtex_kwargs={},
    )


SCALE_PRESETS = {
    "tiny": tiny_scale,
    "small": small_scale,
    "paper": paper_scale,
}


def get_scale(name: str = "small", random_state: Optional[int] = 0) -> ExperimentScale:
    """Look up a preset scale by name (``tiny``, ``small`` or ``paper``)."""
    if name not in SCALE_PRESETS:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(SCALE_PRESETS)}")
    return SCALE_PRESETS[name](random_state)
