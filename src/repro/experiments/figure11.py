"""Figure 11: relations between C-acc, Dr-acc and the ``n_g/k`` proxy.

Each point is one synthetic dataset configuration.  The paper shows, for
dCNN / dResNet / dInceptionTime, that (1) Dr-acc grows with C-acc, (2) Dr-acc
grows with ``n_g/k`` and (3) ``n_g/k`` grows roughly linearly with C-acc when
C-acc ≥ 0.7 — making ``n_g/k`` usable as a label-free proxy of explanation
quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..models.registry import models_with_explainer_family
from ..runtime import ExperimentSpec, ResultCache, WorkUnit
from ..runtime import run as run_spec
from ..runtime.executor import Executor
from .config import ExperimentScale, get_scale
from .reporting import format_table


@dataclass
class Figure11Point:
    """One scatter point: a (model, seed, type, D) configuration."""

    model: str
    seed_name: str
    dataset_type: int
    n_dimensions: int
    c_acc: float
    dr_acc: float
    success_ratio: float


@dataclass
class Figure11Result:
    points: List[Figure11Point] = field(default_factory=list)

    def points_for(self, model: str) -> List[Figure11Point]:
        return [point for point in self.points if point.model == model]

    def correlation(self, x_attribute: str, y_attribute: str,
                    model: Optional[str] = None) -> float:
        """Pearson correlation between two point attributes (e.g. c_acc, dr_acc)."""
        points = self.points_for(model) if model else self.points
        if len(points) < 2:
            return float("nan")
        x = np.asarray([getattr(point, x_attribute) for point in points])
        y = np.asarray([getattr(point, y_attribute) for point in points])
        if np.std(x) == 0 or np.std(y) == 0:
            return float("nan")
        return float(np.corrcoef(x, y)[0, 1])

    def as_rows(self) -> List[Dict[str, object]]:
        return [
            {
                "model": point.model,
                "dataset": f"{point.seed_name}-type{point.dataset_type}-D{point.n_dimensions}",
                "C-acc": point.c_acc,
                "Dr-acc": point.dr_acc,
                "ng/k": point.success_ratio,
            }
            for point in self.points
        ]

    def format(self) -> str:
        table = format_table(self.as_rows(),
                             title="Figure 11 — (C-acc, Dr-acc, ng/k) per configuration")
        models = sorted({point.model for point in self.points})
        lines = [""]
        for model in models:
            lines.append(
                f"{model}: corr(C-acc, Dr-acc)={self.correlation('c_acc', 'dr_acc', model):.2f}  "
                f"corr(ng/k, Dr-acc)={self.correlation('success_ratio', 'dr_acc', model):.2f}  "
                f"corr(C-acc, ng/k)={self.correlation('c_acc', 'success_ratio', model):.2f}"
            )
        return table + "\n".join(lines)


def _figure11_options(scale, models, seeds, dimensions):
    """Resolve the defaulted option lists shared by spec builder and runner."""
    models = list(models or models_with_explainer_family("dcam", scale.table3_models))
    seeds = list(seeds or scale.synthetic_seeds)
    dimensions = list(dimensions or scale.dimension_sweep)
    return models, seeds, dimensions


def figure11_spec(scale: Optional[ExperimentScale] = None,
                  models: Optional[Sequence[str]] = None,
                  seeds: Optional[Sequence[str]] = None,
                  dataset_types: Sequence[int] = (1, 2),
                  dimensions: Optional[Sequence[int]] = None,
                  base_seed: int = 0) -> ExperimentSpec:
    """One ``synthetic_cell`` unit per (seed, type, D, model) point.

    The units are the same kind (with ``run_seed == config_seed``) that
    Table 3 emits for its first run, so a shared cache makes the overlap
    free.
    """
    scale = scale or get_scale("small")
    models, seeds, dimensions = _figure11_options(scale, models, seeds, dimensions)
    units: List[WorkUnit] = []
    for seed_index, seed_name in enumerate(seeds):
        for dataset_type in dataset_types:
            for n_dimensions in dimensions:
                config_seed = base_seed + 1000 * seed_index + 100 * dataset_type + n_dimensions
                for model_name in models:
                    units.append(WorkUnit.create(
                        "synthetic_cell", seed_name=seed_name,
                        dataset_type=dataset_type, n_dimensions=n_dimensions,
                        model_name=model_name, config_seed=config_seed,
                        run_seed=config_seed))
    return ExperimentSpec(name="figure11", scale=scale, units=tuple(units))


def run_figure11(scale: Optional[ExperimentScale] = None,
                 models: Optional[Sequence[str]] = None,
                 seeds: Optional[Sequence[str]] = None,
                 dataset_types: Sequence[int] = (1, 2),
                 dimensions: Optional[Sequence[int]] = None,
                 base_seed: int = 0,
                 executor: Optional[Executor] = None,
                 cache: Optional[ResultCache] = None) -> Figure11Result:
    """Run the Figure 11 experiment (d-architectures only)."""
    scale = scale or get_scale("small")
    models, seeds, dimensions = _figure11_options(scale, models, seeds, dimensions)
    spec = figure11_spec(scale, models, seeds, dataset_types, dimensions, base_seed)
    results = iter(run_spec(spec, executor=executor, cache=cache))
    result = Figure11Result()
    for seed_name in seeds:
        for dataset_type in dataset_types:
            for n_dimensions in dimensions:
                for model_name in models:
                    cell = next(results)
                    ratio = cell["success_ratio"]
                    result.points.append(Figure11Point(
                        model=model_name,
                        seed_name=seed_name,
                        dataset_type=dataset_type,
                        n_dimensions=n_dimensions,
                        c_acc=cell["c_acc"],
                        dr_acc=cell["dr_acc"],
                        success_ratio=ratio if ratio is not None else float("nan"),
                    ))
    return result
