"""Figure 11: relations between C-acc, Dr-acc and the ``n_g/k`` proxy.

Each point is one synthetic dataset configuration.  The paper shows, for
dCNN / dResNet / dInceptionTime, that (1) Dr-acc grows with C-acc, (2) Dr-acc
grows with ``n_g/k`` and (3) ``n_g/k`` grows roughly linearly with C-acc when
C-acc ≥ 0.7 — making ``n_g/k`` usable as a label-free proxy of explanation
quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..models.registry import models_with_explainer_family
from .config import ExperimentScale, get_scale
from .reporting import format_table
from .runner import (
    classification_accuracy_of,
    explanation_accuracy_of,
    synthetic_train_test,
    train_model,
)


@dataclass
class Figure11Point:
    """One scatter point: a (model, seed, type, D) configuration."""

    model: str
    seed_name: str
    dataset_type: int
    n_dimensions: int
    c_acc: float
    dr_acc: float
    success_ratio: float


@dataclass
class Figure11Result:
    points: List[Figure11Point] = field(default_factory=list)

    def points_for(self, model: str) -> List[Figure11Point]:
        return [point for point in self.points if point.model == model]

    def correlation(self, x_attribute: str, y_attribute: str,
                    model: Optional[str] = None) -> float:
        """Pearson correlation between two point attributes (e.g. c_acc, dr_acc)."""
        points = self.points_for(model) if model else self.points
        if len(points) < 2:
            return float("nan")
        x = np.asarray([getattr(point, x_attribute) for point in points])
        y = np.asarray([getattr(point, y_attribute) for point in points])
        if np.std(x) == 0 or np.std(y) == 0:
            return float("nan")
        return float(np.corrcoef(x, y)[0, 1])

    def as_rows(self) -> List[Dict[str, object]]:
        return [
            {
                "model": point.model,
                "dataset": f"{point.seed_name}-type{point.dataset_type}-D{point.n_dimensions}",
                "C-acc": point.c_acc,
                "Dr-acc": point.dr_acc,
                "ng/k": point.success_ratio,
            }
            for point in self.points
        ]

    def format(self) -> str:
        table = format_table(self.as_rows(),
                             title="Figure 11 — (C-acc, Dr-acc, ng/k) per configuration")
        models = sorted({point.model for point in self.points})
        lines = [""]
        for model in models:
            lines.append(
                f"{model}: corr(C-acc, Dr-acc)={self.correlation('c_acc', 'dr_acc', model):.2f}  "
                f"corr(ng/k, Dr-acc)={self.correlation('success_ratio', 'dr_acc', model):.2f}  "
                f"corr(C-acc, ng/k)={self.correlation('c_acc', 'success_ratio', model):.2f}"
            )
        return table + "\n".join(lines)


def run_figure11(scale: Optional[ExperimentScale] = None,
                 models: Optional[Sequence[str]] = None,
                 seeds: Optional[Sequence[str]] = None,
                 dataset_types: Sequence[int] = (1, 2),
                 dimensions: Optional[Sequence[int]] = None,
                 base_seed: int = 0) -> Figure11Result:
    """Run the Figure 11 experiment (d-architectures only)."""
    scale = scale or get_scale("small")
    models = list(models or models_with_explainer_family("dcam", scale.table3_models))
    seeds = list(seeds or scale.synthetic_seeds)
    dimensions = list(dimensions or scale.dimension_sweep)
    result = Figure11Result()
    for seed_index, seed_name in enumerate(seeds):
        for dataset_type in dataset_types:
            for n_dimensions in dimensions:
                config_seed = base_seed + 1000 * seed_index + 100 * dataset_type + n_dimensions
                train, test = synthetic_train_test(seed_name, dataset_type,
                                                   n_dimensions, scale, config_seed)
                for model_name in models:
                    model, _ = train_model(model_name, train, scale, random_state=config_seed)
                    c_acc = classification_accuracy_of(model, test)
                    dr_score, ratio = explanation_accuracy_of(model, model_name, test,
                                                              scale, random_state=config_seed)
                    result.points.append(Figure11Point(
                        model=model_name,
                        seed_name=seed_name,
                        dataset_type=dataset_type,
                        n_dimensions=n_dimensions,
                        c_acc=c_acc,
                        dr_acc=dr_score,
                        success_ratio=ratio if ratio is not None else float("nan"),
                    ))
    return result
