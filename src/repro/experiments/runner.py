"""Shared helpers used by all experiment drivers."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..data.datasets import MultivariateDataset
from ..data.synthetic import SyntheticConfig, make_dataset
from ..eval.dr_acc import random_baseline_dr_acc
from ..eval.protocol import fit_on_dataset
from ..explain.evaluation import evaluate_explainer, select_explainable_instances
from ..models.base import BaseClassifier, TrainingHistory
from ..models.registry import create_model
from .config import ExperimentScale


def train_model(model_name: str, dataset: MultivariateDataset, scale: ExperimentScale,
                random_state: Optional[int] = None) -> Tuple[BaseClassifier, TrainingHistory]:
    """Instantiate ``model_name`` at the scale's width and train it on ``dataset``."""
    rng = np.random.default_rng(random_state)
    model = create_model(model_name, dataset.n_dimensions, dataset.length,
                         dataset.n_classes, rng=rng, **scale.model_kwargs(model_name))
    history = fit_on_dataset(model, dataset, scale.training, random_state=random_state)
    return model, history


def classification_accuracy_of(model: BaseClassifier, test: MultivariateDataset) -> float:
    """C-acc of a trained model on a held-out dataset."""
    return model.score(test.X, test.y)


def explanation_accuracy_of(model: BaseClassifier, model_name: str,
                            test: MultivariateDataset, scale: ExperimentScale,
                            target_class: int = 1,
                            random_state: Optional[int] = None
                            ) -> Tuple[float, Optional[float]]:
    """Average Dr-acc (and n_g/k for the dCAM family) on explained instances.

    Thin wrapper over :func:`repro.explain.evaluate_explainer` with the
    scale's knobs, kept for the legacy ``(dr_acc, success_ratio)`` return
    shape; ``model_name`` is no longer consulted (dispatch uses the model's
    ``explainer_family``).
    """
    report = evaluate_explainer(model, test, scale, target_class=target_class,
                                random_state=random_state)
    return report.as_tuple()


def random_explanation_accuracy(test: MultivariateDataset, scale: ExperimentScale,
                                target_class: int = 1) -> float:
    """Dr-acc of the random-scores baseline (Table 3's "Random" column)."""
    indices = select_explainable_instances(test, target_class,
                                           scale.n_explained_instances)
    scores = [random_baseline_dr_acc(test.ground_truth[index]) for index in indices]
    return float(np.mean(scores))


def synthetic_train_test(seed_name: str, dataset_type: int, n_dimensions: int,
                         scale: ExperimentScale, random_state: int = 0
                         ) -> Tuple[MultivariateDataset, MultivariateDataset]:
    """Build a (train, freshly generated test) pair of synthetic datasets.

    Mirrors the paper's protocol of generating a brand new test dataset for
    the synthetic benchmarks rather than holding out instances.
    """
    base = scale.synthetic
    train_config = SyntheticConfig(
        seed_name=seed_name,
        n_dimensions=n_dimensions,
        n_instances_per_class=base.n_instances_per_class,
        series_length=base.series_length,
        seed_instance_length=base.seed_instance_length,
        pattern_length=base.pattern_length,
        n_injections=base.n_injections,
        random_state=random_state,
    )
    test_config = SyntheticConfig(
        seed_name=seed_name,
        n_dimensions=n_dimensions,
        n_instances_per_class=max(4, base.n_instances_per_class // 2),
        series_length=base.series_length,
        seed_instance_length=base.seed_instance_length,
        pattern_length=base.pattern_length,
        n_injections=base.n_injections,
        random_state=random_state + 10_000,
    )
    return make_dataset(dataset_type, train_config), make_dataset(dataset_type, test_config)


def averaged_over_runs(values: List[float]) -> float:
    """Mean of a list of per-run metric values."""
    return float(np.mean(values)) if values else float("nan")
