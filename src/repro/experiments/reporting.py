"""Plain-text table / series formatting for experiment outputs.

Every experiment driver returns structured results *and* can render them as
aligned text tables matching the layout of the paper's tables and figure data
series, so the benchmark harness can simply print them.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None,
                 float_format: str = "{:.3f}", title: Optional[str] = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return title or "(empty table)"
    if columns is not None:
        columns = list(columns)
    else:
        # Ordered union of every row's keys: columns appearing only in later
        # rows (e.g. metrics measured for a subset of models) still render.
        seen: Dict[object, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key, None)
        columns = list(seen)

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered_rows = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(rendered[i]) for rendered in rendered_rows))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(rendered[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[float]], x_label: str,
                  x_values: Sequence[object], float_format: str = "{:.3f}",
                  title: Optional[str] = None) -> str:
    """Render one-figure data series: one row per x value, one column per series."""
    rows: List[Dict[str, object]] = []
    for index, x_value in enumerate(x_values):
        row: Dict[str, object] = {x_label: x_value}
        for name, values in series.items():
            row[name] = float(values[index]) if index < len(values) else float("nan")
        rows.append(row)
    return format_table(rows, [x_label] + list(series), float_format, title)
