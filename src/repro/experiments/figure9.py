"""Figure 9: influence of the number of dimensions on C-acc and Dr-acc.

Panels (a.1)/(a.2) plot the C-acc of every method on Type 1 / Type 2 synthetic
datasets as the number of dimensions grows; (b.1)/(b.2) do the same for
Dr-acc; (a.3)/(b.3) combine the Type 1 and Type 2 values with their harmonic
mean ``F``.  This driver reuses the Table 3 protocol and reorganises the
results into per-model series over the dimension sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..eval.metrics import harmonic_mean
from ..runtime import ResultCache
from ..runtime.executor import Executor
from .config import ExperimentScale, get_scale
from .reporting import format_series
from .table3 import Table3Result, run_table3


@dataclass
class Figure9Result:
    """Per-model series of C-acc / Dr-acc versus the number of dimensions."""

    dimensions: List[int] = field(default_factory=list)
    models: List[str] = field(default_factory=list)
    c_acc: Dict[int, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    dr_acc: Dict[int, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    table3: Optional[Table3Result] = None

    def series(self, metric: str, dataset_type: int) -> Dict[str, List[float]]:
        """Values of ``metric`` ("c_acc" or "dr_acc") per model across dimensions."""
        source = self.c_acc if metric == "c_acc" else self.dr_acc
        return {
            model: [source[dataset_type][model].get(str(dim), float("nan"))
                    for dim in self.dimensions]
            for model in self.models
        }

    def harmonic_series(self, metric: str) -> Dict[str, List[float]]:
        """Harmonic mean of the Type 1 and Type 2 values (panels a.3 / b.3)."""
        type1 = self.series(metric, 1)
        type2 = self.series(metric, 2)
        return {
            model: [harmonic_mean(max(type1[model][i], 0.0), max(type2[model][i], 0.0))
                    for i in range(len(self.dimensions))]
            for model in self.models
        }

    def format(self) -> str:
        blocks = []
        for dataset_type in (1, 2):
            blocks.append(format_series(self.series("c_acc", dataset_type), "D", self.dimensions,
                                        title=f"Figure 9(a.{dataset_type}) — C-acc, Type {dataset_type}"))
            blocks.append(format_series(self.series("dr_acc", dataset_type), "D", self.dimensions,
                                        title=f"Figure 9(b.{dataset_type}) — Dr-acc, Type {dataset_type}"))
        blocks.append(format_series(self.harmonic_series("c_acc"), "D", self.dimensions,
                                    title="Figure 9(a.3) — harmonic mean F of C-acc"))
        blocks.append(format_series(self.harmonic_series("dr_acc"), "D", self.dimensions,
                                    title="Figure 9(b.3) — harmonic mean F of Dr-acc"))
        return "\n\n".join(blocks)


def run_figure9(scale: Optional[ExperimentScale] = None,
                seed_name: str = "starlight",
                dimensions: Optional[Sequence[int]] = None,
                models: Optional[Sequence[str]] = None,
                base_seed: int = 0,
                executor: Optional[Executor] = None,
                cache: Optional[ResultCache] = None) -> Figure9Result:
    """Run the Figure 9 experiment.

    The driver emits the same ``synthetic_cell`` units as Table 3, so a
    shared ``cache`` from a prior :func:`run_table3` at matching settings
    turns the whole dimension sweep into cache hits.
    """
    scale = scale or get_scale("small")
    dimensions = list(dimensions or scale.dimension_sweep)
    models = list(models or scale.table3_models)
    table3 = run_table3(scale, seeds=[seed_name], dataset_types=(1, 2),
                        dimensions=dimensions, models=models, base_seed=base_seed,
                        executor=executor, cache=cache)
    result = Figure9Result(dimensions=dimensions, models=models, table3=table3)
    for dataset_type in (1, 2):
        result.c_acc[dataset_type] = {model: {} for model in models}
        result.dr_acc[dataset_type] = {model: {} for model in models}
    for row in table3.rows:
        for model in models:
            result.c_acc[row.dataset_type][model][str(row.n_dimensions)] = row.c_acc[model]
            result.dr_acc[row.dataset_type][model][str(row.n_dimensions)] = row.dr_acc[model]
    return result
