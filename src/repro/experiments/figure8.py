"""Figure 8: C-acc of the d-architectures vs their counterparts on UEA datasets.

The figure is a set of scatter plots: each point is a dataset, the y-coordinate
is the C-acc of the d-architecture (dCNN / dResNet / dInceptionTime) and the
x-coordinate the C-acc of the corresponding plain architecture, c-architecture
or MTEX-CNN.  Points above the diagonal mean the d-architecture wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime import ResultCache
from ..runtime.executor import Executor
from .config import ExperimentScale, get_scale
from .reporting import format_table
from .table2 import Table2Result, run_table2

#: The comparison pairs shown in the three panels of Figure 8.
FIGURE8_PAIRS: Dict[str, List[str]] = {
    "dcnn": ["cnn", "ccnn", "mtex"],
    "dresnet": ["resnet", "cresnet", "mtex"],
    "dinceptiontime": ["inceptiontime", "cinceptiontime", "mtex"],
}


@dataclass
class Figure8Result:
    """Scatter points (one per dataset) for each d-vs-baseline comparison."""

    points: Dict[Tuple[str, str], List[Tuple[str, float, float]]] = field(default_factory=dict)
    table2: Optional[Table2Result] = None

    def wins(self, d_model: str, baseline: str) -> int:
        """Number of datasets on which the d-architecture is strictly better."""
        return sum(1 for _, base_acc, d_acc in self.points[(d_model, baseline)]
                   if d_acc > base_acc)

    def as_rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for (d_model, baseline), points in self.points.items():
            for dataset, base_acc, d_acc in points:
                rows.append({
                    "comparison": f"{d_model} vs {baseline}",
                    "dataset": dataset,
                    baseline: base_acc,
                    d_model: d_acc,
                    "d_wins": d_acc > base_acc,
                })
        return rows

    def format(self) -> str:
        summary_rows = [
            {
                "comparison": f"{d_model} vs {baseline}",
                "datasets": len(points),
                "d_wins": self.wins(d_model, baseline),
            }
            for (d_model, baseline), points in self.points.items()
        ]
        return (
            format_table(self.as_rows(), title="Figure 8 — scatter points (C-acc pairs)")
            + "\n\n"
            + format_table(summary_rows, title="Figure 8 — wins per comparison")
        )


def run_figure8(scale: Optional[ExperimentScale] = None,
                dataset_names: Optional[Sequence[str]] = None,
                pairs: Optional[Dict[str, List[str]]] = None,
                base_seed: int = 0,
                executor: Optional[Executor] = None,
                cache: Optional[ResultCache] = None) -> Figure8Result:
    """Run the Figure 8 experiment (reuses the Table 2 protocol).

    With a shared ``cache``, the underlying ``uea_cell`` units are the same
    content-addressed work Table 2 emits, so a prior :func:`run_table2` at
    matching settings makes this driver train nothing.
    """
    scale = scale or get_scale("small")
    pairs = pairs or {
        d_model: [b for b in baselines if b in scale.table2_models or d_model in scale.table2_models]
        for d_model, baselines in FIGURE8_PAIRS.items()
        if d_model in scale.table2_models
    }
    needed_models = sorted({model for d_model, baselines in pairs.items()
                            for model in [d_model, *baselines]})
    table2 = run_table2(scale, dataset_names, models=needed_models, base_seed=base_seed,
                        executor=executor, cache=cache)
    result = Figure8Result(table2=table2)
    for d_model, baselines in pairs.items():
        for baseline in baselines:
            points = []
            for dataset, scores in table2.accuracies.items():
                if d_model in scores and baseline in scores:
                    points.append((dataset, scores[baseline], scores[d_model]))
            result.points[(d_model, baseline)] = points
    return result
