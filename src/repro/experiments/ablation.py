"""Ablations of dCAM design choices (DESIGN.md Section 5).

Two choices of the dCAM extraction step (Definition 3) are ablated:

* the **extraction rule** — the paper multiplies the per-position variance of
  ``M̄`` by the global average activation; the ablation compares against using
  only the variance or only the average;
* the **permutation filter** — whether ``M̄`` is averaged over all ``k``
  permutations or only over the ``n_g`` correctly-classified ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.dcam import extract_dcam
from ..eval.dr_acc import dr_acc
from ..explain.evaluation import select_explainable_instances
from ..explain.registry import get_explainer
from .config import ExperimentScale, get_scale
from .reporting import format_table
from .runner import synthetic_train_test, train_model

EXTRACTION_VARIANTS = ("variance_x_mean", "variance_only", "mean_only")


def extract_variant(m_bar: np.ndarray, variant: str) -> np.ndarray:
    """Apply one of the extraction variants to an averaged ``M̄`` tensor."""
    dcam, averaged_cam = extract_dcam(m_bar)
    if variant == "variance_x_mean":
        return dcam
    if variant == "variance_only":
        return m_bar.var(axis=1)
    if variant == "mean_only":
        return np.tile(averaged_cam, (m_bar.shape[0], 1))
    raise ValueError(f"unknown extraction variant {variant!r}")


@dataclass
class AblationResult:
    """Dr-acc per ablation variant and configuration."""

    rows: List[Dict[str, object]] = field(default_factory=list)

    def format(self, title: str) -> str:
        return format_table(self.rows, title=title)


def run_extraction_ablation(scale: Optional[ExperimentScale] = None,
                            seed_name: str = "starlight",
                            dataset_types: Sequence[int] = (1, 2),
                            model_name: str = "dcnn",
                            base_seed: int = 0) -> AblationResult:
    """Compare the three extraction rules on Type 1 / Type 2 datasets."""
    scale = scale or get_scale("small")
    n_dimensions = scale.dimension_sweep[0]
    result = AblationResult()
    for dataset_type in dataset_types:
        config_seed = base_seed + 100 * dataset_type
        train, test = synthetic_train_test(seed_name, dataset_type, n_dimensions,
                                           scale, config_seed)
        model, _ = train_model(model_name, train, scale, random_state=config_seed)
        indices = select_explainable_instances(test, target_class=1,
                                               n_instances=scale.n_explained_instances)
        scores: Dict[str, List[float]] = {variant: [] for variant in EXTRACTION_VARIANTS}
        explainer = get_explainer(model, k=scale.k_permutations,
                                  rng=np.random.default_rng(config_seed),
                                  batch_size=scale.dcam_batch_size)
        # Per-instance explain keeps only one (D, D, n) M̄ payload alive at a
        # time; the draws come off the shared generator in sequence, so the
        # results match the batch engine exactly.
        for index in indices:
            explanation = explainer.explain(test.X[index], int(test.y[index]))
            for variant in EXTRACTION_VARIANTS:
                heatmap = extract_variant(explanation.details.m_bar, variant)
                scores[variant].append(dr_acc(heatmap, test.ground_truth[index]))
        row: Dict[str, object] = {"dataset": f"{seed_name}-type{dataset_type}-D{n_dimensions}",
                                  "model": model_name}
        for variant in EXTRACTION_VARIANTS:
            row[variant] = float(np.mean(scores[variant]))
        result.rows.append(row)
    return result


def run_ng_filter_ablation(scale: Optional[ExperimentScale] = None,
                           seed_name: str = "starlight",
                           dataset_types: Sequence[int] = (1, 2),
                           model_name: str = "dcnn",
                           base_seed: int = 0) -> AblationResult:
    """Compare averaging over all permutations vs only correctly-classified ones."""
    scale = scale or get_scale("small")
    n_dimensions = scale.dimension_sweep[0]
    result = AblationResult()
    for dataset_type in dataset_types:
        config_seed = base_seed + 100 * dataset_type
        train, test = synthetic_train_test(seed_name, dataset_type, n_dimensions,
                                           scale, config_seed)
        model, _ = train_model(model_name, train, scale, random_state=config_seed)
        indices = select_explainable_instances(test, target_class=1,
                                               n_instances=scale.n_explained_instances)
        all_scores, correct_scores, ratios = [], [], []
        for index in indices:
            # Fresh generators so both variants see the same permutations on
            # every instance (the ablated quantity is the filter, not the draw).
            explanation_all = get_explainer(
                model, k=scale.k_permutations, rng=np.random.default_rng(config_seed),
                batch_size=scale.dcam_batch_size, use_only_correct=False,
            ).explain(test.X[index], int(test.y[index]))
            explanation_correct = get_explainer(
                model, k=scale.k_permutations, rng=np.random.default_rng(config_seed),
                batch_size=scale.dcam_batch_size, use_only_correct=True,
            ).explain(test.X[index], int(test.y[index]))
            all_scores.append(dr_acc(explanation_all.heatmap, test.ground_truth[index]))
            correct_scores.append(dr_acc(explanation_correct.heatmap,
                                         test.ground_truth[index]))
            ratios.append(explanation_all.success_ratio)
        result.rows.append({
            "dataset": f"{seed_name}-type{dataset_type}-D{n_dimensions}",
            "model": model_name,
            "all_permutations": float(np.mean(all_scores)),
            "only_correct": float(np.mean(correct_scores)),
            "ng/k": float(np.mean(ratios)),
        })
    return result
