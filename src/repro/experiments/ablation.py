"""Ablations of dCAM design choices (DESIGN.md Section 5).

Two choices of the dCAM extraction step (Definition 3) are ablated:

* the **extraction rule** — the paper multiplies the per-position variance of
  ``M̄`` by the global average activation; the ablation compares against using
  only the variance or only the average;
* the **permutation filter** — whether ``M̄`` is averaged over all ``k``
  permutations or only over the ``n_g`` correctly-classified ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.dcam import extract_dcam
from ..runtime import ExperimentSpec, ResultCache, WorkUnit
from ..runtime import run as run_spec
from ..runtime.executor import Executor
from .config import ExperimentScale, get_scale
from .reporting import format_table

EXTRACTION_VARIANTS = ("variance_x_mean", "variance_only", "mean_only")


def extract_variant(m_bar: np.ndarray, variant: str) -> np.ndarray:
    """Apply one of the extraction variants to an averaged ``M̄`` tensor."""
    dcam, averaged_cam = extract_dcam(m_bar)
    if variant == "variance_x_mean":
        return dcam
    if variant == "variance_only":
        return m_bar.var(axis=1)
    if variant == "mean_only":
        return np.tile(averaged_cam, (m_bar.shape[0], 1))
    raise ValueError(f"unknown extraction variant {variant!r}")


@dataclass
class AblationResult:
    """Dr-acc per ablation variant and configuration."""

    rows: List[Dict[str, object]] = field(default_factory=list)

    def format(self, title: str) -> str:
        return format_table(self.rows, title=title)


def _ablation_spec(kind: str, name: str, scale: ExperimentScale, seed_name: str,
                   dataset_types: Sequence[int], model_name: str,
                   base_seed: int) -> ExperimentSpec:
    """One ablation cell per dataset type, at the scale's first sweep dimension."""
    n_dimensions = scale.dimension_sweep[0]
    units = tuple(
        WorkUnit.create(kind, seed_name=seed_name, dataset_type=dataset_type,
                        n_dimensions=n_dimensions, model_name=model_name,
                        config_seed=base_seed + 100 * dataset_type)
        for dataset_type in dataset_types
    )
    return ExperimentSpec(name=name, scale=scale, units=units)


def extraction_ablation_spec(scale: Optional[ExperimentScale] = None,
                             seed_name: str = "starlight",
                             dataset_types: Sequence[int] = (1, 2),
                             model_name: str = "dcnn",
                             base_seed: int = 0) -> ExperimentSpec:
    """Declarative description of the extraction-rule ablation."""
    scale = scale or get_scale("small")
    return _ablation_spec("ablation_extraction_cell", "ablation-extraction", scale,
                          seed_name, dataset_types, model_name, base_seed)


def ng_filter_ablation_spec(scale: Optional[ExperimentScale] = None,
                            seed_name: str = "starlight",
                            dataset_types: Sequence[int] = (1, 2),
                            model_name: str = "dcnn",
                            base_seed: int = 0) -> ExperimentSpec:
    """Declarative description of the permutation-filter ablation."""
    scale = scale or get_scale("small")
    return _ablation_spec("ablation_ng_filter_cell", "ablation-ng-filter", scale,
                          seed_name, dataset_types, model_name, base_seed)


def run_extraction_ablation(scale: Optional[ExperimentScale] = None,
                            seed_name: str = "starlight",
                            dataset_types: Sequence[int] = (1, 2),
                            model_name: str = "dcnn",
                            base_seed: int = 0,
                            executor: Optional[Executor] = None,
                            cache: Optional[ResultCache] = None) -> AblationResult:
    """Compare the three extraction rules on Type 1 / Type 2 datasets."""
    spec = extraction_ablation_spec(scale, seed_name, dataset_types, model_name,
                                    base_seed)
    return AblationResult(rows=run_spec(spec, executor=executor, cache=cache))


def run_ng_filter_ablation(scale: Optional[ExperimentScale] = None,
                           seed_name: str = "starlight",
                           dataset_types: Sequence[int] = (1, 2),
                           model_name: str = "dcnn",
                           base_seed: int = 0,
                           executor: Optional[Executor] = None,
                           cache: Optional[ResultCache] = None) -> AblationResult:
    """Compare averaging over all permutations vs only correctly-classified ones."""
    spec = ng_filter_ablation_spec(scale, seed_name, dataset_types, model_name,
                                   base_seed)
    return AblationResult(rows=run_spec(spec, executor=executor, cache=cache))
