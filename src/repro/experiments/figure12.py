"""Figure 12: execution time of training and of the dCAM computation.

Three panels are reproduced:

* (a) training time for one epoch as a function of the series length and of
  the number of dimensions, for every architecture family;
* (b) dCAM computation time as a function of the number of dimensions, the
  series length and the number of permutations ``k``;
* (c) training convergence: number of epochs and wall-clock time needed to
  reach 90% of the best validation loss, per architecture variant.

Absolute values depend on the NumPy/CPU substrate (see DESIGN.md); the
reproduced quantities are the scaling trends (e.g. dCAM time grows
super-linearly with D, linearly with length and k).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.synthetic import SyntheticConfig, make_type1_dataset
from ..explain.registry import get_explainer
from ..models.base import TrainingConfig
from ..models.registry import create_model
from .config import ExperimentScale, get_scale
from .reporting import format_series, format_table
from .runner import synthetic_train_test, train_model


@dataclass
class Figure12Result:
    """Timing series for the three panels."""

    epoch_time_vs_length: Dict[str, List[float]] = field(default_factory=dict)
    lengths: List[int] = field(default_factory=list)
    epoch_time_vs_dimensions: Dict[str, List[float]] = field(default_factory=dict)
    dimensions: List[int] = field(default_factory=list)
    dcam_time_vs_dimensions: Dict[str, List[float]] = field(default_factory=dict)
    dcam_time_vs_length: Dict[str, List[float]] = field(default_factory=dict)
    dcam_time_vs_k: Dict[str, List[float]] = field(default_factory=dict)
    k_values: List[int] = field(default_factory=list)
    convergence: List[Dict[str, object]] = field(default_factory=list)

    def format(self) -> str:
        blocks = []
        if self.epoch_time_vs_length:
            blocks.append(format_series(self.epoch_time_vs_length, "length", self.lengths,
                                        title="Figure 12(a.1) — training time for one epoch vs series length (s)"))
        if self.epoch_time_vs_dimensions:
            blocks.append(format_series(self.epoch_time_vs_dimensions, "D", self.dimensions,
                                        title="Figure 12(a.2) — training time for one epoch vs dimensions (s)"))
        if self.dcam_time_vs_dimensions:
            blocks.append(format_series(self.dcam_time_vs_dimensions, "D", self.dimensions,
                                        title="Figure 12(b.1) — dCAM time vs dimensions (s)"))
        if self.dcam_time_vs_length:
            blocks.append(format_series(self.dcam_time_vs_length, "length", self.lengths,
                                        title="Figure 12(b.2) — dCAM time vs series length (s)"))
        if self.dcam_time_vs_k:
            blocks.append(format_series(self.dcam_time_vs_k, "k", self.k_values,
                                        title="Figure 12(b.3) — dCAM time vs permutations k (s)"))
        if self.convergence:
            blocks.append(format_table(self.convergence,
                                       title="Figure 12(c) — epochs / time to reach 90% of best loss"))
        return "\n\n".join(blocks)


def _one_epoch_time(model_name: str, n_dimensions: int, length: int, scale: ExperimentScale,
                    n_instances: int = 8, seed: int = 0) -> float:
    """Wall-clock seconds for one training epoch on a synthetic dataset."""
    config = SyntheticConfig(n_dimensions=n_dimensions, n_instances_per_class=n_instances // 2,
                             series_length=length,
                             seed_instance_length=max(8, length // 4),
                             pattern_length=max(4, length // 8), random_state=seed)
    dataset = make_type1_dataset(config)
    rng = np.random.default_rng(seed)
    model = create_model(model_name, dataset.n_dimensions, dataset.length,
                         dataset.n_classes, rng=rng, **scale.model_kwargs(model_name))
    training = TrainingConfig(epochs=1, batch_size=scale.training.batch_size,
                              learning_rate=scale.training.learning_rate,
                              patience=10, random_state=seed)
    history = model.fit(dataset.X, dataset.y, config=training)
    return float(history.epoch_seconds[0])


def run_figure12(scale: Optional[ExperimentScale] = None,
                 models: Optional[Sequence[str]] = None,
                 lengths: Optional[Sequence[int]] = None,
                 dimensions: Optional[Sequence[int]] = None,
                 k_values: Optional[Sequence[int]] = None,
                 dcam_model: str = "dcnn",
                 include_convergence: bool = True,
                 base_seed: int = 0) -> Figure12Result:
    """Run the Figure 12 timing experiment."""
    scale = scale or get_scale("small")
    models = list(models or ["cnn", "ccnn", "dcnn", "resnet", "dresnet"])
    lengths = list(lengths or (32, 64))
    dimensions = list(dimensions or scale.dimension_sweep)
    if k_values is None:
        k_values = sorted({2, max(2, scale.k_permutations // 2), scale.k_permutations})
    result = Figure12Result(lengths=lengths, dimensions=dimensions, k_values=list(k_values))

    # Panel (a): one-epoch training time.
    base_dims = dimensions[0]
    base_length = lengths[0]
    for model_name in models:
        result.epoch_time_vs_length[model_name] = [
            _one_epoch_time(model_name, base_dims, length, scale, seed=base_seed)
            for length in lengths
        ]
        result.epoch_time_vs_dimensions[model_name] = [
            _one_epoch_time(model_name, dims, base_length, scale, seed=base_seed)
            for dims in dimensions
        ]

    # Panel (b): dCAM computation time on an (untrained weights are fine) d-model.
    rng = np.random.default_rng(base_seed)
    for dims in dimensions:
        series = rng.standard_normal((dims, base_length))
        model = create_model(dcam_model, dims, base_length, 2, rng=rng,
                             **scale.model_kwargs(dcam_model))
        explainer = get_explainer(model, k=min(scale.k_permutations, 8), rng=rng,
                                  batch_size=scale.dcam_batch_size)
        start = time.perf_counter()
        explainer.explain(series, 0)
        result.dcam_time_vs_dimensions.setdefault(dcam_model, []).append(
            time.perf_counter() - start)
    for length in lengths:
        series = rng.standard_normal((base_dims, length))
        model = create_model(dcam_model, base_dims, length, 2, rng=rng,
                             **scale.model_kwargs(dcam_model))
        explainer = get_explainer(model, k=min(scale.k_permutations, 8), rng=rng,
                                  batch_size=scale.dcam_batch_size)
        start = time.perf_counter()
        explainer.explain(series, 0)
        result.dcam_time_vs_length.setdefault(dcam_model, []).append(
            time.perf_counter() - start)
    series = rng.standard_normal((base_dims, base_length))
    model = create_model(dcam_model, base_dims, base_length, 2, rng=rng,
                         **scale.model_kwargs(dcam_model))
    for k in result.k_values:
        explainer = get_explainer(model, k=k, rng=rng,
                                  batch_size=scale.dcam_batch_size)
        start = time.perf_counter()
        explainer.explain(series, 0)
        result.dcam_time_vs_k.setdefault(dcam_model, []).append(time.perf_counter() - start)

    # Panel (c): convergence (epochs / seconds to 90% of best loss).
    if include_convergence:
        for model_name in models:
            train, _ = synthetic_train_test("shapes", 1, base_dims, scale, base_seed)
            trained, history = train_model(model_name, train, scale, random_state=base_seed)
            epochs_needed = history.epochs_to_fraction_of_best(0.9)
            seconds = float(np.sum(history.epoch_seconds[:epochs_needed]))
            result.convergence.append({
                "model": model_name,
                "epochs_to_90pct": epochs_needed,
                "seconds_to_90pct": seconds,
                "epochs_run": history.epochs_run,
            })
    return result
