"""Figure 12: execution time of training and of the dCAM computation.

Three panels are reproduced:

* (a) training time for one epoch as a function of the series length and of
  the number of dimensions, for every architecture family;
* (b) dCAM computation time as a function of the number of dimensions, the
  series length and the number of permutations ``k``;
* (c) training convergence: number of epochs and wall-clock time needed to
  reach 90% of the best validation loss, per architecture variant.

Absolute values depend on the NumPy/CPU substrate (see DESIGN.md); the
reproduced quantities are the scaling trends (e.g. dCAM time grows
super-linearly with D, linearly with length and k).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..runtime import ExperimentSpec, ResultCache, WorkUnit
from ..runtime import run as run_spec
from ..runtime.executor import Executor, ParallelExecutor
from .config import ExperimentScale, get_scale
from .reporting import format_series, format_table


@dataclass
class Figure12Result:
    """Timing series for the three panels."""

    epoch_time_vs_length: Dict[str, List[float]] = field(default_factory=dict)
    lengths: List[int] = field(default_factory=list)
    epoch_time_vs_dimensions: Dict[str, List[float]] = field(default_factory=dict)
    dimensions: List[int] = field(default_factory=list)
    dcam_time_vs_dimensions: Dict[str, List[float]] = field(default_factory=dict)
    dcam_time_vs_length: Dict[str, List[float]] = field(default_factory=dict)
    dcam_time_vs_k: Dict[str, List[float]] = field(default_factory=dict)
    k_values: List[int] = field(default_factory=list)
    convergence: List[Dict[str, object]] = field(default_factory=list)

    def format(self) -> str:
        blocks = []
        if self.epoch_time_vs_length:
            blocks.append(format_series(self.epoch_time_vs_length, "length", self.lengths,
                                        title="Figure 12(a.1) — training time for one epoch vs series length (s)"))
        if self.epoch_time_vs_dimensions:
            blocks.append(format_series(self.epoch_time_vs_dimensions, "D", self.dimensions,
                                        title="Figure 12(a.2) — training time for one epoch vs dimensions (s)"))
        if self.dcam_time_vs_dimensions:
            blocks.append(format_series(self.dcam_time_vs_dimensions, "D", self.dimensions,
                                        title="Figure 12(b.1) — dCAM time vs dimensions (s)"))
        if self.dcam_time_vs_length:
            blocks.append(format_series(self.dcam_time_vs_length, "length", self.lengths,
                                        title="Figure 12(b.2) — dCAM time vs series length (s)"))
        if self.dcam_time_vs_k:
            blocks.append(format_series(self.dcam_time_vs_k, "k", self.k_values,
                                        title="Figure 12(b.3) — dCAM time vs permutations k (s)"))
        if self.convergence:
            blocks.append(format_table(self.convergence,
                                       title="Figure 12(c) — epochs / time to reach 90% of best loss"))
        return "\n\n".join(blocks)


def _figure12_options(scale, models, lengths, dimensions, k_values):
    """Resolve the defaulted option lists shared by spec builder and runner."""
    models = list(models or ["cnn", "ccnn", "dcnn", "resnet", "dresnet"])
    lengths = list(lengths or (32, 64))
    dimensions = list(dimensions or scale.dimension_sweep)
    if k_values is None:
        k_values = sorted({2, max(2, scale.k_permutations // 2), scale.k_permutations})
    return models, lengths, dimensions, list(k_values)


def figure12_spec(scale: Optional[ExperimentScale] = None,
                  models: Optional[Sequence[str]] = None,
                  lengths: Optional[Sequence[int]] = None,
                  dimensions: Optional[Sequence[int]] = None,
                  k_values: Optional[Sequence[int]] = None,
                  dcam_model: str = "dcnn",
                  include_convergence: bool = True,
                  base_seed: int = 0) -> ExperimentSpec:
    """Timing units for the three panels.

    Unlike the metric sweeps, each timing unit seeds its own generator from
    ``base_seed`` (the legacy driver threaded a single generator through the
    panel-(b) loops); timings are machine-dependent either way, the
    reproduced quantity is the scaling trend.
    """
    scale = scale or get_scale("small")
    models, lengths, dimensions, k_values = _figure12_options(
        scale, models, lengths, dimensions, k_values)
    base_dims = dimensions[0]
    base_length = lengths[0]
    probe_k = min(scale.k_permutations, 8)
    units: List[WorkUnit] = []
    # Panel (a): one-epoch training time vs length and vs dimensions.
    for model_name in models:
        for length in lengths:
            units.append(WorkUnit.create("figure12_epoch_time", model_name=model_name,
                                         n_dimensions=base_dims, length=length,
                                         seed=base_seed))
        for dims in dimensions:
            units.append(WorkUnit.create("figure12_epoch_time", model_name=model_name,
                                         n_dimensions=dims, length=base_length,
                                         seed=base_seed))
    # Panel (b): dCAM computation time (untrained d-model weights are fine).
    for dims in dimensions:
        units.append(WorkUnit.create("figure12_dcam_time", model_name=dcam_model,
                                     n_dimensions=dims, length=base_length,
                                     k=probe_k, seed=base_seed))
    for length in lengths:
        units.append(WorkUnit.create("figure12_dcam_time", model_name=dcam_model,
                                     n_dimensions=base_dims, length=length,
                                     k=probe_k, seed=base_seed))
    for k in k_values:
        units.append(WorkUnit.create("figure12_dcam_time", model_name=dcam_model,
                                     n_dimensions=base_dims, length=base_length,
                                     k=int(k), seed=base_seed))
    # Panel (c): convergence (epochs / seconds to 90% of best loss).
    if include_convergence:
        for model_name in models:
            units.append(WorkUnit.create("figure12_convergence", model_name=model_name,
                                         n_dimensions=base_dims, base_seed=base_seed))
    return ExperimentSpec(name="figure12", scale=scale, units=tuple(units))


def run_figure12(scale: Optional[ExperimentScale] = None,
                 models: Optional[Sequence[str]] = None,
                 lengths: Optional[Sequence[int]] = None,
                 dimensions: Optional[Sequence[int]] = None,
                 k_values: Optional[Sequence[int]] = None,
                 dcam_model: str = "dcnn",
                 include_convergence: bool = True,
                 base_seed: int = 0,
                 executor: Optional[Executor] = None,
                 cache: Optional[ResultCache] = None) -> Figure12Result:
    """Run the Figure 12 timing experiment.

    Note that caching timing units replays recorded wall-clocks, and
    concurrent workers contend for the CPU the units are timing; keep
    ``cache=None`` and a serial executor (the defaults) when fresh, faithful
    measurements matter.
    """
    scale = scale or get_scale("small")
    if isinstance(executor, ParallelExecutor) and executor.workers > 1:
        warnings.warn("figure12 measures wall-clock timings; concurrent workers "
                      "contend for the CPU and skew the reported scaling trends",
                      RuntimeWarning, stacklevel=2)
    models, lengths, dimensions, k_values = _figure12_options(
        scale, models, lengths, dimensions, k_values)
    spec = figure12_spec(scale, models, lengths, dimensions, k_values,
                         dcam_model, include_convergence, base_seed)
    results = iter(run_spec(spec, executor=executor, cache=cache))
    result = Figure12Result(lengths=lengths, dimensions=dimensions, k_values=k_values)
    for model_name in models:
        result.epoch_time_vs_length[model_name] = [next(results) for _ in lengths]
        result.epoch_time_vs_dimensions[model_name] = [next(results) for _ in dimensions]
    result.dcam_time_vs_dimensions[dcam_model] = [next(results) for _ in dimensions]
    result.dcam_time_vs_length[dcam_model] = [next(results) for _ in lengths]
    result.dcam_time_vs_k[dcam_model] = [next(results) for _ in k_values]
    if include_convergence:
        result.convergence = [next(results) for _ in models]
    return result
