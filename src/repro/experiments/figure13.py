"""Figure 13 / Section 5.8: the surgeon-skill explanation use case.

The driver trains a dCNN on the (simulated) JIGSAWS suturing dataset, checks
the classification accuracy, computes dCAM for every instance of the novice
class, and aggregates the per-instance maps into the global statistics shown
in the paper:

* maximal activation per sensor (Figure 13(c)),
* averaged activation per sensor per gesture (Figure 13(d)),
* the top discriminant sensors and gestures — which should recover the
  planted novice signature (MTM gripper angles / rotation sensors during
  gestures G6 and G9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.aggregate import (
    max_activation_per_dimension,
    mean_activation_per_segment,
    top_discriminant_dimensions,
    top_discriminant_segments,
)
from ..core.dcam import DCAMResult
from ..data.jigsaws import JigsawsConfig, make_jigsaws_dataset
from ..data.splits import train_validation_split
from ..explain.registry import get_explainer
from ..models.registry import create_model
from ..runtime import ExperimentSpec, ResultCache, WorkUnit
from ..runtime import run as run_spec
from ..runtime.executor import Executor
from .config import ExperimentScale, get_scale
from .reporting import format_table


@dataclass
class Figure13Result:
    """Outputs of the surgeon-skill use case."""

    train_accuracy: float = float("nan")
    test_accuracy: float = float("nan")
    sensor_names: List[str] = field(default_factory=list)
    max_activation: Optional[np.ndarray] = None  # (novice instances, sensors)
    per_gesture_activation: Dict[str, np.ndarray] = field(default_factory=dict)
    top_sensors: List[int] = field(default_factory=list)
    top_gestures: List[Tuple[str, float]] = field(default_factory=list)
    planted_sensors: List[int] = field(default_factory=list)
    planted_gestures: List[str] = field(default_factory=list)

    def sensor_recovery_rate(self) -> float:
        """Fraction of the top sensors that were actually planted as discriminant."""
        if not self.top_sensors:
            return 0.0
        planted = set(self.planted_sensors)
        return sum(1 for sensor in self.top_sensors if sensor in planted) / len(self.top_sensors)

    def gesture_recovery_rate(self) -> float:
        """Fraction of the top gestures that were planted as discriminant."""
        if not self.top_gestures:
            return 0.0
        planted = set(self.planted_gestures)
        return sum(1 for gesture, _ in self.top_gestures if gesture in planted) / len(self.top_gestures)

    def format(self) -> str:
        lines = [
            "Figure 13 — surgeon-skill use case (simulated JIGSAWS)",
            f"train C-acc: {self.train_accuracy:.3f}   test C-acc: {self.test_accuracy:.3f}",
            f"top discriminant sensors: "
            + ", ".join(self.sensor_names[s] for s in self.top_sensors),
            f"planted discriminant sensors recovered: {self.sensor_recovery_rate():.0%}",
            f"top discriminant gestures: "
            + ", ".join(f"{g} ({score:.3f})" for g, score in self.top_gestures),
            f"planted discriminant gestures recovered: {self.gesture_recovery_rate():.0%}",
        ]
        if self.max_activation is not None:
            rows = [
                {
                    "sensor": self.sensor_names[sensor],
                    "median_max_activation": float(np.median(self.max_activation[:, sensor])),
                }
                for sensor in self.top_sensors
            ]
            lines.append("")
            lines.append(format_table(rows, title="Figure 13(c) — top sensors by maximal activation"))
        return "\n".join(lines)


def compute_figure13(scale: ExperimentScale, jigsaws_config: JigsawsConfig,
                     model_name: str, top_k_sensors: int, top_k_gestures: int,
                     base_seed: int) -> Figure13Result:
    """Evaluate the surgeon-skill use case (the ``figure13_usecase`` work unit)."""
    dataset = make_jigsaws_dataset(jigsaws_config).znormalize()
    # znormalize drops ground truth / metadata copies only of arrays; metadata persists.
    train, test = train_validation_split(dataset, 0.75, random_state=base_seed)

    rng = np.random.default_rng(base_seed)
    model = create_model(model_name, dataset.n_dimensions, dataset.length,
                         dataset.n_classes, rng=rng, **scale.model_kwargs(model_name))
    model.fit(train.X, train.y, validation_data=(test.X, test.y), config=scale.training)

    result = Figure13Result(
        train_accuracy=model.score(train.X, train.y),
        test_accuracy=model.score(test.X, test.y),
        sensor_names=list(dataset.dim_names or []),
        planted_sensors=list(dataset.metadata["discriminant_sensors"]),
        planted_gestures=list(dataset.metadata["discriminant_gestures"]),
    )

    # dCAM for every novice-class instance (class 0 = novice), explained in
    # one batch through the registry's shared pipeline.
    novice_class = 0
    novice_indices = [index for index in range(len(dataset)) if dataset.y[index] == novice_class]
    segments = dataset.metadata["gesture_segments"]
    explainer = get_explainer(model, k=scale.k_permutations, rng=rng,
                              batch_size=scale.dcam_batch_size)
    explanations = explainer.explain_batch(dataset.X[novice_indices],
                                           [novice_class] * len(novice_indices))
    dcam_results: List[DCAMResult] = [explanation.details for explanation in explanations]
    novice_segments = [segments[index] for index in novice_indices]

    result.max_activation = max_activation_per_dimension(dcam_results)
    result.per_gesture_activation = mean_activation_per_segment(dcam_results, novice_segments)
    result.top_sensors = top_discriminant_dimensions(dcam_results, top_k=top_k_sensors)
    result.top_gestures = top_discriminant_segments(dcam_results, novice_segments,
                                                    top_k=top_k_gestures)
    return result


def figure13_spec(scale: Optional[ExperimentScale] = None,
                  jigsaws_config: Optional[JigsawsConfig] = None,
                  model_name: str = "dcnn",
                  top_k_sensors: int = 6,
                  top_k_gestures: int = 3,
                  base_seed: int = 0) -> ExperimentSpec:
    """The use case as a single coarse work unit (train + explain + aggregate)."""
    scale = scale or get_scale("small")
    jigsaws_config = jigsaws_config or JigsawsConfig(
        n_novice=6, n_intermediate=4, n_expert=4, gesture_length=8,
        random_state=base_seed + 7)
    unit = WorkUnit.create("figure13_usecase", jigsaws=jigsaws_config,
                           model_name=model_name, top_k_sensors=top_k_sensors,
                           top_k_gestures=top_k_gestures, base_seed=base_seed)
    return ExperimentSpec(name="figure13", scale=scale, units=(unit,))


def run_figure13(scale: Optional[ExperimentScale] = None,
                 jigsaws_config: Optional[JigsawsConfig] = None,
                 model_name: str = "dcnn",
                 top_k_sensors: int = 6,
                 top_k_gestures: int = 3,
                 base_seed: int = 0,
                 executor: Optional[Executor] = None,
                 cache: Optional[ResultCache] = None) -> Figure13Result:
    """Run the surgeon-skill use case."""
    scale = scale or get_scale("small")
    spec = figure13_spec(scale, jigsaws_config, model_name, top_k_sensors,
                         top_k_gestures, base_seed)
    return run_spec(spec, executor=executor, cache=cache)[0]
