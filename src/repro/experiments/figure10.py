"""Figure 10: influence of the number of permutations ``k`` on Dr-acc.

For a trained d-architecture, dCAM is recomputed with increasing numbers of
random permutations; panel (a) reports the (normalised) Dr-acc as a function
of ``k``, and panel (b) the number of permutations needed to reach 90% of the
best Dr-acc — which grows with the number of dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..models.registry import models_with_explainer_family
from ..runtime import ExperimentSpec, ResultCache, WorkUnit
from ..runtime import run as run_spec
from ..runtime.executor import Executor
from .config import ExperimentScale, get_scale
from .reporting import format_series, format_table


@dataclass
class Figure10Result:
    """Dr-acc as a function of ``k`` and permutations-to-90% per configuration."""

    k_values: List[int] = field(default_factory=list)
    #: ``curves[(model, type, D)]`` = Dr-acc value per entry of ``k_values``.
    curves: Dict[tuple, List[float]] = field(default_factory=dict)

    def permutations_to_reach(self, fraction: float = 0.9) -> Dict[tuple, int]:
        """Smallest ``k`` reaching ``fraction`` of the best Dr-acc (panel b)."""
        needed = {}
        for key, values in self.curves.items():
            values = np.asarray(values)
            best = values.max()
            if best <= 0:
                needed[key] = self.k_values[-1]
                continue
            reached = np.flatnonzero(values >= fraction * best)
            needed[key] = self.k_values[int(reached[0])] if len(reached) else self.k_values[-1]
        return needed

    def format(self) -> str:
        series = {f"{model}-type{dtype}-D{dims}": values
                  for (model, dtype, dims), values in self.curves.items()}
        blocks = [format_series(series, "k", self.k_values,
                                title="Figure 10(a) — Dr-acc vs number of permutations k")]
        rows = [
            {"configuration": f"{model}-type{dtype}-D{dims}", "k_to_90pct": k_needed}
            for (model, dtype, dims), k_needed in self.permutations_to_reach().items()
        ]
        blocks.append(format_table(rows, title="Figure 10(b) — permutations to reach 90% of best Dr-acc"))
        return "\n\n".join(blocks)


def _figure10_options(scale, models, dimensions, k_values):
    """Resolve the defaulted option lists shared by spec builder and runner."""
    models = list(models or models_with_explainer_family("dcam", scale.table3_models))
    dimensions = list(dimensions or scale.dimension_sweep[:2])
    if k_values is None:
        maximum = max(4, scale.k_permutations)
        k_values = sorted({1, 2, max(2, maximum // 4), max(3, maximum // 2), maximum})
    return models, dimensions, list(k_values)


def figure10_spec(scale: Optional[ExperimentScale] = None,
                  seed_name: str = "shapes",
                  models: Optional[Sequence[str]] = None,
                  dataset_types: Sequence[int] = (1, 2),
                  dimensions: Optional[Sequence[int]] = None,
                  k_values: Optional[Sequence[int]] = None,
                  base_seed: int = 0) -> ExperimentSpec:
    """One ``figure10_curve`` unit per (type, D, model): train once,
    re-evaluate Dr-acc at every permutation count ``k``."""
    scale = scale or get_scale("small")
    models, dimensions, k_values = _figure10_options(scale, models, dimensions, k_values)
    units: List[WorkUnit] = []
    for dataset_type in dataset_types:
        for n_dimensions in dimensions:
            config_seed = base_seed + 100 * dataset_type + n_dimensions
            for model_name in models:
                units.append(WorkUnit.create(
                    "figure10_curve", seed_name=seed_name, dataset_type=dataset_type,
                    n_dimensions=n_dimensions, model_name=model_name,
                    k_values=k_values, config_seed=config_seed))
    return ExperimentSpec(name="figure10", scale=scale, units=tuple(units))


def run_figure10(scale: Optional[ExperimentScale] = None,
                 seed_name: str = "shapes",
                 models: Optional[Sequence[str]] = None,
                 dataset_types: Sequence[int] = (1, 2),
                 dimensions: Optional[Sequence[int]] = None,
                 k_values: Optional[Sequence[int]] = None,
                 base_seed: int = 0,
                 executor: Optional[Executor] = None,
                 cache: Optional[ResultCache] = None) -> Figure10Result:
    """Run the Figure 10 experiment."""
    scale = scale or get_scale("small")
    models, dimensions, k_values = _figure10_options(scale, models, dimensions, k_values)
    spec = figure10_spec(scale, seed_name, models, dataset_types, dimensions,
                         k_values, base_seed)
    results = iter(run_spec(spec, executor=executor, cache=cache))
    result = Figure10Result(k_values=k_values)
    for dataset_type in dataset_types:
        for n_dimensions in dimensions:
            for model_name in models:
                curve = next(results)
                result.curves[(model_name, dataset_type, n_dimensions)] = curve["dr_acc"]
    return result
