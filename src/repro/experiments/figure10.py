"""Figure 10: influence of the number of permutations ``k`` on Dr-acc.

For a trained d-architecture, dCAM is recomputed with increasing numbers of
random permutations; panel (a) reports the (normalised) Dr-acc as a function
of ``k``, and panel (b) the number of permutations needed to reach 90% of the
best Dr-acc — which grows with the number of dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..explain.evaluation import evaluate_explainer
from ..models.registry import models_with_explainer_family
from .config import ExperimentScale, get_scale
from .reporting import format_series, format_table
from .runner import synthetic_train_test, train_model


@dataclass
class Figure10Result:
    """Dr-acc as a function of ``k`` and permutations-to-90% per configuration."""

    k_values: List[int] = field(default_factory=list)
    #: ``curves[(model, type, D)]`` = Dr-acc value per entry of ``k_values``.
    curves: Dict[tuple, List[float]] = field(default_factory=dict)

    def permutations_to_reach(self, fraction: float = 0.9) -> Dict[tuple, int]:
        """Smallest ``k`` reaching ``fraction`` of the best Dr-acc (panel b)."""
        needed = {}
        for key, values in self.curves.items():
            values = np.asarray(values)
            best = values.max()
            if best <= 0:
                needed[key] = self.k_values[-1]
                continue
            reached = np.flatnonzero(values >= fraction * best)
            needed[key] = self.k_values[int(reached[0])] if len(reached) else self.k_values[-1]
        return needed

    def format(self) -> str:
        series = {f"{model}-type{dtype}-D{dims}": values
                  for (model, dtype, dims), values in self.curves.items()}
        blocks = [format_series(series, "k", self.k_values,
                                title="Figure 10(a) — Dr-acc vs number of permutations k")]
        rows = [
            {"configuration": f"{model}-type{dtype}-D{dims}", "k_to_90pct": k_needed}
            for (model, dtype, dims), k_needed in self.permutations_to_reach().items()
        ]
        blocks.append(format_table(rows, title="Figure 10(b) — permutations to reach 90% of best Dr-acc"))
        return "\n\n".join(blocks)


def run_figure10(scale: Optional[ExperimentScale] = None,
                 seed_name: str = "shapes",
                 models: Optional[Sequence[str]] = None,
                 dataset_types: Sequence[int] = (1, 2),
                 dimensions: Optional[Sequence[int]] = None,
                 k_values: Optional[Sequence[int]] = None,
                 base_seed: int = 0) -> Figure10Result:
    """Run the Figure 10 experiment."""
    scale = scale or get_scale("small")
    models = list(models or models_with_explainer_family("dcam", scale.table3_models))
    dimensions = list(dimensions or scale.dimension_sweep[:2])
    if k_values is None:
        maximum = max(4, scale.k_permutations)
        k_values = sorted({1, 2, max(2, maximum // 4), max(3, maximum // 2), maximum})
    result = Figure10Result(k_values=list(k_values))
    for dataset_type in dataset_types:
        for n_dimensions in dimensions:
            config_seed = base_seed + 100 * dataset_type + n_dimensions
            train, test = synthetic_train_test(seed_name, dataset_type, n_dimensions,
                                               scale, config_seed)
            for model_name in models:
                model, _ = train_model(model_name, train, scale, random_state=config_seed)
                curve = []
                for k in result.k_values:
                    report = evaluate_explainer(model, test, scale, k=k,
                                                random_state=config_seed)
                    curve.append(report.dr_acc)
                result.curves[(model_name, dataset_type, n_dimensions)] = curve
    return result
