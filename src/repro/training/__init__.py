"""Training subsystem: the fused vectorized fit pipeline.

:class:`TrainingEngine` owns the fused prepare/forward/backward epoch loop
used by :meth:`repro.models.BaseClassifier.fit`:

* model-ready inputs (including the d-architectures' ``C(T)`` cube) are
  prepared **once per fit** and gathered per mini-batch into preallocated
  batch slots instead of being rebuilt on every batch of every epoch;
* the forward/backward pass runs under :func:`repro.nn.fused_training`,
  which swaps the composed BatchNorm / conv1d / GAP-dense-cross-entropy
  subgraphs for single fused autograd nodes and threads reusable
  im2col / col2im scratch buffers through the convolutions;
* control flow (shuffling rng, early stopping, gradient clipping, history
  bookkeeping) replicates the legacy loop exactly, so loss curves,
  early-stopping epochs and final weights are float-identical to
  :func:`repro.training.legacy.fit_legacy` — pinned by
  ``tests/test_training_engine.py``.

``TrainingConfig.engine`` selects the implementation (``"fused"`` default,
``"legacy"`` for the reference loop).
"""

from ..models.base import TrainingConfig, TrainingHistory
from .engine import PreparedInputs, TrainingEngine
from .legacy import fit_legacy

__all__ = [
    "TrainingConfig",
    "TrainingHistory",
    "TrainingEngine",
    "PreparedInputs",
    "fit_legacy",
]
