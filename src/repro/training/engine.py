"""The fused training engine: prepare once, slice per batch, fuse the graph.

The legacy loop re-prepared its inputs on every mini-batch of every epoch —
for the d-architectures that means rebuilding ``C(T)`` cubes hundreds of
times per fit — and paid the composed autograd graph's per-node overhead on
every step.  :class:`TrainingEngine` fuses the pipeline:

* :class:`PreparedInputs` runs :meth:`BaseClassifier.prepare_input` **once**
  per dataset (training and validation), so every epoch only gathers rows of
  the prepared array into a preallocated batch slot (``np.take(..., out=...)``;
  no per-batch allocation).  Cubes whose materialisation would exceed
  :attr:`PreparedInputs.max_materialize_bytes` fall back to gathering raw
  rows into the reusable slot and preparing per batch — numerics are
  identical either way because ``prepare_input`` is elementwise per instance.
* the epoch loop runs inside :func:`repro.nn.fused_training`, activating the
  bit-exact fused BatchNorm / conv1d kernels of :mod:`repro.nn.fused` and a
  :class:`~repro.nn.workspace.Workspace` whose im2col / col2im scratch
  buffers the convolutions reuse across batches;
* models ending in GAP + dense (``fused_head = True``) compute their loss
  through the single-node :func:`repro.nn.fused.gap_linear_cross_entropy`
  instead of the ~14-node composed head.

Control flow — rng consumption, shuffling, early stopping, gradient clipping,
history bookkeeping — replicates :func:`repro.training.legacy.fit_legacy`
exactly, so the two paths produce float-identical loss curves, early-stopping
epochs and final weights (``tests/test_training_engine.py``).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import numpy as np

from ..nn import Adam, Tensor, cross_entropy, fused_training
from ..nn.fused import gap_linear_cross_entropy
from ..nn.optim import clip_grad_norm
from ..nn.workspace import Workspace


class PreparedInputs:
    """Per-fit cache of model-ready inputs, gathered per batch into one slot.

    ``prepare_input`` is deterministic and elementwise per instance for every
    ``input_kind`` (identity for 1D models, a channel axis for c-models, the
    ``C(T)`` cube for d-models), so preparing the whole dataset once and
    slicing rows afterwards is bit-identical to preparing each mini-batch.
    """

    #: Soft cap on the bytes a materialised prepared array may occupy; above
    #: it (paper-scale cubes: ``N * D^2 * n`` doubles) raw rows are gathered
    #: into the batch slot instead and prepared per batch.
    max_materialize_bytes: int = 1 << 30

    def __init__(self, model, X: np.ndarray,
                 max_materialize_bytes: Optional[int] = None) -> None:
        if max_materialize_bytes is not None:
            self.max_materialize_bytes = max_materialize_bytes
        self.model = model
        X = np.asarray(X, dtype=getattr(model, "compute_dtype", np.float64))
        self.raw = X
        estimated = X.nbytes * (X.shape[1] if model.input_kind == "cube" else 1)
        self.materialized = estimated <= self.max_materialize_bytes
        if self.materialized:
            self.data: Optional[np.ndarray] = model.prepare_input(X).data
        else:
            self.data = None

    def __len__(self) -> int:
        return len(self.raw)

    def make_slot(self, batch_size: int) -> np.ndarray:
        """Preallocate the gather buffer reused by every :meth:`batch` call."""
        source = self.data if self.materialized else self.raw
        rows = min(batch_size, len(source)) if len(source) else batch_size
        return np.empty((rows,) + source.shape[1:], dtype=source.dtype)

    def batch(self, indices: np.ndarray, slot: np.ndarray) -> np.ndarray:
        """Model-ready array for ``indices``, gathered into ``slot``."""
        view = slot[: len(indices)]
        if self.materialized:
            np.take(self.data, indices, axis=0, out=view)
            return view
        np.take(self.raw, indices, axis=0, out=view)
        return self.model.prepare_input(view).data

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Model-ready array for the contiguous rows ``[start, stop)``."""
        if self.materialized:
            return self.data[start:stop]
        return self.model.prepare_input(self.raw[start:stop]).data

    def release(self) -> None:
        """Drop the cached arrays (the ``materialized`` flag survives).

        Called by the engine once a fit completes, so a long-lived engine (or
        a user holding one, as the README shows) does not pin gigabyte-scale
        prepared cubes after training is done.
        """
        self.data = None
        self.raw = None
        self.model = None


class TrainingEngine:
    """Fused prepare/forward/backward epoch loop behind ``BaseClassifier.fit``."""

    def __init__(self, model, config=None,
                 max_materialize_bytes: Optional[int] = None) -> None:
        from ..models.base import TrainingConfig

        self.model = model
        self.config = config or TrainingConfig()
        if self.config.engine != "fused":
            # Constructing the fused engine with a config that selects another
            # implementation would silently run the wrong path — the legacy
            # cross-check loop lives in repro.training.legacy.fit_legacy (or
            # go through model.fit, which dispatches on config.engine).
            raise ValueError(
                f"TrainingEngine is the 'fused' implementation but config "
                f"selects engine={self.config.engine!r}; use model.fit(...) "
                "or repro.training.fit_legacy for the reference loop"
            )
        self.max_materialize_bytes = max_materialize_bytes
        self.workspace = Workspace()
        #: Fresh batch-slot allocations over the engine's lifetime (one per
        #: fit; asserted by the no-per-batch-allocation test).
        self.slot_allocations = 0
        self.train_inputs: Optional[PreparedInputs] = None
        self.val_inputs: Optional[PreparedInputs] = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray,
            validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None):
        model, config = self.model, self.config
        dtype = getattr(model, "compute_dtype", np.float64)
        X = np.asarray(X, dtype=dtype)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 3:
            raise ValueError("X must be (instances, dimensions, length)")
        if X.shape[1] != model.n_dimensions or X.shape[2] != model.length:
            raise ValueError(
                f"model built for (D={model.n_dimensions}, n={model.length}) "
                f"but got series of shape {X.shape[1:]}"
            )
        prepare_start = time.perf_counter()
        self.train_inputs = PreparedInputs(model, X, self.max_materialize_bytes)
        slot = self.train_inputs.make_slot(config.batch_size)
        self.slot_allocations += 1
        if validation_data is not None:
            self.val_inputs = PreparedInputs(
                model, np.asarray(validation_data[0], dtype=dtype),
                self.max_materialize_bytes)
        prepare_seconds = time.perf_counter() - prepare_start

        try:
            history = self._run_epochs(X, y, validation_data, slot)
            history.prepare_seconds = prepare_seconds
        finally:
            # Keep the PreparedInputs objects (their flags stay
            # introspectable) but drop the cached arrays, so a held engine
            # doesn't pin paper-scale cubes after the fit.
            self.train_inputs.release()
            if self.val_inputs is not None:
                self.val_inputs.release()
        model.eval()
        return history

    def _run_epochs(self, X, y, validation_data, slot):
        from ..models.base import TrainingHistory

        model, config = self.model, self.config
        rng = np.random.default_rng(config.random_state)
        parameters = model.parameters()
        optimizer = Adam(parameters, lr=config.learning_rate,
                         weight_decay=config.weight_decay)
        history = TrainingHistory()
        best_loss = float("inf")
        best_state: Optional[Dict[str, np.ndarray]] = None
        epochs_without_improvement = 0
        val_y = (np.asarray(validation_data[1], dtype=np.int64)
                 if validation_data is not None else None)
        fused_head = (getattr(model, "fused_head", False)
                      and model.classifier.bias is not None)
        with fused_training(self.workspace):
            for epoch in range(config.epochs):
                start_time = time.perf_counter()
                model.train()
                indices = (rng.permutation(len(X)) if config.shuffle
                           else np.arange(len(X)))
                epoch_losses = []
                try:
                    for start in range(0, len(X), config.batch_size):
                        batch_idx = indices[start: start + config.batch_size]
                        batch = Tensor(self.train_inputs.batch(batch_idx, slot))
                        if fused_head:
                            loss = gap_linear_cross_entropy(
                                model.features(batch), model.classifier,
                                y[batch_idx])
                        else:
                            loss = cross_entropy(model.forward(batch), y[batch_idx])
                        optimizer.zero_grad()
                        loss.backward()
                        if config.gradient_clip is not None:
                            clip_grad_norm(parameters, config.gradient_clip)
                        optimizer.step()
                        self.workspace.release_all()
                        epoch_losses.append(loss.item())
                finally:
                    self.workspace.release_all()
                history.train_loss.append(float(np.mean(epoch_losses)))
                history.epoch_seconds.append(time.perf_counter() - start_time)

                if validation_data is not None:
                    val_loss, val_acc = model._evaluate_loss(
                        validation_data[0], val_y, config.batch_size,
                        prepared=self.val_inputs)
                    history.validation_loss.append(val_loss)
                    history.validation_accuracy.append(val_acc)
                    monitored = val_loss
                else:
                    monitored = history.train_loss[-1]

                if config.verbose:  # pragma: no cover - logging only
                    message = (f"epoch {epoch + 1}/{config.epochs} "
                               f"train_loss={history.train_loss[-1]:.4f}")
                    if validation_data is not None:
                        message += f" val_loss={history.validation_loss[-1]:.4f}"
                        message += f" val_acc={history.validation_accuracy[-1]:.3f}"
                    print(message)

                if monitored < best_loss - config.min_delta:
                    best_loss = monitored
                    best_state = model.state_dict()
                    history.best_epoch = epoch
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= config.patience:
                        history.stopped_early = True
                        break

        if best_state is not None:
            model.load_state_dict(best_state)
        return history
