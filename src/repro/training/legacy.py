"""The reference (pre-engine) training loop.

This is the loop :meth:`BaseClassifier.fit` ran before the fused
:class:`~repro.training.engine.TrainingEngine` existed: inputs are re-prepared
on every mini-batch, no scratch buffers are reused and every subgraph is the
composed autograd graph.  It is kept as the numeric reference — the engine
must match it float for float (``tests/test_training_engine.py``), and
``benchmarks/bench_training_engine.py`` measures the engine's speedup against
it.  Select it per run with ``TrainingConfig(engine="legacy")``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import numpy as np

from ..nn import Adam, cross_entropy
from ..nn.optim import clip_grad_norm


def fit_legacy(model, X: np.ndarray, y: np.ndarray,
               validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
               config=None):
    """Train ``model`` with the reference per-batch-prepare loop."""
    from ..models.base import TrainingConfig, TrainingHistory

    config = config or TrainingConfig()
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    if X.ndim != 3:
        raise ValueError("X must be (instances, dimensions, length)")
    if X.shape[1] != model.n_dimensions or X.shape[2] != model.length:
        raise ValueError(
            f"model built for (D={model.n_dimensions}, n={model.length}) "
            f"but got series of shape {X.shape[1:]}"
        )
    rng = np.random.default_rng(config.random_state)
    optimizer = Adam(model.parameters(), lr=config.learning_rate,
                     weight_decay=config.weight_decay)
    history = TrainingHistory()
    best_loss = float("inf")
    best_state: Optional[Dict[str, np.ndarray]] = None
    epochs_without_improvement = 0

    for epoch in range(config.epochs):
        start_time = time.perf_counter()
        model.train()
        indices = rng.permutation(len(X)) if config.shuffle else np.arange(len(X))
        epoch_losses = []
        for start in range(0, len(X), config.batch_size):
            batch_idx = indices[start: start + config.batch_size]
            logits = model.forward(model.prepare_input(X[batch_idx]))
            loss = cross_entropy(logits, y[batch_idx])
            optimizer.zero_grad()
            loss.backward()
            if config.gradient_clip is not None:
                clip_grad_norm(model.parameters(), config.gradient_clip)
            optimizer.step()
            epoch_losses.append(loss.item())
        history.train_loss.append(float(np.mean(epoch_losses)))
        history.epoch_seconds.append(time.perf_counter() - start_time)

        if validation_data is not None:
            val_loss, val_acc = model._evaluate_loss(validation_data[0],
                                                     validation_data[1],
                                                     config.batch_size)
            history.validation_loss.append(val_loss)
            history.validation_accuracy.append(val_acc)
            monitored = val_loss
        else:
            monitored = history.train_loss[-1]

        if config.verbose:  # pragma: no cover - logging only
            message = f"epoch {epoch + 1}/{config.epochs} train_loss={history.train_loss[-1]:.4f}"
            if validation_data is not None:
                message += f" val_loss={history.validation_loss[-1]:.4f}"
                message += f" val_acc={history.validation_accuracy[-1]:.3f}"
            print(message)

        if monitored < best_loss - config.min_delta:
            best_loss = monitored
            best_state = model.state_dict()
            history.best_epoch = epoch
            epochs_without_improvement = 0
        else:
            epochs_without_improvement += 1
            if epochs_without_improvement >= config.patience:
                history.stopped_early = True
                break

    if best_state is not None:
        model.load_state_dict(best_state)
    model.eval()
    return history
