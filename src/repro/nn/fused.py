"""Fused autograd kernels for the training engine (bit-exact fast path).

The composed autograd graph of one training step is dominated, at the scales
this reproduction trains at, by Python-level node overhead: a single
``BatchNorm`` forward builds ~15 graph nodes (the mean is even computed twice,
once for the normalisation and once inside ``var``), and the
GAP → dense → cross-entropy head builds another ~14 — each with its own
closure, its own small allocations and its own visit during the backward
topological walk.  The kernels here collapse those subgraphs into single
autograd nodes with hand-written backward closures.

**Bit-exactness contract.**  Every kernel replays the *exact* floating-point
operations of the composed graph it replaces — same operation order, same
operand construction (reductions are sensitive to operand memory layout, so
broadcast gradients are materialised with ``broadcast_to(...).astype`` exactly
like ``Tensor.sum``'s backward does), and same gradient accumulation order as
:meth:`Tensor.backward`'s reverse-topological walk produces for the composed
subgraph.  Training through these kernels is therefore float-identical to the
legacy loop — loss curves, early-stopping epochs and final weights match bit
for bit, which ``tests/test_training_engine.py`` pins for one architecture
per input kind.

The kernels are only taken inside a :func:`fused_training` context (entered
by :class:`repro.training.TrainingEngine`); plain ``model.fit`` via the
legacy loop and all inference paths are unaffected.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

import numpy as np

from .tensor import Tensor, is_grad_enabled, unbroadcast
from .workspace import Workspace


# ---------------------------------------------------------------------------
# Thread-local fused-training mode
# ---------------------------------------------------------------------------
class _FusedState(threading.local):
    """Per-thread switch consulted by the conv / batch-norm layers."""

    def __init__(self) -> None:
        self.active: bool = False
        self.workspace: Optional[Workspace] = None


_state = _FusedState()


def is_fused_training() -> bool:
    """Whether the fused training kernels are enabled on this thread."""
    return _state.active


def active_workspace() -> Optional[Workspace]:
    """The scratch-buffer workspace of the active fused-training context."""
    return _state.workspace


class fused_training:
    """Context manager enabling the fused training kernels on this thread.

    Parameters
    ----------
    workspace:
        Optional :class:`~repro.nn.workspace.Workspace` whose buffers the
        convolution im2col / col2im paths reuse across mini-batches.  The
        caller must invoke ``workspace.release_all()`` after each optimizer
        step (the training engine does).
    """

    def __init__(self, workspace: Optional[Workspace] = None) -> None:
        self._workspace = workspace
        self._previous: list = []

    def __enter__(self) -> "fused_training":
        self._previous.append((_state.active, _state.workspace))
        _state.active = True
        _state.workspace = self._workspace
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        _state.active, _state.workspace = self._previous.pop()
        return False


# ---------------------------------------------------------------------------
# Fused batch normalisation (training mode)
# ---------------------------------------------------------------------------
def _batch_norm_node(bn, xd: np.ndarray, relu: bool):
    """Forward value + backward core of the fused training-mode BatchNorm.

    Replays, in order: the running-statistics update (``np.mean`` /
    ``np.var`` replicated via one shared sum), the graph forward
    ``((x - mean) / (var + eps) ** 0.5) * w + b``, and a backward closure
    reproducing the composed graph's gradients — including the
    ``((d-path + mean-path) + var-sub-path) + var-mean-path`` accumulation
    order of the four contributions into ``x``.  The scalar constants are
    materialised in the input's dtype so the float32 compute tier never
    silently promotes to float64 (a no-op for the float64 reference path).

    Returns ``(out_data, backward)`` with ``backward(g) -> (g_x, g_weight,
    g_bias)``; shared by :func:`batch_norm_training` (parents ``x, w, b``)
    and :func:`concat_batch_norm_relu` (parents ``*branches, w, b``).
    """
    if xd.shape[1] != bn.num_features:
        raise ValueError(f"expected {bn.num_features} channels, got {xd.shape[1]}")
    shape = bn._shape_for(xd)
    axes = bn._stat_axes(xd)
    count = 1
    for axis in axes:
        count *= xd.shape[axis]
    scale = np.asarray(1.0 / count, dtype=xd.dtype)

    # One reduction serves the running mean (np.mean == sum / count), the
    # running variance (np.var's internal arrmean is the same quotient) and
    # both mean nodes of the composed graph (x.mean inside var() recomputes
    # the identical sum, so sharing it is bit-neutral).
    sum1 = xd.sum(axis=axes, keepdims=True)
    batch_mean = sum1.reshape(bn.num_features) / count
    centered_np = xd - sum1 / count
    batch_var = (centered_np * centered_np).sum(axis=axes) / count
    bn.running_mean = (1 - bn.momentum) * bn.running_mean + bn.momentum * batch_mean
    bn.running_var = (1 - bn.momentum) * bn.running_var + bn.momentum * batch_var

    mean = sum1 * scale
    c = xd - mean
    var = (c * c).sum(axis=axes, keepdims=True) * scale
    ve = var + np.asarray(bn.eps, dtype=xd.dtype)
    sd = ve ** 0.5
    normalized = c / sd
    w_r = bn.weight.data.reshape(shape)
    out_data = normalized * w_r + bn.bias.data.reshape(shape)
    if relu:
        relu_mask = out_data > 0
        out_data = out_data * relu_mask

    weight, bias = bn.weight, bn.bias
    full_shape, dtype = xd.shape, xd.dtype

    def backward(g: np.ndarray):
        if relu:
            g = g * relu_mask
        g_bias = g.sum(axis=axes, keepdims=True).reshape(bias.data.shape)
        g_norm = g * w_r
        g_weight = (g * normalized).sum(axis=axes, keepdims=True).reshape(weight.data.shape)
        # d-path: normalized = d / sd
        g_d = g_norm / sd
        g_sd = (-g_norm * c / (sd ** 2)).sum(axis=axes, keepdims=True)
        g_ve = g_sd * 0.5 * ve ** (0.5 - 1)
        # var-path: var = (c * c).sum * scale; the composed sum backward
        # materialises the broadcast (layout matters for the reductions and
        # elementwise ops downstream).
        g_sq = np.broadcast_to(g_ve * scale, full_shape).astype(dtype)
        p = g_sq * c
        g_c = p + p  # c appears twice as a parent of c * c
        g_mean2 = (-g_c).sum(axis=axes, keepdims=True)
        g_mean1 = (-g_d).sum(axis=axes, keepdims=True)
        t_mean1 = np.broadcast_to(g_mean1 * scale, full_shape).astype(dtype)
        t_mean2 = np.broadcast_to(g_mean2 * scale, full_shape).astype(dtype)
        # Accumulation order of the reverse-topological walk.
        g_x = ((g_d + t_mean1) + g_c) + t_mean2
        return (g_x, g_weight, g_bias)

    return out_data, backward


def batch_norm_training(bn, x: Tensor, relu: bool = False) -> Tensor:
    """One-node replacement for the composed training-mode BatchNorm graph.

    With ``relu=True`` the following ReLU node is folded in as well (the
    ``Conv → BatchNorm → ReLU`` blocks of the CNN family), replicating the
    composed ``mask``-multiply forward and ``grad * mask`` backward.  See
    :func:`_batch_norm_node` for the replayed operation order.
    """
    out_data, backward = _batch_norm_node(bn, x.data, relu)
    return Tensor._make(out_data, (x, bn.weight, bn.bias), backward,
                        name="batch_norm_relu" if relu else "batch_norm")


def batch_norm_relu(bn, x: Tensor) -> Tensor:
    """``bn(x).relu()`` with the pair folded into one node under fused training.

    The models that apply BatchNorm and ReLU as direct calls (the residual
    blocks of ResNet, the inception residual projections) cannot use the
    ``Sequential``-level pair folding, so they dispatch through this helper;
    outside fused training it composes the exact modules it replaces.
    """
    if bn.training and is_grad_enabled() and _state.active:
        return batch_norm_training(bn, x, relu=True)
    return bn(x).relu()


def add_relu(a: Tensor, b: Tensor) -> Tensor:
    """Residual tail ``(a + b).relu()`` as a single node under fused training.

    Replays the composed ``add`` + ``relu`` nodes bit for bit: the same
    mask-multiply forward (not ``np.maximum``) and the same ``grad * mask``
    flowing to both parents — the residual shapes are always equal, so the
    composed add's ``unbroadcast`` is the identity it is here.
    """
    if not (_state.active and is_grad_enabled()):
        return (a + b).relu()
    out_data = a.data + b.data
    mask = out_data > 0
    out_data = out_data * mask

    def backward(g: np.ndarray):
        g_masked = g * mask
        return (unbroadcast(g_masked, a.shape), unbroadcast(g_masked, b.shape))

    return Tensor._make(out_data, (a, b), backward, name="add_relu")


def concat_batch_norm_relu(tensors: Sequence[Tensor], bn, axis: int = 1) -> Tensor:
    """InceptionTime's ``concatenate → BatchNorm → ReLU`` tail as one node.

    Under fused training the branch outputs are concatenated once, normalised
    through :func:`_batch_norm_node` with the ReLU folded in, and the backward
    closure slices the input gradient back per branch with the exact basic
    slices :meth:`Tensor.concatenate`'s composed backward produces — so the
    whole module tail is one autograd node instead of three, bit-identical to
    the composed graph.  Outside fused training it composes the modules it
    replaces.
    """
    tensors = [Tensor._coerce(t) for t in tensors]
    if not (_state.active and is_grad_enabled() and bn.training):
        return bn(Tensor.concatenate(tensors, axis=axis)).relu()
    xd = np.concatenate([t.data for t in tensors], axis=axis)
    out_data, bn_backward = _batch_norm_node(bn, xd, relu=True)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        g_x, g_weight, g_bias = bn_backward(g)
        grads = []
        for i in range(len(tensors)):
            index = [slice(None)] * g_x.ndim
            index[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g_x[tuple(index)])
        return tuple(grads) + (g_weight, g_bias)

    return Tensor._make(out_data, tuple(tensors) + (bn.weight, bn.bias), backward,
                        name="concat_batch_norm_relu")


def same_max_pool3(x: Tensor) -> Tensor:
    """"Same" max pooling (window 3, stride 1) over the last axis as one node.

    Replaces the inception pool branch's composed ``pad → (expand_dims →)
    max_pool → (squeeze)`` chain — four autograd nodes, an ``np.pad`` call, a
    materialised window copy for the argmax bookkeeping and an ``np.add.at``
    scatter — with a single node computing identical values from shifted
    slices:

    * forward: ``max`` is exact (no rounding), so the shifted-slice
      ``np.maximum`` chain equals the composed strided-window reduction bit
      for bit;
    * argmax ties: strict ``>`` comparisons keep the earliest offset, matching
      ``np.argmax``'s first-occurrence rule;
    * backward: per-offset masked adds run in descending offset order, which
      is exactly the target-position order ``np.add.at`` accumulates
      overlapping windows in, so the summation rounds identically.  (A masked
      add can turn a ``-0.0`` gradient into ``+0.0``; like the fused ReLU
      forward, that is ``array_equal``-neutral.)
    """
    xd = x.data
    length = xd.shape[-1]
    padded = np.zeros(xd.shape[:-1] + (length + 2,), dtype=xd.dtype)
    padded[..., 1:-1] = xd
    w0 = padded[..., :-2]
    w1 = padded[..., 1:-1]
    w2 = padded[..., 2:]
    m01 = np.maximum(w0, w1)
    out = np.maximum(m01, w2)
    if not (is_grad_enabled() and x.requires_grad):
        return Tensor(out, name="same_max_pool3")
    sel2 = w2 > m01
    sel1 = ~sel2 & (w1 > w0)
    sel0 = ~(sel2 | sel1)

    def backward(g: np.ndarray):
        grad_padded = np.zeros(padded.shape, dtype=g.dtype)
        for offset, sel in ((2, sel2), (1, sel1), (0, sel0)):
            grad_padded[..., offset:offset + length] += np.where(sel, g, 0.0)
        return (grad_padded[..., 1:-1],)

    return Tensor._make(out, (x,), backward, name="same_max_pool3")


# ---------------------------------------------------------------------------
# Fused GAP -> dense -> cross-entropy head
# ---------------------------------------------------------------------------
def gap_linear_cross_entropy(feats: Tensor, classifier, targets: np.ndarray) -> Tensor:
    """One-node loss for architectures ending in GAP + dense (CAM heads).

    Equivalent to ``cross_entropy(classifier(global_average_pool(feats)), y)``
    with the composed graph's ~14 nodes collapsed into one; forward and
    backward replay the composed operations bit for bit.  ``classifier`` must
    be a :class:`repro.nn.Linear` with a bias (every
    :class:`~repro.models.conv_common.ConvBackboneClassifier` head qualifies).
    """
    if classifier.bias is None:
        raise ValueError("fused head requires a classifier with a bias")
    fd = feats.data
    spatial_axes = tuple(range(2, fd.ndim))
    count = 1
    for axis in spatial_axes:
        count *= fd.shape[axis]
    s_gap = np.asarray(1.0 / count, dtype=fd.dtype)
    gap_sum = fd.sum(axis=spatial_axes)
    gap = gap_sum * s_gap

    weight_t = classifier.weight.data.T
    logits = gap @ weight_t
    logits = logits + classifier.bias.data

    targets = np.asarray(targets, dtype=np.int64)
    batch = logits.shape[0]
    if targets.shape != (batch,):
        raise ValueError(f"targets must have shape ({batch},), got {targets.shape}")
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exps = np.exp(shifted)
    sumexp = exps.sum(axis=-1, keepdims=True)
    log_probs = shifted - np.log(sumexp)
    picked = log_probs[np.arange(batch), targets]
    s_mean = np.asarray(1.0 / batch, dtype=fd.dtype)
    loss_data = -(picked.sum() * s_mean)

    weight, bias = classifier.weight, classifier.bias
    feats_shape, dtype = fd.shape, fd.dtype

    def backward(g: np.ndarray):
        # loss = -(picked.sum() * s_mean)
        g_picked = np.broadcast_to((-g) * s_mean, (batch,)).astype(dtype)
        # picked = log_probs[arange, targets]
        g_logp = np.zeros(log_probs.shape, dtype=dtype)
        np.add.at(g_logp, (np.arange(batch), targets), g_picked)
        # log_probs = shifted - log(sumexp)
        g_logse = (-g_logp).sum(axis=1, keepdims=True)
        g_sumexp = g_logse / sumexp
        g_exps = np.broadcast_to(g_sumexp, exps.shape).astype(dtype)
        # shifted: direct contribution first, exp-path second (walk order)
        g_shifted = g_logp + g_exps * exps
        # shifted = logits - const(max); logits = gap @ W.T + bias
        g_bias = g_shifted.sum(axis=0)
        g_gap = g_shifted @ np.swapaxes(weight_t, -1, -2)
        g_weight = (np.swapaxes(gap, -1, -2) @ g_shifted).transpose(1, 0)
        # gap = feats.mean(spatial_axes)
        g_gap_sum = g_gap * s_gap
        for axis in sorted(spatial_axes):
            g_gap_sum = np.expand_dims(g_gap_sum, axis)
        g_feats = np.broadcast_to(g_gap_sum, feats_shape).astype(dtype)
        return (g_feats, g_weight, g_bias)

    return Tensor._make(loss_data, (feats, weight, bias), backward,
                        name="gap_linear_ce")
