"""Layer / module abstractions built on top of the autograd engine.

The API intentionally mirrors a small subset of ``torch.nn`` so the model code
in :mod:`repro.models` reads like the architectures described in the paper.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import fused as _fused
from . import init
from .tensor import Tensor, is_grad_enabled


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Sub-classes register :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` and :meth:`state_dict` discover them by
    attribute traversal, in attribute insertion order.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Parameter discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for attr_name, attr in vars(self).items():
            full_name = f"{prefix}{attr_name}"
            if isinstance(attr, Parameter):
                yield full_name, attr
            elif isinstance(attr, Module):
                yield from attr.named_parameters(prefix=f"{full_name}.")
            elif isinstance(attr, (list, tuple)):
                for index, item in enumerate(attr):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{index}.")
                    elif isinstance(item, Parameter):
                        yield f"{full_name}.{index}", item

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Non-trainable state (e.g. batch-norm running statistics)."""
        for attr_name, attr in vars(self).items():
            full_name = f"{prefix}{attr_name}"
            if isinstance(attr, Module):
                yield from attr.named_buffers(prefix=f"{full_name}.")
            elif isinstance(attr, (list, tuple)):
                for index, item in enumerate(attr):
                    if isinstance(item, Module):
                        yield from item.named_buffers(prefix=f"{full_name}.{index}.")
            elif attr_name.startswith("running_") and isinstance(attr, np.ndarray):
                yield full_name, attr

    def modules(self) -> Iterator["Module"]:
        yield self
        for attr in vars(self).values():
            if isinstance(attr, Module):
                yield from attr.modules()
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    # Train / eval switches
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def astype(self, dtype) -> "Module":
        """Cast every parameter and running buffer to ``dtype`` in place.

        Only the two compute dtypes are accepted: float64 (the reference
        precision) and float32 (the opt-in fast tier).  Pending gradients are
        dropped — a cast invalidates them.
        """
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(
                f"unsupported compute dtype {dtype!r}; expected float32 or float64")
        for param in self.parameters():
            param.data = param.data.astype(dtype, copy=False)
            param.grad = None
        for module in self.modules():
            for attr_name, attr in vars(module).items():
                if attr_name.startswith("running_") and isinstance(attr, np.ndarray):
                    setattr(module, attr_name, attr.astype(dtype, copy=False))
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = np.array(param.data, copy=True)
        for name, buffer in self.named_buffers():
            state[f"buffer.{name}"] = np.array(buffer, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        for name, value in state.items():
            if name.startswith("buffer."):
                buffer_name = name[len("buffer.") :]
                if buffer_name not in buffers:
                    raise KeyError(f"unknown buffer {buffer_name!r}")
                buffers[buffer_name][...] = value
            else:
                if name not in params:
                    raise KeyError(f"unknown parameter {name!r}")
                if params[name].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name!r}: "
                        f"{params[name].data.shape} vs {value.shape}"
                    )
                params[name].data[...] = value

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)


# ---------------------------------------------------------------------------
# Elementary layers
# ---------------------------------------------------------------------------
class Identity(Module):
    """Pass-through layer; useful for optional residual shortcuts."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Fully connected (dense) layer: ``y = x @ W.T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.glorot_uniform((out_features, in_features), in_features, out_features, rng),
            name="linear.weight",
        )
        self.bias = Parameter(np.zeros(out_features), name="linear.bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv1d(Module):
    """1D convolution over ``(batch, in_channels, length)`` inputs."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size
        self.weight = Parameter(
            init.he_uniform((out_channels, in_channels, kernel_size), fan_in, rng),
            name="conv1d.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name="conv1d.bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv1d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class Conv2d(Module):
    """2D convolution over ``(batch, in_channels, height, width)`` inputs."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: Tuple[int, int],
                 stride: Tuple[int, int] = (1, 1), padding: Tuple[int, int] = (0, 0),
                 bias: bool = True, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = tuple(kernel_size)
        self.stride = tuple(stride)
        self.padding = tuple(padding)
        kh, kw = self.kernel_size
        fan_in = in_channels * kh * kw
        self.weight = Parameter(
            init.he_uniform((out_channels, in_channels, kh, kw), fan_in, rng),
            name="conv2d.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name="conv2d.bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class BatchNorm(Module):
    """Batch normalisation over the channel axis (axis 1).

    Supports 2D ``(batch, channels)``, 3D ``(batch, channels, length)`` and 4D
    ``(batch, channels, height, width)`` inputs.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(np.ones(num_features), name="bn.weight")
        self.bias = Parameter(np.zeros(num_features), name="bn.bias")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def _stat_axes(self, x: Tensor) -> Tuple[int, ...]:
        return (0,) + tuple(range(2, x.ndim))

    def _shape_for(self, x: Tensor) -> Tuple[int, ...]:
        return (1, self.num_features) + (1,) * (x.ndim - 2)

    def forward(self, x: Tensor) -> Tensor:
        if self.training and is_grad_enabled() and _fused.is_fused_training():
            # Training fast path of the fused engine: the composed ~15-node
            # normalisation graph as a single bit-exact autograd node.
            return _fused.batch_norm_training(self, x)
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} channels, got {x.shape[1]}"
            )
        shape = self._shape_for(x)
        axes = self._stat_axes(x)
        if not self.training and not is_grad_enabled():
            # Inference fast path: fold the normalisation into one scale and
            # one shift per channel (two passes over the activation instead of
            # four).  Equivalent to the Tensor expression below up to a few
            # ulps of floating-point reassociation.
            scale = self.weight.data / (self.running_var + self.eps) ** 0.5
            shift = self.bias.data - self.running_mean * scale
            out = x.data * scale.reshape(shape)
            out += shift.reshape(shape)
            return Tensor(out, name="batch_norm")
        if self.training:
            batch_mean = x.data.mean(axis=axes)
            batch_var = x.data.var(axis=axes)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * batch_var
            )
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
        normalized = (x - mean) / (var + self.eps) ** 0.5
        weight = self.weight.reshape(shape)
        bias = self.bias.reshape(shape)
        return normalized * weight + bias


class BatchNorm1d(BatchNorm):
    """Alias of :class:`BatchNorm` for ``(batch, channels, length)`` inputs."""


class BatchNorm2d(BatchNorm):
    """Alias of :class:`BatchNorm` for ``(batch, channels, height, width)`` inputs."""


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)


class MaxPool1d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool1d(x, self.kernel_size, self.stride)


class MaxPool2d(Module):
    def __init__(self, kernel_size: Tuple[int, int], stride: Optional[Tuple[int, int]] = None) -> None:
        super().__init__()
        self.kernel_size = tuple(kernel_size)
        self.stride = tuple(stride) if stride is not None else self.kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class GlobalAveragePooling(Module):
    """Average every spatial position, producing ``(batch, channels)``."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_average_pool(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.children_list: List[Module] = list(modules)

    def append(self, module: Module) -> "Sequential":
        self.children_list.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self.children_list)

    def __getitem__(self, index: int) -> Module:
        return self.children_list[index]

    def __len__(self) -> int:
        return len(self.children_list)

    def forward(self, x: Tensor) -> Tensor:
        modules = self.children_list
        if not is_grad_enabled():
            # Inference fast path: collapse Conv2d -> BatchNorm(eval) -> ReLU
            # triplets into one fused kernel; anything else runs as usual.
            index, count = 0, len(modules)
            while index < count:
                module = modules[index]
                if (index + 2 < count
                        and type(module) is Conv2d
                        and isinstance(modules[index + 1], BatchNorm)
                        and not modules[index + 1].training
                        and type(modules[index + 2]) is ReLU):
                    x = Tensor(F.fused_conv_bn_relu(x.data, module, modules[index + 1]),
                               name="conv_bn_relu")
                    index += 3
                    continue
                x = module(x)
                index += 1
            return x
        if _fused.is_fused_training():
            # Training fast path of the fused engine: fold BatchNorm -> ReLU
            # pairs into one bit-exact node (the relu mask rides along on the
            # batch-norm backward closure).
            index, count = 0, len(modules)
            while index < count:
                module = modules[index]
                if (index + 1 < count
                        and isinstance(module, BatchNorm)
                        and module.training
                        and type(modules[index + 1]) is ReLU):
                    x = _fused.batch_norm_training(module, x, relu=True)
                    index += 2
                    continue
                x = module(x)
                index += 1
            return x
        for module in modules:
            x = module(x)
        return x
