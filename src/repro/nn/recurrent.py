"""Recurrent layers (RNN, LSTM, GRU) used as baselines in the paper.

The paper's experimental setup (Section 5.2) uses a single recurrent hidden
layer of 128 neurons followed by a dense layer.  These cells iterate over the
time axis of a ``(batch, dimensions, length)`` multivariate series, consuming
one time step (a ``(batch, dimensions)`` slice) at a time.

Under :func:`repro.nn.inference_mode` the per-step tensors record no parents,
so the unrolled graph — normally ``O(length)`` retained activations — is never
materialised and each step's intermediates are freed immediately.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import init
from .layers import Module, Parameter
from .tensor import Tensor


class RNNCell(Module):
    """Vanilla (Elman) recurrent cell: ``h' = tanh(x W_ih.T + h W_hh.T + b)``."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            init.glorot_uniform((hidden_size, input_size), input_size, hidden_size, rng))
        self.weight_hh = Parameter(init.orthogonal((hidden_size, hidden_size), rng))
        self.bias = Parameter(np.zeros(hidden_size))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        return (x.matmul(self.weight_ih.transpose())
                + hidden.matmul(self.weight_hh.transpose())
                + self.bias).tanh()


class LSTMCell(Module):
    """Long short-term memory cell with input/forget/cell/output gates."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        gate_size = 4 * hidden_size
        self.weight_ih = Parameter(
            init.glorot_uniform((gate_size, input_size), input_size, gate_size, rng))
        self.weight_hh = Parameter(
            init.glorot_uniform((gate_size, hidden_size), hidden_size, gate_size, rng))
        # Initialise the forget-gate bias to 1 (standard practice to ease
        # gradient flow early in training).
        bias = np.zeros(gate_size)
        bias[hidden_size: 2 * hidden_size] = 1.0
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        hidden, cell = state
        gates = (x.matmul(self.weight_ih.transpose())
                 + hidden.matmul(self.weight_hh.transpose())
                 + self.bias)
        h = self.hidden_size
        input_gate = gates[:, 0:h].sigmoid()
        forget_gate = gates[:, h: 2 * h].sigmoid()
        cell_candidate = gates[:, 2 * h: 3 * h].tanh()
        output_gate = gates[:, 3 * h: 4 * h].sigmoid()
        new_cell = forget_gate * cell + input_gate * cell_candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell


class GRUCell(Module):
    """Gated recurrent unit cell."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        gate_size = 3 * hidden_size
        self.weight_ih = Parameter(
            init.glorot_uniform((gate_size, input_size), input_size, gate_size, rng))
        self.weight_hh = Parameter(
            init.glorot_uniform((gate_size, hidden_size), hidden_size, gate_size, rng))
        self.bias_ih = Parameter(np.zeros(gate_size))
        self.bias_hh = Parameter(np.zeros(gate_size))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        h = self.hidden_size
        gates_x = x.matmul(self.weight_ih.transpose()) + self.bias_ih
        gates_h = hidden.matmul(self.weight_hh.transpose()) + self.bias_hh
        reset = (gates_x[:, 0:h] + gates_h[:, 0:h]).sigmoid()
        update = (gates_x[:, h: 2 * h] + gates_h[:, h: 2 * h]).sigmoid()
        candidate = (gates_x[:, 2 * h: 3 * h] + reset * gates_h[:, 2 * h: 3 * h]).tanh()
        ones = Tensor(np.ones_like(update.data))
        return update * hidden + (ones - update) * candidate


class RecurrentLayer(Module):
    """Unroll a recurrent cell over the time axis of a multivariate series.

    Input is ``(batch, dimensions, length)``; the output is the hidden state at
    the last time step, of shape ``(batch, hidden_size)``.
    """

    def __init__(self, cell_type: str, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        cell_type = cell_type.lower()
        if cell_type == "rnn":
            self.cell: Module = RNNCell(input_size, hidden_size, rng)
        elif cell_type == "lstm":
            self.cell = LSTMCell(input_size, hidden_size, rng)
        elif cell_type == "gru":
            self.cell = GRUCell(input_size, hidden_size, rng)
        else:
            raise ValueError(f"unknown recurrent cell type {cell_type!r}")
        self.cell_type = cell_type
        self.input_size = input_size
        self.hidden_size = hidden_size

    def forward(self, x: Tensor) -> Tensor:
        batch, _, length = x.shape
        hidden = Tensor(np.zeros((batch, self.hidden_size)))
        cell_state = Tensor(np.zeros((batch, self.hidden_size)))
        for t in range(length):
            step = x[:, :, t]
            if self.cell_type == "lstm":
                hidden, cell_state = self.cell(step, (hidden, cell_state))
            else:
                hidden = self.cell(step, hidden)
        return hidden
