"""Saving and loading model weights as ``.npz`` archives.

The archive stores every parameter and buffer under its dotted
:meth:`Module.state_dict` name, plus one metadata entry (``__training__``)
recording the module's train/eval mode, so a save → load round-trip restores
trained models *exactly*: parameters, BatchNorm running statistics and the
mode that selects between batch and running statistics.  The serving layer's
model artifact store builds on this file format and on :func:`state_hash`,
the canonical content fingerprint of a model's state.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Union

import numpy as np

from .layers import Module

#: Archive key carrying the train/eval mode (not part of the state dict).
_TRAINING_KEY = "__training__"


def save_state_dict(module: Module, path: str) -> None:
    """Serialise all parameters and buffers of ``module`` to ``path``.

    The file is a standard NumPy ``.npz`` archive whose keys are the
    dotted parameter names returned by :meth:`Module.named_parameters`
    (buffers are prefixed ``buffer.``), plus the train/eval mode flag.
    """
    state = module.state_dict()
    state[_TRAINING_KEY] = np.array(module.training, dtype=bool)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state_dict(module: Module, path: str) -> None:
    """Load parameters saved by :func:`save_state_dict` into ``module``.

    Restores the saved train/eval mode as well (archives written before the
    mode flag existed leave the module's current mode untouched), so a
    loaded model reproduces the original's ``logits`` and explanation
    outputs bit for bit.
    """
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    training = state.pop(_TRAINING_KEY, None)
    module.load_state_dict(state)
    if training is not None:
        if bool(training):
            module.train()
        else:
            module.eval()


def state_hash(model_or_state: Union[Module, Dict[str, np.ndarray]]) -> str:
    """Canonical SHA-256 fingerprint of a module's (or state dict's) content.

    Folds in every entry's name, dtype, shape and raw bytes in state-dict
    order, so two models hash equal exactly when their parameters and buffers
    are bit-identical.  This is the ``model-state`` component of the serving
    layer's content-addressed explanation cache keys: a retrained or
    fine-tuned model can never replay a stale cached explanation.
    """
    state = model_or_state.state_dict() if isinstance(model_or_state, Module) else model_or_state
    digest = hashlib.sha256()
    for name, value in state.items():
        value = np.ascontiguousarray(value)
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(str(value.shape).encode("utf-8"))
        digest.update(value.tobytes())
    return digest.hexdigest()
