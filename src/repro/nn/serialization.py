"""Saving and loading model weights as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .layers import Module


def save_state_dict(module: Module, path: str) -> None:
    """Serialise all parameters and buffers of ``module`` to ``path``.

    The file is a standard NumPy ``.npz`` archive whose keys are the
    dotted parameter names returned by :meth:`Module.named_parameters`.
    """
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state_dict(module: Module, path: str) -> None:
    """Load parameters saved by :func:`save_state_dict` into ``module``."""
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
