"""Gradient-descent optimizers (SGD with momentum and Adam)."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .layers import Parameter


class Optimizer:
    """Base class holding a parameter list and a ``zero_grad`` helper."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015), as used throughout the paper."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.001,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._first_moment, self._second_moment):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping (useful for monitoring training of the
    recurrent baselines, whose gradients can explode).
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in parameters:
            param.grad = param.grad * scale
    return total
