"""Loss functions.

The paper trains every architecture with the categorical cross-entropy loss
and the Adam optimizer (Section 2, "Learning Phase").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .tensor import Tensor


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  class_weights: Optional[np.ndarray] = None) -> Tensor:
    """Categorical cross-entropy from unnormalised logits.

    Parameters
    ----------
    logits:
        Tensor of shape ``(batch, num_classes)``.
    targets:
        Integer class labels of shape ``(batch,)``.
    class_weights:
        Optional per-class weights (useful for unbalanced datasets).
    """
    targets = np.asarray(targets, dtype=np.int64)
    batch = logits.shape[0]
    if targets.shape != (batch,):
        raise ValueError(f"targets must have shape ({batch},), got {targets.shape}")
    log_probs = F.log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(batch), targets]
    if class_weights is not None:
        weights = np.asarray(class_weights, dtype=logits.data.dtype)[targets]
        weighted = picked * Tensor(weights)
        return -(weighted.sum() / float(weights.sum()))
    return -(picked.mean())


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error (used in auxiliary tests of the substrate)."""
    diff = prediction - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log-likelihood from log-probabilities."""
    targets = np.asarray(targets, dtype=np.int64)
    batch = log_probs.shape[0]
    picked = log_probs[np.arange(batch), targets]
    return -(picked.mean())


class CrossEntropyLoss:
    """Callable object mirroring ``torch.nn.CrossEntropyLoss``."""

    def __init__(self, class_weights: Optional[np.ndarray] = None) -> None:
        self.class_weights = class_weights

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return cross_entropy(logits, targets, self.class_weights)
