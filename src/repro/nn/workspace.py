"""Reusable scratch buffers for the fused training pipeline.

The im2col / col2im strategy of :mod:`repro.nn.functional` allocates a patch
matrix on every convolution forward and a padded gradient image on every
backward.  During training those allocations repeat with identical shapes on
every mini-batch of every epoch, so a :class:`Workspace` lets the training
engine check buffers out per step and return them afterwards instead of
round-tripping through the allocator.

Checkout semantics: :meth:`Workspace.acquire` hands out a buffer and marks it
in use until :meth:`Workspace.release_all` — two convolution layers with the
same patch shape therefore never alias within one forward/backward step, and
a buffer is only ever reused *across* steps, after the autograd closures that
captured it have run.  Buffer contents are either fully overwritten (im2col)
or explicitly zero-filled (col2im) before use, so reuse is invisible to the
numerics.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


class Workspace:
    """A pool of shape-keyed scratch buffers with checkout semantics."""

    def __init__(self) -> None:
        self._free: Dict[Tuple, List[np.ndarray]] = {}
        self._used: List[Tuple[Tuple, np.ndarray]] = []
        #: Number of fresh allocations performed (reuse keeps this constant).
        self.allocations = 0

    def acquire(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Check a buffer of ``(shape, dtype)`` out until :meth:`release_all`."""
        key = (tuple(shape), np.dtype(dtype))
        stack = self._free.get(key)
        if stack:
            buffer = stack.pop()
        else:
            buffer = np.empty(key[0], dtype=key[1])
            self.allocations += 1
        self._used.append((key, buffer))
        return buffer

    def release_all(self) -> None:
        """Return every checked-out buffer to the pool.

        Call only once the autograd closures that captured the buffers have
        run (i.e. after ``optimizer.step()`` of the current mini-batch).
        """
        for key, buffer in self._used:
            self._free.setdefault(key, []).append(buffer)
        self._used.clear()

    @property
    def in_use(self) -> int:
        """Number of currently checked-out buffers."""
        return len(self._used)

    def nbytes(self) -> int:
        """Total bytes held by the workspace (free and in use)."""
        total = sum(b.nbytes for stack in self._free.values() for b in stack)
        return total + sum(b.nbytes for _, b in self._used)
