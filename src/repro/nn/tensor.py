"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the foundation of the :mod:`repro.nn` substrate.  It provides a
:class:`Tensor` type that records the operations applied to it and can
back-propagate gradients through arbitrary compositions of the supported
operations.  The design goal is a small, readable engine sufficient for the
convolutional and recurrent architectures used by the dCAM paper, not a
general-purpose deep-learning framework.

Example
-------
>>> import numpy as np
>>> from repro.nn.tensor import Tensor
>>> x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad
array([2., 4., 6.])
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, "Tensor"]

# ---------------------------------------------------------------------------
# Global gradient-recording mode
# ---------------------------------------------------------------------------
class _GradState(threading.local):
    """Per-thread switch consulted by :meth:`Tensor._make` (and by the fused
    fast paths in :mod:`repro.nn.functional` / :mod:`repro.nn.layers`).

    When ``enabled`` is False, newly created tensors never record parents or
    backward closures, so forward passes build no autograd graph at all.
    Thread-local so that ``inference_mode`` in one thread cannot silently
    disable gradient recording in a concurrently training thread.
    """

    def __init__(self) -> None:
        self.enabled: bool = True


_grad_state = _GradState()


def is_grad_enabled() -> bool:
    """Whether operations currently record an autograd graph."""
    return _grad_state.enabled


def set_grad_enabled(mode: bool) -> bool:
    """Set this thread's grad-recording mode; returns the previous mode."""
    previous = _grad_state.enabled
    _grad_state.enabled = bool(mode)
    return previous


class _GradMode:
    """Re-entrant context manager toggling the global grad-recording mode.

    A stack of saved modes makes reusing (even nesting) one instance safe.
    """

    __slots__ = ("_mode", "_previous")

    def __init__(self, mode: bool) -> None:
        self._mode = bool(mode)
        self._previous: list = []

    def __enter__(self) -> "_GradMode":
        self._previous.append(set_grad_enabled(self._mode))
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        # Restore unconditionally so an exception inside the block cannot
        # leave the process stuck in no-grad mode.
        set_grad_enabled(self._previous.pop())
        return False


def inference_mode() -> _GradMode:
    """Context manager disabling autograd recording for its dynamic extent.

    Inside the block every operation takes the allocation-light path: no
    parent edges, no backward closures, and the im2col buffers of the
    convolutions are released as soon as the forward value is computed.
    Use it for prediction and for CAM/dCAM extraction, which only need
    activations — never for training, and never around the forward pass of a
    Grad-CAM baseline (those need the recorded graph).
    """
    return _GradMode(False)


def no_grad() -> _GradMode:
    """Alias of :func:`inference_mode`, mirroring ``torch.no_grad``."""
    return _GradMode(False)


#: The two supported compute dtypes: float64 is the reference precision,
#: float32 the opt-in fast tier (``TrainingConfig(precision="float32")``).
_FLOAT32 = np.dtype(np.float32)
_FLOAT64 = np.dtype(np.float64)


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    """Coerce a python scalar, sequence or array into a float ndarray.

    Arrays that already carry a float compute dtype (float32 or float64) pass
    through unchanged, so the dtype chosen by ``prepare_input`` propagates
    through the whole graph; anything else (python scalars, integer arrays,
    nested lists) is coerced to ``dtype`` (float64, the reference precision).
    """
    if isinstance(value, Tensor):
        return value.data
    if isinstance(value, np.ndarray) and value.dtype in (_FLOAT32, _FLOAT64):
        return value
    arr = np.asarray(value, dtype=dtype)
    return arr


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the axes that were broadcast to reach ``grad.shape``.

    When an operation broadcasts an operand of shape ``shape`` up to the shape
    of ``grad``, the gradient flowing back must be reduced over the broadcast
    axes so that it matches the original operand shape again.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were 1 in the original shape but expanded.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like holding the tensor values.  Stored as ``float64`` by
        default for numerically robust gradient checking.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    parents:
        Tensors this tensor was computed from (autograd graph edges).
    backward_fn:
        Closure propagating the gradient of this tensor to its parents.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[Tensor, ...] = tuple(parents)
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying values as a plain ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _accumulate_grad(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1`` which is only valid for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient is only supported "
                    "for scalar tensors; got shape %r" % (self.shape,)
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order of the graph reachable from this tensor.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        self._accumulate_grad(grad)
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None or node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(node_grad)
            if parent_grads is None:
                continue
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None:
                    continue
                parent._accumulate_grad(pgrad)
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pgrad
                else:
                    grads[id(parent)] = pgrad

    # ------------------------------------------------------------------
    # Helpers to build new graph nodes
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], Sequence[Optional[np.ndarray]]],
        name: str = "",
    ) -> "Tensor":
        if not _grad_state.enabled or not any(p.requires_grad for p in parents):
            return Tensor(data, requires_grad=False, name=name)
        return Tensor(
            data,
            requires_grad=True,
            parents=parents,
            backward_fn=backward_fn,
            name=name,
        )

    @staticmethod
    def _coerce(other: ArrayLike, dtype=np.float64) -> "Tensor":
        """Wrap ``other`` as a Tensor, coercing scalars/lists to ``dtype``.

        Binary operators pass their own dtype so python scalars join the
        graph as 0-d arrays of the operand's precision — a 0-d float64 array
        is a *strong* type under NumPy promotion and would silently lift a
        float32 graph back to float64.  Float arrays keep their own dtype
        (see :func:`_as_array`).
        """
        if isinstance(other, Tensor):
            return other
        return Tensor(_as_array(other, dtype=dtype))

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other, self.data.dtype)
        out_data = self.data + other.data

        def backward(grad: np.ndarray):
            return (
                unbroadcast(grad, self.shape),
                unbroadcast(grad, other.shape),
            )

        return Tensor._make(out_data, (self, other), backward, name="add")

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward, name="neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other, self.data.dtype)
        out_data = self.data - other.data

        def backward(grad: np.ndarray):
            return (
                unbroadcast(grad, self.shape),
                unbroadcast(-grad, other.shape),
            )

        return Tensor._make(out_data, (self, other), backward, name="sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor._coerce(other, self.data.dtype).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other, self.data.dtype)
        out_data = self.data * other.data

        def backward(grad: np.ndarray):
            return (
                unbroadcast(grad * other.data, self.shape),
                unbroadcast(grad * self.data, other.shape),
            )

        return Tensor._make(out_data, (self, other), backward, name="mul")

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other, self.data.dtype)
        out_data = self.data / other.data

        def backward(grad: np.ndarray):
            return (
                unbroadcast(grad / other.data, self.shape),
                unbroadcast(-grad * self.data / (other.data ** 2), other.shape),
            )

        return Tensor._make(out_data, (self, other), backward, name="div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor._coerce(other, self.data.dtype).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(out_data, (self,), backward, name="pow")

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def matmul(self, other: ArrayLike) -> "Tensor":
        other = Tensor._coerce(other, self.data.dtype)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                grad_a = grad * b
                grad_b = grad * a
            elif a.ndim == 1:
                grad_a = grad @ np.swapaxes(b, -1, -2)
                grad_b = np.outer(a, grad) if b.ndim == 2 else a[:, None] * grad
            elif b.ndim == 1:
                grad_a = np.expand_dims(grad, -1) * b
                grad_b = np.swapaxes(a, -1, -2) @ grad
                grad_b = unbroadcast(grad_b, b.shape)
            else:
                grad_a = grad @ np.swapaxes(b, -1, -2)
                grad_b = np.swapaxes(a, -1, -2) @ grad
                grad_a = unbroadcast(grad_a, a.shape)
                grad_b = unbroadcast(grad_b, b.shape)
            return (grad_a, grad_b)

        return Tensor._make(out_data, (self, other), backward, name="matmul")

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * out_data,)

        return Tensor._make(out_data, (self,), backward, name="exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray):
            return (grad / self.data,)

        return Tensor._make(out_data, (self,), backward, name="log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray):
            return (grad * 0.5 / out_data,)

        return Tensor._make(out_data, (self,), backward, name="sqrt")

    def relu(self) -> "Tensor":
        if not _grad_state.enabled:
            return Tensor(np.maximum(self.data, 0.0), name="relu")
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(out_data, (self,), backward, name="relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        # np.where with python-float branches yields float64; pin the input's
        # dtype so the float32 tier is not silently promoted.
        scale = np.where(mask, 1.0, negative_slope).astype(self.data.dtype, copy=False)
        out_data = self.data * scale

        def backward(grad: np.ndarray):
            return (grad * scale,)

        return Tensor._make(out_data, (self,), backward, name="leaky_relu")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - out_data ** 2),)

        return Tensor._make(out_data, (self,), backward, name="tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray):
            return (grad * out_data * (1.0 - out_data),)

        return Tensor._make(out_data, (self,), backward, name="sigmoid")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray):
            return (grad * sign,)

        return Tensor._make(out_data, (self,), backward, name="abs")

    def clip(self, minimum: float, maximum: float) -> "Tensor":
        out_data = np.clip(self.data, minimum, maximum)
        mask = (self.data >= minimum) & (self.data <= maximum)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(out_data, (self,), backward, name="clip")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            grad = np.asarray(grad)
            if axis is None:
                expanded = np.broadcast_to(grad, self.shape)
            else:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                if not keepdims:
                    for a in sorted(axes):
                        grad = np.expand_dims(grad, a)
                expanded = np.broadcast_to(grad, self.shape)
            return (expanded.astype(self.data.dtype),)

        return Tensor._make(out_data, (self,), backward, name="sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0) along ``axis``."""
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            grad = np.asarray(grad)
            if axis is None:
                mask = self.data == self.data.max()
                expanded = np.broadcast_to(grad, self.shape) * mask
                expanded = expanded / mask.sum()
            else:
                max_kept = self.data.max(axis=axis, keepdims=True)
                mask = self.data == max_kept
                g = grad
                if not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    for a in sorted(a % self.ndim for a in axes):
                        g = np.expand_dims(g, a)
                counts = mask.sum(axis=axis, keepdims=True)
                expanded = np.broadcast_to(g, self.shape) * mask / counts
            return (expanded.astype(self.data.dtype),)

        return Tensor._make(out_data, (self,), backward, name="max")

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray):
            return (grad.reshape(original_shape),)

        return Tensor._make(out_data, (self,), backward, name="reshape")

    def flatten(self) -> "Tensor":
        return self.reshape(self.shape[0], -1) if self.ndim > 1 else self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray):
            return (grad.transpose(inverse),)

        return Tensor._make(out_data, (self,), backward, name="transpose")

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray):
            return (np.squeeze(grad, axis=axis),)

        return Tensor._make(out_data, (self,), backward, name="expand_dims")

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)
        original_shape = self.shape

        def backward(grad: np.ndarray):
            return (grad.reshape(original_shape),)

        return Tensor._make(out_data, (self,), backward, name="squeeze")

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        original_shape = self.shape

        def backward(grad: np.ndarray):
            full = np.zeros(original_shape, dtype=self.data.dtype)
            np.add.at(full, key, grad)
            return (full,)

        return Tensor._make(out_data, (self,), backward, name="getitem")

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad the tensor. ``pad_width`` follows :func:`numpy.pad` syntax."""
        out_data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(before, before + dim)
            for (before, _), dim in zip(pad_width, self.shape)
        )

        def backward(grad: np.ndarray):
            return (grad[slices],)

        return Tensor._make(out_data, (self,), backward, name="pad")

    # ------------------------------------------------------------------
    # Combination helpers
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray):
            grads = []
            for i in range(len(tensors)):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(offsets[i], offsets[i + 1])
                grads.append(grad[tuple(index)])
            return tuple(grads)

        return Tensor._make(out_data, tuple(tensors), backward, name="concatenate")

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        expanded = [t.expand_dims(axis) for t in tensors]
        return Tensor.concatenate(expanded, axis=axis)

    # ------------------------------------------------------------------
    # Comparison helpers (non-differentiable, return ndarrays)
    # ------------------------------------------------------------------
    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)
