"""A minimal NumPy deep-learning substrate.

This package replaces PyTorch in the dCAM reproduction (see DESIGN.md for the
substitution rationale).  It provides reverse-mode autodiff, convolutional and
recurrent layers, losses and optimizers — everything required to train the
CNN / ResNet / InceptionTime families and compute class activation maps.
"""

from . import functional
from .fused import fused_training, is_fused_training
from .layers import (
    BatchNorm,
    BatchNorm1d,
    BatchNorm2d,
    Conv1d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAveragePooling,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool1d,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .loss import CrossEntropyLoss, cross_entropy, mse_loss, nll_loss
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .recurrent import GRUCell, LSTMCell, RecurrentLayer, RNNCell
from .serialization import load_state_dict, save_state_dict, state_hash
from .workspace import Workspace
from .tensor import (
    Tensor,
    inference_mode,
    is_grad_enabled,
    no_grad,
    ones,
    randn,
    set_grad_enabled,
    tensor,
    zeros,
)

__all__ = [
    "functional",
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "inference_mode",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "Module",
    "Parameter",
    "Linear",
    "Conv1d",
    "Conv2d",
    "BatchNorm",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "MaxPool1d",
    "MaxPool2d",
    "GlobalAveragePooling",
    "Flatten",
    "Identity",
    "Sequential",
    "RNNCell",
    "LSTMCell",
    "GRUCell",
    "RecurrentLayer",
    "CrossEntropyLoss",
    "cross_entropy",
    "mse_loss",
    "nll_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "save_state_dict",
    "load_state_dict",
    "state_hash",
    "Workspace",
    "fused_training",
    "is_fused_training",
]
