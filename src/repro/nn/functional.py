"""Neural-network operations on :class:`~repro.nn.tensor.Tensor` objects.

The convolution implementations use an im2col / col2im strategy so that the
heavy lifting is done by vectorised NumPy matrix multiplications, which keeps
CPU-only training of the paper's architectures tractable.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import fused as _fused
from .tensor import Tensor, is_grad_enabled


# ---------------------------------------------------------------------------
# im2col / col2im helpers (2D)
# ---------------------------------------------------------------------------
def _conv_windows(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Zero-pad ``x`` and expose its sliding conv patches as a strided view.

    Returns ``windows`` of shape ``(batch, channels, out_h, out_w, kh, kw)``
    (no data copied) and the spatial output shape ``(out_h, out_w)``.
    """
    batch, channels, height, width = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        # Faster than np.pad, which carries significant per-call overhead.
        padded = np.zeros((batch, channels, height + 2 * ph, width + 2 * pw), dtype=x.dtype)
        padded[:, :, ph: ph + height, pw: pw + width] = x
        x = padded
    padded_h, padded_w = x.shape[2], x.shape[3]
    out_h = (padded_h - kh) // sh + 1
    out_w = (padded_w - kw) // sw + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * sh, s3 * sw, s2, s3),
        writeable=False,
    )
    return windows, (out_h, out_w)


def _im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    workspace=None,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(batch, channels, height, width)``.
    kernel, stride, padding:
        Kernel size, stride and zero padding as ``(vertical, horizontal)``.
    workspace:
        Optional :class:`~repro.nn.workspace.Workspace`; when given, the
        column matrix is written into a checked-out scratch buffer instead of
        a fresh allocation (contents and layout are identical).

    Returns
    -------
    cols:
        Array of shape ``(batch, out_h, out_w, channels * kh * kw)``.
    out_shape:
        The spatial output shape ``(out_h, out_w)``.
    """
    batch, channels = x.shape[0], x.shape[1]
    kh, kw = kernel
    windows, (out_h, out_w) = _conv_windows(x, kernel, stride, padding)
    # (batch, out_h, out_w, channels, kh, kw) -> columns
    if workspace is not None:
        cols = workspace.acquire((batch, out_h, out_w, channels * kh * kw), x.dtype)
        np.copyto(cols.reshape(batch, out_h, out_w, channels, kh, kw),
                  windows.transpose(0, 2, 3, 1, 4, 5))
        return cols, (out_h, out_w)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h, out_w, channels * kh * kw
    )
    return np.ascontiguousarray(cols), (out_h, out_w)


def _col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    workspace=None,
) -> np.ndarray:
    """Scatter column gradients back to image gradients (inverse of im2col)."""
    batch, channels, height, width = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    padded_h, padded_w = height + 2 * ph, width + 2 * pw
    out_h = (padded_h - kh) // sh + 1
    out_w = (padded_w - kw) // sw + 1
    if workspace is not None:
        grad_padded = workspace.acquire((batch, channels, padded_h, padded_w),
                                        cols.dtype)
        grad_padded.fill(0)
    else:
        grad_padded = np.zeros((batch, channels, padded_h, padded_w), dtype=cols.dtype)
    # cols: (batch, out_h, out_w, channels * kh * kw)
    cols = cols.reshape(batch, out_h, out_w, channels, kh, kw)
    for i in range(kh):
        row_end = i + sh * out_h
        for j in range(kw):
            col_end = j + sw * out_w
            grad_padded[:, :, i:row_end:sh, j:col_end:sw] += cols[
                :, :, :, :, i, j
            ].transpose(0, 3, 1, 2)
    if ph or pw:
        return grad_padded[:, :, ph : ph + height, pw : pw + width]
    return grad_padded


# ---------------------------------------------------------------------------
# Convolutions
# ---------------------------------------------------------------------------

#: Contraction plans for the inference conv einsum, keyed by operand shapes
#: (path planning costs ~5-10% of a small forward pass if repeated every call).
_conv_einsum_paths: dict = {}


def _conv_einsum_path(windows: np.ndarray, weight: np.ndarray):
    key = (windows.shape, weight.shape)
    path = _conv_einsum_paths.get(key)
    if path is None:
        if len(_conv_einsum_paths) > 256:
            _conv_einsum_paths.clear()
        path = np.einsum_path("bcxyij,ocij->boxy", windows, weight, optimize=True)[0]
        _conv_einsum_paths[key] = path
    return path


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
) -> Tensor:
    """2D cross-correlation.

    Parameters
    ----------
    x:
        Input tensor of shape ``(batch, in_channels, height, width)``.
    weight:
        Kernel tensor of shape ``(out_channels, in_channels, kh, kw)``.
    bias:
        Optional bias of shape ``(out_channels,)``.
    """
    batch = x.shape[0]
    out_channels, in_channels, kh, kw = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {in_channels}"
        )
    needs_grad = is_grad_enabled() and (
        x.requires_grad or weight.requires_grad
        or (bias is not None and bias.requires_grad)
    )
    if not needs_grad:
        # Allocation-light inference path: contract the strided patch view
        # directly (no im2col materialisation, no backward closure), landing
        # the output contiguous in NCHW.
        windows, _ = _conv_windows(x.data, (kh, kw), stride, padding)
        out = np.einsum("bcxyij,ocij->boxy", windows, weight.data,
                        optimize=_conv_einsum_path(windows, weight.data))
        if bias is not None:
            out += bias.data.reshape(1, out_channels, 1, 1)
        return Tensor(out, name="conv2d")

    parents = (x, weight) if bias is None else (x, weight, bias)
    out, backward = _conv2d_train(x.data, weight.data, weight.shape,
                                  None if bias is None else bias.data,
                                  stride, padding, x.requires_grad)
    return Tensor._make(out, parents, backward, name="conv2d")


def _conv2d_train(x_data: np.ndarray, weight_data: np.ndarray,
                  weight_shape: Tuple[int, ...], bias_data: Optional[np.ndarray],
                  stride: Tuple[int, int], padding: Tuple[int, int],
                  need_input_grad: bool):
    """Training-path conv2d on plain arrays: forward value + backward closure.

    Shared by :func:`conv2d` and the fused-training :func:`conv1d` node.  The
    input gradient (a full matmul plus a col2im scatter) is skipped when the
    input does not require it — the first layer of every architecture — which
    is invisible to the autograd walk (``None`` parent gradients are dropped).
    Scratch buffers come from the active fused-training workspace, if any.
    """
    out_channels, in_channels, kh, kw = weight_shape
    batch = x_data.shape[0]
    workspace = _fused.active_workspace() if _fused.is_fused_training() else None
    cols, (out_h, out_w) = _im2col(x_data, (kh, kw), stride, padding, workspace)
    weight_2d = weight_data.reshape(out_channels, -1)
    cols_2d = cols.reshape(-1, in_channels * kh * kw)
    out = cols_2d @ weight_2d.T
    out = out.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
    if bias_data is not None:
        out = out + bias_data.reshape(1, out_channels, 1, 1)
    input_shape = x_data.shape

    def backward(grad: np.ndarray):
        # grad: (batch, out_channels, out_h, out_w)
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, out_channels)
        grad_weight = (grad_flat.T @ cols_2d).reshape(weight_shape)
        if need_input_grad:
            grad_cols = (grad_flat @ weight_2d).reshape(batch, out_h, out_w, -1)
            grad_input = _col2im(grad_cols, input_shape, (kh, kw), stride,
                                 padding, workspace)
        else:
            grad_input = None
        if bias_data is None:
            return (grad_input, grad_weight)
        grad_bias = grad.sum(axis=(0, 2, 3))
        return (grad_input, grad_weight, grad_bias)

    return out, backward


def conv2d_input_grad(
    grad_output: np.ndarray,
    weight: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    stride: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
) -> np.ndarray:
    """VJP of :func:`conv2d` with respect to its input, on plain arrays.

    The explicit-gradient twin of the training backward's input branch, used
    by graph-free explanation paths (grad-CAM) that run under
    ``inference_mode``.  The contraction is an ``einsum`` (each output element
    is accumulated independently, so a row's bits do not depend on the batch
    width, unlike BLAS ``matmul`` — the property the serving parity probe
    checks) followed by the same per-row :func:`_col2im` scatter the training
    path uses.
    """
    out_channels = weight.shape[0]
    weight_2d = np.ascontiguousarray(weight.reshape(out_channels, -1))
    grad_cols = np.einsum("bohw,oc->bhwc", grad_output, weight_2d)
    return _col2im(grad_cols, input_shape, weight.shape[2:], stride, padding)


def conv1d_input_grad(
    grad_output: np.ndarray,
    weight: np.ndarray,
    input_shape: Tuple[int, int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """VJP of :func:`conv1d` with respect to its input, on plain arrays."""
    batch, channels, length = input_shape
    grad4 = conv2d_input_grad(
        grad_output[:, :, None, :],
        weight[:, :, None, :],
        (batch, channels, 1, length),
        (1, stride),
        (0, padding),
    )
    return np.squeeze(grad4, axis=2)


def fused_conv_bn_relu(x_data: np.ndarray, conv, bn,
                       padding: Optional[Tuple[int, int]] = None) -> np.ndarray:
    """Inference-only fusion of ``Conv2d -> BatchNorm(eval) -> ReLU``.

    Folds the normalisation's per-channel scale into the conv kernels and its
    shift into one bias, then applies ReLU in place — one contraction and two
    cheap passes instead of five full-size passes and three graph nodes.
    Numerically equivalent to the unfused layers up to a few ulps of
    floating-point reassociation.

    ``padding`` overrides the conv module's zero padding.  The streaming
    engine (:mod:`repro.stream`) recomputes only the window columns a slide
    dirtied: it hands this kernel a pre-assembled input slab (interior slice
    plus explicit boundary zeros) with ``padding=(0, 0)`` so interior slices
    are not spuriously re-padded, reusing the exact fused arithmetic of the
    full-width path.
    """
    kh, kw = conv.kernel_size
    out_channels = conv.out_channels
    scale = bn.weight.data / (bn.running_var + bn.eps) ** 0.5
    shift = bn.bias.data - bn.running_mean * scale
    if conv.bias is not None:
        shift = shift + conv.bias.data * scale
    weight = conv.weight.data * scale[:, None, None, None]
    if padding is None:
        padding = conv.padding
    windows, _ = _conv_windows(x_data, (kh, kw), conv.stride, padding)
    out = np.einsum("bcxyij,ocij->boxy", windows, weight,
                    optimize=_conv_einsum_path(windows, weight))
    out += shift.reshape(1, out_channels, 1, 1)
    np.maximum(out, 0.0, out=out)
    return out


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """1D cross-correlation over ``(batch, in_channels, length)`` inputs."""
    needs_grad = is_grad_enabled() and (
        x.requires_grad or weight.requires_grad
        or (bias is not None and bias.requires_grad)
    )
    if needs_grad and _fused.is_fused_training():
        # Fused-training path: collapse expand_dims -> conv2d -> squeeze into
        # one node (the wrapper reshapes only shuffle metadata, so folding
        # them into the conv closure is bit-neutral).
        if x.shape[1] != weight.shape[1]:
            raise ValueError(
                f"input has {x.shape[1]} channels but weight expects {weight.shape[1]}"
            )
        out_channels = weight.shape[0]
        out4, backward4 = _conv2d_train(
            x.data[:, :, None, :], weight.data[:, :, None, :],
            (out_channels, weight.shape[1], 1, weight.shape[2]),
            None if bias is None else bias.data,
            (1, stride), (0, padding), x.requires_grad,
        )
        out_shape4 = out4.shape
        out = np.squeeze(out4, axis=2)
        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(grad: np.ndarray):
            grads4 = backward4(grad.reshape(out_shape4))
            grad_input = grads4[0]
            if grad_input is not None:
                grad_input = np.squeeze(grad_input, axis=2)
            grad_weight = np.squeeze(grads4[1], axis=2)
            return (grad_input, grad_weight) + tuple(grads4[2:])

        return Tensor._make(out, parents, backward, name="conv1d")
    x4 = x.expand_dims(2)  # (batch, channels, 1, length)
    w4 = weight.expand_dims(2)  # (out, in, 1, k)
    out = conv2d(x4, w4, bias, stride=(1, stride), padding=(0, padding))
    return out.squeeze(axis=2)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------
def max_pool2d(x: Tensor, kernel: Tuple[int, int], stride: Optional[Tuple[int, int]] = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) spatial windows."""
    stride = stride or kernel
    kh, kw = kernel
    sh, sw = stride
    batch, channels, height, width = x.shape
    out_h = (height - kh) // sh + 1
    out_w = (width - kw) // sw + 1
    s0, s1, s2, s3 = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(batch, channels, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * sh, s3 * sw, s2, s3),
        writeable=False,
    )
    out = windows.max(axis=(4, 5))
    if not (is_grad_enabled() and x.requires_grad):
        # Inference path: the argmax bookkeeping below exists only for backward.
        return Tensor(out, name="max_pool2d")
    # indices of maxima for backward
    flat = windows.reshape(batch, channels, out_h, out_w, kh * kw)
    argmax = flat.argmax(axis=-1)
    input_shape = x.shape

    def backward(grad: np.ndarray):
        grad_input = np.zeros(input_shape, dtype=grad.dtype)
        ih = argmax // kw
        iw = argmax % kw
        b_idx, c_idx, oh_idx, ow_idx = np.indices(argmax.shape)
        rows = oh_idx * sh + ih
        cols = ow_idx * sw + iw
        np.add.at(grad_input, (b_idx, c_idx, rows, cols), grad)
        return (grad_input,)

    return Tensor._make(out, (x,), backward, name="max_pool2d")


def max_pool1d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over ``(batch, channels, length)`` inputs."""
    stride = stride or kernel
    out = max_pool2d(x.expand_dims(2), (1, kernel), (1, stride))
    return out.squeeze(axis=2)


def global_average_pool(x: Tensor) -> Tensor:
    """Average all spatial positions, keeping batch and channel axes.

    Works for both ``(batch, channels, length)`` and
    ``(batch, channels, height, width)`` inputs and returns
    ``(batch, channels)``.
    """
    axes = tuple(range(2, x.ndim))
    return x.mean(axis=axes)


# ---------------------------------------------------------------------------
# Classification heads
# ---------------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - p)``."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``."""
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out
