"""Weight-initialisation schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def glorot_uniform(shape: Tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot / Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He / Kaiming uniform initialisation (suited to ReLU activations)."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He / Kaiming normal initialisation."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def orthogonal(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialisation used for recurrent weight matrices."""
    rows, cols = shape
    matrix = rng.standard_normal((rows, cols))
    if rows < cols:
        q, _ = np.linalg.qr(matrix.T)
        return np.ascontiguousarray(q.T[:rows, :cols])
    q, _ = np.linalg.qr(matrix)
    return np.ascontiguousarray(q[:rows, :cols])
