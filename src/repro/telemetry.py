"""Lightweight counters, timers and gauges shared by the runtime and serving.

One :class:`Telemetry` registry holds named monotonic :class:`Counter`\\ s,
cumulative :class:`Timer`\\ s and last-value :class:`Gauge`\\ s.  The
primitives are deliberately tiny — a lock, an integer / a float — so they can
sit on hot paths (the serving batcher, the ``repro.run`` unit loop) without
measurable overhead, and deliberately *shared*: the serve ``/metrics``
endpoint and the runtime progress hooks both render the same
:meth:`Telemetry.snapshot` mapping.

>>> telemetry = Telemetry()
>>> telemetry.counter("requests").increment()
>>> with telemetry.timer("explain_seconds"):
...     pass
>>> sorted(telemetry.snapshot())
['explain_seconds', 'requests']
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Union


class Counter:
    """A named, thread-safe, monotonically increasing integer."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> int:
        """Add ``amount`` (default 1) and return the new value."""
        with self._lock:
            self._value += int(amount)
            return self._value

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A named, thread-safe last-value metric (queue depth, policy state).

    Unlike :class:`Counter` a gauge moves in both directions: ``set`` replaces
    the value, ``adjust`` moves it relative to the current one (and returns
    the new value).  Snapshot renders the instantaneous value.
    """

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def adjust(self, delta: float) -> float:
        with self._lock:
            self._value += float(delta)
            return self._value

    @property
    def value(self) -> float:
        return self._value


class Timer:
    """A named, thread-safe cumulative wall-clock timer.

    Use as a context manager (:func:`time.perf_counter` based); ``seconds``
    accumulates across entries and ``count`` records how many measurements
    contributed.  The in-flight start mark is thread-local, so concurrent
    ``with`` blocks on one timer measure independently.
    """

    __slots__ = ("name", "seconds", "count", "_lock", "_local")

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0
        self.count = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    def add(self, seconds: float) -> None:
        with self._lock:
            self.seconds += float(seconds)
            self.count += 1

    def __enter__(self) -> "Timer":
        self._local.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.add(time.perf_counter() - self._local.start)


class Telemetry:
    """A registry of named counters and timers with one ``snapshot()`` view.

    Counters and timers are created lazily on first access and live for the
    registry's lifetime.  ``snapshot()`` returns plain scalars (counters as
    ints, timers as ``<name>_seconds`` / ``<name>_count`` pairs), which is what
    both the serve ``/metrics`` endpoint and the CLI progress output render.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def timer(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is None:
            with self._lock:
                timer = self._timers.setdefault(name, Timer(name))
        return timer

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def increment(self, name: str, amount: int = 1) -> int:
        """Shorthand for ``telemetry.counter(name).increment(amount)``."""
        return self.counter(name).increment(amount)

    def snapshot(self) -> Dict[str, Union[int, float]]:
        """All metrics as one flat ``{name: scalar}`` mapping."""
        values: Dict[str, Union[int, float]] = {}
        with self._lock:
            counters = list(self._counters.values())
            timers = list(self._timers.values())
            gauges = list(self._gauges.values())
        for counter in counters:
            values[counter.name] = counter.value
        for timer in timers:
            values[f"{timer.name}_seconds"] = timer.seconds
            values[f"{timer.name}_count"] = timer.count
        for gauge in gauges:
            values[gauge.name] = gauge.value
        return values


#: Hook signature of :func:`repro.runtime.run`'s per-unit progress callback:
#: ``on_unit(index, total, unit, source)`` where ``source`` is ``"cache"`` or
#: ``"executed"``.
ProgressHook = Callable[[int, int, object, str], None]


def null_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """``telemetry`` or a fresh throwaway registry (keeps call sites branch-free)."""
    return telemetry if telemetry is not None else Telemetry()
