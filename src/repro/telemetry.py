"""Compatibility shim: the metric primitives now live in :mod:`repro.obs`.

The original flat module grew into the :mod:`repro.obs` package (metrics,
histograms, tracing, Prometheus exposition).  Every pre-existing import —
``from repro.telemetry import Telemetry`` and friends — keeps working
through this re-export; new code should import from :mod:`repro.obs`
directly.

>>> telemetry = Telemetry()
>>> telemetry.counter("requests").increment()
1
>>> with telemetry.timer("explain"):
...     pass
>>> sorted(telemetry.snapshot())
['explain_count', 'explain_seconds', 'requests']
"""

from .obs.metrics import (  # noqa: F401 - re-exported compatibility surface
    Counter,
    Gauge,
    Histogram,
    ProgressHook,
    Telemetry,
    Timer,
    null_telemetry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "ProgressHook",
    "Telemetry",
    "Timer",
    "null_telemetry",
]
