"""Observability configuration shared by the serving layer and CLI verbs."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ObsConfig:
    """Tracing/exposition knobs; metrics and histograms are always on.

    Counters, timers and latency histograms are recorded unconditionally
    (their cost is a lock and an integer — gated by
    ``benchmarks/bench_obs_overhead.py``); this config only controls the
    *sampled tracing* tier and span retention.
    """

    #: Fraction of root requests that record a trace, in ``[0, 1]``.
    #: ``0.0`` (the default) disables tracing entirely: no ids are
    #: allocated and the per-hop check is one context-variable read.
    trace_sample_rate: float = 0.0
    #: Bounded capacity of the in-process finished-span ring; the oldest
    #: span is dropped when a new one lands in a full ring.
    trace_ring_size: int = 2048
    #: Process label stamped on every span this process records (for
    #: example ``serve``, ``byte-store``, ``worker:<id>``), so merged
    #: multi-process trace dumps stay unambiguous.
    process_label: str = "serve"

    def __post_init__(self) -> None:
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError(f"trace_sample_rate must be in [0, 1], got {self.trace_sample_rate!r}")
        if self.trace_ring_size < 1:
            raise ValueError(f"trace_ring_size must be >= 1, got {self.trace_ring_size!r}")
