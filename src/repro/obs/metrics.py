"""Thread-safe metric primitives: counters, gauges, timers, histograms.

One :class:`Telemetry` registry holds named monotonic :class:`Counter`\\ s,
cumulative :class:`Timer`\\ s, last-value :class:`Gauge`\\ s and
fixed-log-bucket :class:`Histogram`\\ s.  The primitives are deliberately
tiny — a lock, an integer / a float / a bucket array — so they can sit on hot
paths (the serving batcher, the ``repro.run`` unit loop) without measurable
overhead, and deliberately *shared*: the serve ``/metrics`` endpoint and the
runtime progress hooks both render the same :meth:`Telemetry.snapshot`
mapping.

Two behaviours added on top of the original flat registry:

* every :meth:`Telemetry.timer` is backed by a same-named
  :class:`Histogram`, so each existing ``with telemetry.timer(...)`` site
  gains p50/p90/p99 latency estimates without touching the call site;
* registration is collision-checked.  ``snapshot()`` flattens a timer named
  ``x`` into the keys ``x_seconds``/``x_count``, which used to silently
  shadow a counter or gauge holding that literal name (and a counter could
  shadow a gauge).  Cross-kind reuse of a snapshot key now raises
  :class:`ValueError` at registration time instead of corrupting the export.

>>> telemetry = Telemetry()
>>> telemetry.counter("requests").increment()
1
>>> with telemetry.timer("explain"):
...     pass
>>> sorted(telemetry.snapshot())
['explain_count', 'explain_seconds', 'requests']
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "ProgressHook",
    "Telemetry",
    "Timer",
    "null_telemetry",
]


class Counter:
    """A named, thread-safe, monotonically increasing integer."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> int:
        """Add ``amount`` (default 1) and return the new value."""
        with self._lock:
            self._value += int(amount)
            return self._value

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A named, thread-safe last-value metric (queue depth, policy state).

    Unlike :class:`Counter` a gauge moves in both directions: ``set`` replaces
    the value, ``adjust`` moves it relative to the current one (and returns
    the new value).  Snapshot renders the instantaneous value.
    """

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def adjust(self, delta: float) -> float:
        with self._lock:
            self._value += float(delta)
            return self._value

    @property
    def value(self) -> float:
        return self._value


# Histogram bucket geometry, fixed for every histogram in the process (and
# across processes: fleet workers ship sparse bucket dicts in heartbeats and
# the coordinator merges them index-for-index, which is only sound because
# the bounds are a program constant, not per-instance state).
#
# Buckets are log-spaced at factor 2**0.25 (~1.19x) from 1 microsecond:
# bucket 0 holds values <= 1e-6 s, bucket i holds (1e-6 * G**(i-1),
# 1e-6 * G**i], and the last bucket catches everything above ~928 s.  120
# buckets cover nine decades of latency at a bounded footprint (one int
# each), and quantile estimates read the geometric midpoint of the target
# bucket, so the relative error is at most sqrt(G) - 1 ~ 9% — an explicit,
# documented error budget in exchange for O(1) memory and lock-free reads
# of a consistent snapshot under the instance lock.
_BUCKET_MIN = 1e-6
_BUCKET_GROWTH = 2.0**0.25
_BUCKET_COUNT = 120
_LOG_GROWTH = math.log(_BUCKET_GROWTH)
#: Inclusive upper bound of every bucket except the last (which is +inf).
BUCKET_UPPER_BOUNDS: Tuple[float, ...] = tuple(
    _BUCKET_MIN * _BUCKET_GROWTH**i for i in range(_BUCKET_COUNT - 1)
) + (math.inf,)


def bucket_index(value: float) -> int:
    """The fixed-geometry bucket index holding ``value`` (seconds)."""
    if value <= _BUCKET_MIN:
        return 0
    index = int(math.log(value / _BUCKET_MIN) / _LOG_GROWTH) + 1
    return index if index < _BUCKET_COUNT else _BUCKET_COUNT - 1


class Histogram:
    """A named, thread-safe latency histogram over fixed log-spaced buckets.

    ``observe`` is O(1); ``quantile`` walks the bucket array and returns the
    geometric midpoint of the bucket containing the requested rank (clamped
    to the observed min/max), so estimates carry at most ~9% relative error —
    see the bucket-geometry comment above.  Histograms from other processes
    with the same geometry merge exactly (bucket-wise addition) via
    :meth:`merge_dict`, which is how fleet worker latencies aggregate on the
    coordinator.
    """

    __slots__ = ("name", "_buckets", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._buckets = [0] * _BUCKET_COUNT
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one measurement (seconds)."""
        value = float(value)
        index = bucket_index(value)
        with self._lock:
            self._buckets[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1); 0.0 when empty."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q!r}")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            cumulative = 0
            index = _BUCKET_COUNT - 1
            for i, bucket in enumerate(self._buckets):
                cumulative += bucket
                if cumulative >= target:
                    index = i
                    break
            estimate = _bucket_midpoint(index)
            return min(max(estimate, self._min), self._max)

    def percentiles(self) -> Dict[str, float]:
        """The conventional ``{"p50": ..., "p90": ..., "p99": ...}`` trio."""
        return {"p50": self.quantile(0.50), "p90": self.quantile(0.90), "p99": self.quantile(0.99)}

    def summary(self) -> Dict[str, float]:
        """Count, sum and percentiles as one plain-scalar mapping."""
        with self._lock:
            count, total = self._count, self._sum
        summary: Dict[str, float] = {"count": count, "sum": total}
        summary.update(self.percentiles())
        return summary

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs for text exposition.

        Only buckets where the cumulative count changes are returned (plus
        the final ``+inf`` bucket), keeping the Prometheus rendering sparse.
        """
        with self._lock:
            buckets = list(self._buckets)
            count = self._count
        pairs: List[Tuple[float, int]] = []
        cumulative = 0
        for index, bucket in enumerate(buckets):
            cumulative += bucket
            if bucket:
                pairs.append((BUCKET_UPPER_BOUNDS[index], cumulative))
        if not pairs or pairs[-1][0] != math.inf:
            pairs.append((math.inf, count))
        return pairs

    def to_dict(self) -> Dict[str, object]:
        """Sparse JSON-safe transport form (heartbeat payloads, /trace dumps)."""
        with self._lock:
            sparse = {str(i): c for i, c in enumerate(self._buckets) if c}
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "buckets": sparse,
            }

    def merge_dict(self, payload: Dict[str, object]) -> None:
        """Fold a :meth:`to_dict` payload (same fixed geometry) into this one."""
        buckets = payload.get("buckets") or {}
        low = payload.get("min")
        high = payload.get("max")
        with self._lock:
            for raw_index, raw_count in buckets.items():
                index = int(raw_index)
                if 0 <= index < _BUCKET_COUNT:
                    self._buckets[index] += int(raw_count)
            self._count += int(payload.get("count", 0))
            self._sum += float(payload.get("sum", 0.0))
            if low is not None and float(low) < self._min:
                self._min = float(low)
            if high is not None and float(high) > self._max:
                self._max = float(high)

    def merge(self, other: "Histogram") -> None:
        """Fold another in-process histogram into this one."""
        self.merge_dict(other.to_dict())


def _bucket_midpoint(index: int) -> float:
    """Representative value for a bucket: its geometric midpoint."""
    if index == 0:
        return _BUCKET_MIN
    if index == _BUCKET_COUNT - 1:
        # The overflow bucket has no upper bound; report its lower edge.
        return _BUCKET_MIN * _BUCKET_GROWTH ** (index - 1)
    return _BUCKET_MIN * _BUCKET_GROWTH ** (index - 0.5)


class Timer:
    """A named, thread-safe cumulative wall-clock timer.

    Use as a context manager (:func:`time.perf_counter` based); ``seconds``
    accumulates across entries and ``count`` records how many measurements
    contributed.  The in-flight start mark is thread-local, so concurrent
    ``with`` blocks on one timer measure independently.  When constructed by
    a :class:`Telemetry` registry the timer also feeds a same-named
    :class:`Histogram`, so cumulative totals and percentiles stay in sync.
    """

    __slots__ = ("name", "seconds", "count", "histogram", "_lock", "_local")

    def __init__(self, name: str, histogram: Optional[Histogram] = None) -> None:
        self.name = name
        self.seconds = 0.0
        self.count = 0
        self.histogram = histogram
        self._lock = threading.Lock()
        self._local = threading.local()

    def add(self, seconds: float) -> None:
        seconds = float(seconds)
        with self._lock:
            self.seconds += seconds
            self.count += 1
        if self.histogram is not None:
            self.histogram.observe(seconds)

    def __enter__(self) -> "Timer":
        self._local.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.add(time.perf_counter() - self._local.start)


class Telemetry:
    """A registry of named metrics with one flat ``snapshot()`` view.

    Metrics are created lazily on first access and live for the registry's
    lifetime.  ``snapshot()`` returns plain scalars (counters as ints, timers
    as ``<name>_seconds`` / ``<name>_count`` pairs, gauges as floats), which
    is what both the serve ``/metrics`` endpoint and the CLI progress output
    render; :meth:`histogram_summaries` adds the percentile view alongside.

    The snapshot keys a metric will emit are *claimed* at registration:
    re-requesting the same name with the same kind returns the existing
    instance, but a cross-kind claim (a counter named ``engine_seconds`` next
    to a timer named ``engine``, a gauge reusing a counter name, ...) raises
    :class:`ValueError` instead of silently shadowing one metric with the
    other in the flat export.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._claims: Dict[str, str] = {}
        self._lock = threading.Lock()

    def _claim_keys(self, keys: Iterable[str], kind: str, name: str) -> None:
        """Reserve snapshot ``keys`` for one metric; caller holds ``_lock``."""
        claim = f"{kind} {name!r}"
        for key in keys:
            owner = self._claims.get(key)
            if owner is not None and owner != claim:
                raise ValueError(
                    f"telemetry snapshot key {key!r} is already emitted by {owner}; "
                    f"registering {claim} would silently shadow it"
                )
        for key in keys:
            self._claims[key] = claim

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.get(name)
                if counter is None:
                    self._claim_keys((name,), "counter", name)
                    counter = self._counters[name] = Counter(name)
        return counter

    def timer(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is None:
            with self._lock:
                timer = self._timers.get(name)
                if timer is None:
                    self._claim_keys((f"{name}_seconds", f"{name}_count"), "timer", name)
                    histogram = self._histograms.get(name)
                    if histogram is None:
                        histogram = self._histograms[name] = Histogram(name)
                    timer = self._timers[name] = Timer(name, histogram=histogram)
        return timer

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.get(name)
                if gauge is None:
                    self._claim_keys((name,), "gauge", name)
                    gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        """A standalone histogram (timers attach one of the same name)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram(name))
        return histogram

    def increment(self, name: str, amount: int = 1) -> int:
        """Shorthand for ``telemetry.counter(name).increment(amount)``."""
        return self.counter(name).increment(amount)

    def observe(self, name: str, seconds: float) -> None:
        """Shorthand for ``telemetry.timer(name).add(seconds)``."""
        self.timer(name).add(seconds)

    def snapshot(self) -> Dict[str, Union[int, float]]:
        """All metrics as one flat ``{name: scalar}`` mapping."""
        values: Dict[str, Union[int, float]] = {}
        with self._lock:
            counters = list(self._counters.values())
            timers = list(self._timers.values())
            gauges = list(self._gauges.values())
        for counter in counters:
            values[counter.name] = counter.value
        for timer in timers:
            values[f"{timer.name}_seconds"] = timer.seconds
            values[f"{timer.name}_count"] = timer.count
        for gauge in gauges:
            values[gauge.name] = gauge.value
        return values

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        """``{name: {count, sum, p50, p90, p99}}`` for every histogram."""
        with self._lock:
            histograms = list(self._histograms.values())
        return {histogram.name: histogram.summary() for histogram in histograms}

    def histogram_dump(self) -> Dict[str, Dict[str, object]]:
        """Sparse transport form of every histogram (heartbeat payloads)."""
        with self._lock:
            histograms = list(self._histograms.values())
        return {histogram.name: histogram.to_dict() for histogram in histograms}

    def histograms(self) -> Dict[str, Histogram]:
        """A point-in-time copy of the name → histogram mapping."""
        with self._lock:
            return dict(self._histograms)


#: Hook signature of :func:`repro.runtime.run`'s per-unit progress callback:
#: ``on_unit(index, total, unit, source)`` where ``source`` is ``"cache"`` or
#: ``"executed"``.
ProgressHook = Callable[[int, int, object, str], None]


def null_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """``telemetry`` or a fresh throwaway registry (keeps call sites branch-free)."""
    return telemetry if telemetry is not None else Telemetry()
