"""Prometheus text exposition, span JSON dumps, and the sidecar HTTP server.

The serve ``/metrics`` endpoint keeps its JSON snapshot as the default
response; a client sending ``Accept: text/plain`` gets the same registry in
Prometheus text exposition format instead (content negotiation, no new
endpoint).  :class:`MetricsHTTPServer` gives non-serve processes — the
byte-store server and fleet workers — the same two endpoints
(``/metrics`` + ``/trace``) on a sidecar port.

Rendering conventions (kept deliberately mechanical so the golden test can
parse and re-serialize the output):

* every family is prefixed ``repro_``; metric names are sanitized to
  ``[a-zA-Z0-9_:]``;
* the registry's bracket convention ``name[model/kind]`` becomes labels
  ``{kind="...",model="..."}``; a single bracket part becomes
  ``{label="..."}``;
* counters render as ``_total``, gauges render bare, and every timer
  renders through its attached histogram as a ``_seconds`` histogram family
  (``_bucket{le=...}`` cumulative lines for non-empty buckets plus
  ``+Inf``, then ``_sum``/``_count``) — totals and percentiles come from
  one data structure, so they cannot disagree.
"""

from __future__ import annotations

import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterable, List, Optional, Tuple

from .metrics import Telemetry
from .tracing import Span, SpanRing, Tracer

__all__ = [
    "MetricsHTTPServer",
    "parse_prometheus",
    "prometheus_requested",
    "render_prometheus",
    "spans_to_json",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_BRACKET = re.compile(r"^(?P<base>[^\[\]]+)\[(?P<label>[^\[\]]*)\]$")
_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _split_labels(name: str) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    """``"queue_depth[m/k]"`` → ``("queue_depth", (("kind","k"),("model","m")))``."""
    match = _BRACKET.match(name)
    if match is None:
        return name, ()
    parts = match.group("label").split("/")
    if len(parts) == 2:
        return match.group("base"), (("kind", parts[1]), ("model", parts[0]))
    return match.group("base"), (("label", match.group("label")),)


def _sanitize(name: str) -> str:
    return _INVALID_NAME_CHARS.sub("_", name)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels: Iterable[Tuple[str, str]]) -> str:
    items = sorted(labels)
    if not items:
        return ""
    rendered = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in items)
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    return format(bound, ".6g")


def render_prometheus(telemetry: Telemetry, namespace: str = "repro") -> str:
    """The whole registry in Prometheus text exposition format.

    Output is deterministic: families sort by name, series by label set.
    """
    lines: List[str] = []

    counters: Dict[str, List[Tuple[str, float]]] = {}
    gauges: Dict[str, List[Tuple[str, float]]] = {}
    with telemetry._lock:
        counter_items = [(c.name, c.value) for c in telemetry._counters.values()]
        gauge_items = [(g.name, g.value) for g in telemetry._gauges.values()]
        histograms = list(telemetry._histograms.values())

    for name, value in counter_items:
        base, labels = _split_labels(name)
        family = f"{namespace}_{_sanitize(base)}_total"
        counters.setdefault(family, []).append((_label_text(labels), float(value)))
    for name, value in gauge_items:
        base, labels = _split_labels(name)
        family = f"{namespace}_{_sanitize(base)}"
        gauges.setdefault(family, []).append((_label_text(labels), float(value)))

    for family in sorted(counters):
        lines.append(f"# TYPE {family} counter")
        for label_text, value in sorted(counters[family]):
            lines.append(f"{family}{label_text} {_format_value(value)}")
    for family in sorted(gauges):
        lines.append(f"# TYPE {family} gauge")
        for label_text, value in sorted(gauges[family]):
            lines.append(f"{family}{label_text} {_format_value(value)}")

    rendered: Dict[str, List[Tuple[str, "object"]]] = {}
    for histogram in histograms:
        base, labels = _split_labels(histogram.name)
        family = f"{namespace}_{_sanitize(base)}_seconds"
        rendered.setdefault(family, []).append((_label_text(labels), histogram))
    for family in sorted(rendered):
        lines.append(f"# TYPE {family} histogram")
        for label_text, histogram in sorted(rendered[family], key=lambda item: item[0]):
            base_labels = label_text[1:-1] if label_text else ""
            for bound, cumulative in histogram.cumulative_buckets():
                le = f'le="{_format_bound(bound)}"'
                merged = f"{{{base_labels},{le}}}" if base_labels else f"{{{le}}}"
                lines.append(f"{family}_bucket{merged} {cumulative}")
            lines.append(f"{family}_sum{label_text} {_format_value(histogram.sum)}")
            lines.append(f"{family}_count{label_text} {histogram.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition text back to ``{(name, labels): value}`` (test helper)."""
    series: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        metric, _, raw_value = line.rpartition(" ")
        if "{" in metric:
            name, _, label_blob = metric.partition("{")
            label_blob = label_blob.rstrip("}")
            labels = []
            for item in filter(None, _split_label_items(label_blob)):
                key, _, value = item.partition("=")
                labels.append((key, value.strip('"').replace('\\"', '"').replace("\\\\", "\\")))
            key = (name, tuple(sorted(labels)))
        else:
            key = (metric, ())
        series[key] = math.inf if raw_value == "+Inf" else float(raw_value)
    return series


def _split_label_items(blob: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    items, depth, start = [], False, 0
    for index, char in enumerate(blob):
        if char == '"' and (index == 0 or blob[index - 1] != "\\"):
            depth = not depth
        elif char == "," and not depth:
            items.append(blob[start:index])
            start = index + 1
    items.append(blob[start:])
    return items


def prometheus_requested(accept_header: Optional[str]) -> bool:
    """Content negotiation: Prometheus text iff the client asks for it.

    JSON stays the default — existing scrapers and tests send no ``Accept``
    (or ``*/*``) and keep getting the JSON snapshot; only an explicit
    ``text/plain`` preference switches to exposition format.
    """
    if not accept_header:
        return False
    return "text/plain" in accept_header


def spans_to_json(spans: Iterable[Span]) -> List[Dict[str, object]]:
    """Spans as JSON-safe dicts, oldest first (the ``/trace`` payload)."""
    return [span.to_dict() for span in spans]


class _MetricsRequestHandler(BaseHTTPRequestHandler):
    """GET-only handler: ``/metrics`` (negotiated), ``/trace``, ``/healthz``."""

    protocol_version = "HTTP/1.1"
    server: "MetricsHTTPServer"

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        pass

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        if self.path == "/metrics":
            if prometheus_requested(self.headers.get("Accept")):
                body = render_prometheus(self.server.telemetry).encode("utf-8")
                self._send(200, body, PROMETHEUS_CONTENT_TYPE)
            else:
                payload = dict(self.server.telemetry.snapshot())
                payload["histograms"] = self.server.telemetry.histogram_summaries()
                self._send(200, json.dumps(payload).encode("utf-8"), "application/json")
        elif self.path == "/trace":
            ring = self.server.span_ring
            spans = spans_to_json(ring.spans()) if ring is not None else []
            body = json.dumps({"spans": spans}).encode("utf-8")
            self._send(200, body, "application/json")
        elif self.path == "/healthz":
            self._send(200, b'{"status": "ok"}', "application/json")
        else:
            self._send(404, b'{"error": "not found"}', "application/json")


class MetricsHTTPServer(ThreadingHTTPServer):
    """A sidecar ``/metrics`` + ``/trace`` HTTP server for non-serve processes.

    The byte-store server (``--metrics-port``) and fleet workers
    (``--metrics-port``) expose their registry and span ring through one of
    these; the serve layer's main HTTP server has the endpoints built in.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        telemetry: Telemetry,
        tracer: Optional[Tracer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__((host, port), _MetricsRequestHandler)
        self.telemetry = telemetry
        self.span_ring: Optional[SpanRing] = tracer.ring if tracer is not None else None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"{host}:{port}"

    def start(self) -> "MetricsHTTPServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(target=self.serve_forever, name="obs-metrics-http", daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
