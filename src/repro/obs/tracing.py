"""Sampled request tracing: trace contexts, spans, and the bounded span ring.

A **trace** follows one request across the stack: ``trace_id`` names the
request, every timed hop records a :class:`Span` carrying its own
``span_id`` and its parent's.  Tracing is *sampled at the root*: the HTTP
handler (or a test/bench harness) asks its :class:`Tracer` whether this
request should be traced; untraced requests never allocate anything and the
per-hop cost is one :data:`contextvars.ContextVar` read that returns
``None``.

Propagation:

* **within a thread** — the active :class:`TraceContext` lives in a context
  variable; :func:`span` opens a child span around a block.
* **across threads** — the micro-batcher captures :func:`current` per
  queued request at submit time and re-activates the context on its flush
  worker thread (see ``repro.serve.batcher``).
* **across processes** — :func:`trace_wire_header` renders the context as a
  small JSON-safe dict carried under the ``"trace"`` key of the wire
  protocol's frame header.  Unknown header keys are opaque to old peers, so
  tracing rides the existing protocol unchanged; receivers rebuild a
  context with :meth:`Tracer.adopt` and their spans are parented to the
  sender's span.

Finished spans land in the recording tracer's bounded :class:`SpanRing`
(oldest dropped first), exported via the serve ``/trace`` endpoint, the
wire ``trace-dump`` op and ``python -m repro trace-dump``.  Fleet workers
drain their ring into heartbeat headers; the coordinator aggregates them —
out of band of results, which stay byte-identical with tracing on or off.
"""

from __future__ import annotations

import contextlib
import os
import random
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "SpanRing",
    "TraceContext",
    "Tracer",
    "activate",
    "current",
    "maybe_trace",
    "span",
    "trace_wire_header",
]


def _new_id(nbytes: int = 8) -> str:
    """A random lowercase-hex identifier (16 chars for spans, 32 for traces)."""
    return os.urandom(nbytes).hex()


@dataclass
class Span:
    """One finished, named hop of a trace.

    ``start_s`` is wall-clock (:func:`time.time`) for cross-process
    alignment; ``duration_s`` is measured with :func:`time.perf_counter`.
    ``process`` labels the recording process (``serve``, ``byte-store``,
    ``worker:<id>``, ...) so a multi-process dump reads unambiguously.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_s: float
    duration_s: float
    process: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "process": self.process,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            name=str(payload.get("name", "")),
            start_s=float(payload.get("start_s", 0.0)),
            duration_s=float(payload.get("duration_s", 0.0)),
            process=str(payload.get("process", "")),
            attrs=dict(payload.get("attrs") or {}),
        )


class SpanRing:
    """A bounded thread-safe ring of finished spans (oldest dropped first)."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError(f"span ring capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._spans: deque = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._recorded = 0

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            self._recorded += 1

    def spans(self) -> List[Span]:
        """A point-in-time copy, oldest first."""
        with self._lock:
            return list(self._spans)

    def drain(self, limit: Optional[int] = None) -> List[Span]:
        """Remove and return up to ``limit`` oldest spans (all when ``None``)."""
        with self._lock:
            take = len(self._spans) if limit is None else min(int(limit), len(self._spans))
            return [self._spans.popleft() for _ in range(take)]

    @property
    def recorded(self) -> int:
        """Total spans ever recorded (survives ring eviction)."""
        return self._recorded

    def __len__(self) -> int:
        return len(self._spans)


@dataclass(frozen=True)
class TraceContext:
    """The active position inside a trace: which tracer records, under whom."""

    tracer: "Tracer"
    trace_id: str
    span_id: str

    def wire(self) -> Dict[str, str]:
        """The JSON-safe dict carried in wire-protocol frame headers."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}


class Tracer:
    """Samples root traces and records spans into a bounded ring.

    One tracer per process-role: the serve service, the byte-store server,
    each fleet worker.  ``sample_rate`` only gates *root* sampling
    (:meth:`sampled`); adopted contexts (from a wire header) are always
    recorded — the sampling decision was made once, at the edge.
    """

    def __init__(self, sample_rate: float = 0.0, ring_size: int = 2048, process: str = "") -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate!r}")
        self.sample_rate = float(sample_rate)
        self.process = process
        self.ring = SpanRing(ring_size)
        self._random = random.Random()

    def sampled(self) -> bool:
        """Decide root sampling for one new request."""
        return self.sample_rate > 0.0 and self._random.random() < self.sample_rate

    def start(self, trace_id: Optional[str] = None, span_id: Optional[str] = None) -> TraceContext:
        """A fresh root context (new trace unless ids are supplied)."""
        return TraceContext(self, trace_id or _new_id(16), span_id or _new_id())

    def adopt(self, wire: Optional[Dict[str, Any]]) -> Optional[TraceContext]:
        """Rebuild a context from a frame-header ``"trace"`` dict, if sane."""
        if not isinstance(wire, dict):
            return None
        trace_id, span_id = wire.get("trace_id"), wire.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return TraceContext(self, trace_id, span_id)

    def record(
        self,
        ctx: TraceContext,
        name: str,
        start_s: float,
        duration_s: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Record one finished child span of ``ctx`` into this tracer's ring."""
        recorded = Span(
            trace_id=ctx.trace_id,
            span_id=_new_id(),
            parent_id=ctx.span_id,
            name=name,
            start_s=start_s,
            duration_s=duration_s,
            process=self.process,
            attrs=attrs or {},
        )
        self.ring.record(recorded)
        return recorded


_ACTIVE: ContextVar[Optional[TraceContext]] = ContextVar("repro_trace_context", default=None)


def current() -> Optional[TraceContext]:
    """The active trace context of this thread/task, or ``None``."""
    return _ACTIVE.get()


def trace_wire_header() -> Optional[Dict[str, str]]:
    """The active context as a frame-header dict, or ``None`` when untraced."""
    ctx = _ACTIVE.get()
    return ctx.wire() if ctx is not None else None


@contextlib.contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Make ``ctx`` the active context for the block (no span recorded).

    Used to restore a captured context on another thread (batcher flush
    workers) or an adopted one in another process (fleet workers).
    ``activate(None)`` is a no-op passthrough, keeping call sites
    branch-free.
    """
    if ctx is None:
        yield None
        return
    token = _ACTIVE.set(ctx)
    try:
        yield ctx
    finally:
        _ACTIVE.reset(token)


@contextlib.contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """Record a child span around the block — free when no trace is active.

    The untraced path is one context-variable read; nothing is allocated.
    Inside the block the child context is active, so nested spans and wire
    headers parent correctly.  The yielded (in-flight) :class:`Span` is
    mutable: callers may add ``attrs`` discovered inside the block (a cache
    lookup learns its serving tier only after the fact).
    """
    ctx = _ACTIVE.get()
    if ctx is None:
        yield None
        return
    recorded = Span(
        trace_id=ctx.trace_id,
        span_id=_new_id(),
        parent_id=ctx.span_id,
        name=name,
        start_s=time.time(),
        duration_s=0.0,
        process=ctx.tracer.process,
        attrs=attrs,
    )
    token = _ACTIVE.set(TraceContext(ctx.tracer, ctx.trace_id, recorded.span_id))
    perf_start = time.perf_counter()
    try:
        yield recorded
    finally:
        recorded.duration_s = time.perf_counter() - perf_start
        _ACTIVE.reset(token)
        ctx.tracer.ring.record(recorded)


@contextlib.contextmanager
def maybe_trace(tracer: Optional["Tracer"], name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """Start a sampled root span — the per-request entry point.

    ``tracer=None`` or an unsampled draw yields ``None`` without touching
    the context variable, so the disabled path costs one attribute read and
    one float compare.
    """
    if tracer is None or not tracer.sampled():
        yield None
        return
    child = tracer.start()
    recorded = Span(
        trace_id=child.trace_id,
        span_id=child.span_id,
        parent_id=None,
        name=name,
        start_s=time.time(),
        duration_s=0.0,
        process=tracer.process,
        attrs=attrs,
    )
    token = _ACTIVE.set(child)
    perf_start = time.perf_counter()
    try:
        yield recorded
    finally:
        recorded.duration_s = time.perf_counter() - perf_start
        _ACTIVE.reset(token)
        tracer.ring.record(recorded)
