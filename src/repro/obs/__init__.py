"""Observability: metrics, latency histograms, request tracing, exposition.

The package grows the original flat ``repro.telemetry`` registry into a real
observability layer shared by every subsystem:

* :mod:`repro.obs.metrics` — the thread-safe primitives: monotonic
  :class:`Counter`\\ s, last-value :class:`Gauge`\\ s, cumulative
  :class:`Timer`\\ s, and fixed-log-bucket :class:`Histogram`\\ s with
  mergeable buckets and p50/p90/p99 estimators.  Every :class:`Telemetry`
  timer records its measurements into a histogram of the same name, so every
  latency point of the stack (HTTP handler, batcher queue-wait and flush,
  engine calls, cache tier hits, remote round-trips, fleet units, stream
  hops) has percentiles, not just cumulative totals.  Registration is
  collision-checked: a timer named ``x`` and a counter named ``x_seconds``
  can no longer silently shadow each other in ``snapshot()``.
* :mod:`repro.obs.tracing` — sampled ``trace_id``/``span_id`` request
  tracing propagated through :data:`contextvars`, across threads (the
  micro-batcher captures the submitting context per request) and across
  processes (the wire-protocol JSON frame header carries the context —
  unknown header keys are opaque, so old peers interoperate).  Finished
  spans land in a bounded in-process :class:`SpanRing`.
* :mod:`repro.obs.exposition` — Prometheus text rendering of a registry
  (negotiated on the serve ``/metrics`` endpoint; also served by the
  byte-store server and fleet workers through :class:`MetricsHTTPServer`)
  plus the ``/trace`` JSON span dump.
* :mod:`repro.obs.config` — :class:`ObsConfig`, the serving layer's
  observability knobs.

Everything here is **out of band**: response bytes, cache keys and fleet
results are byte-identical with tracing on or off (pinned by tests), and
``benchmarks/bench_obs_overhead.py`` gates the hot-path overhead.

``repro.telemetry`` remains as a compatibility shim re-exporting the metric
primitives, so existing imports keep working unchanged.
"""

from .config import ObsConfig
from .exposition import (
    MetricsHTTPServer,
    parse_prometheus,
    render_prometheus,
    spans_to_json,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    ProgressHook,
    Telemetry,
    Timer,
    null_telemetry,
)
from .tracing import (
    Span,
    SpanRing,
    TraceContext,
    Tracer,
    activate,
    current,
    maybe_trace,
    span,
    trace_wire_header,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsHTTPServer",
    "ObsConfig",
    "ProgressHook",
    "Span",
    "SpanRing",
    "Telemetry",
    "Timer",
    "TraceContext",
    "Tracer",
    "activate",
    "current",
    "maybe_trace",
    "null_telemetry",
    "parse_prometheus",
    "render_prometheus",
    "span",
    "spans_to_json",
    "trace_wire_header",
]
