"""Reproduction of *dCAM: Dimension-wise Class Activation Map for Explaining
Multivariate Data Series Classification* (Boniol et al., SIGMOD 2022).

The package is organised as follows:

* :mod:`repro.nn` — NumPy deep-learning substrate (autograd, conv/recurrent
  layers, losses, optimizers) replacing PyTorch.
* :mod:`repro.models` — the architectures of the paper: CNN / ResNet /
  InceptionTime, their c- and d-variants, MTEX-CNN and the recurrent baselines.
* :mod:`repro.core` — the paper's contribution: the ``C(T)`` input cube, CAM,
  grad-CAM and dCAM, plus dataset-level aggregation of explanations.
* :mod:`repro.data` — synthetic stand-ins for the UCR/UEA and JIGSAWS data and
  the Type 1 / Type 2 injected-pattern benchmarks.
* :mod:`repro.eval` — C-acc, Dr-acc (PR-AUC), ranking and the evaluation
  protocols.
* :mod:`repro.explain` — the unified explanation subsystem: CAM, grad-CAM and
  dCAM behind one registry-driven :class:`~repro.explain.Explainer` interface
  with batch engines.
* :mod:`repro.experiments` — drivers that regenerate every table and figure of
  the paper's evaluation section, written as thin spec-builders over the
  runtime.
* :mod:`repro.runtime` — the declarative job-graph executor: frozen
  :class:`~repro.runtime.WorkUnit` cells, serial / process-pool executors, a
  content-addressed result cache and the :func:`repro.run` facade.  The
  ``python -m repro`` CLI exposes the whole experiment suite on top of it.

Quickstart
----------
>>> from repro.data import SyntheticConfig, make_type1_dataset
>>> from repro.models import DCNNClassifier, TrainingConfig
>>> from repro.core import compute_dcam
>>> dataset = make_type1_dataset(SyntheticConfig(n_dimensions=6, random_state=0))
>>> model = DCNNClassifier(dataset.n_dimensions, dataset.length,
...                        dataset.n_classes, filters=(8, 16))
>>> _ = model.fit(dataset.X, dataset.y, config=TrainingConfig(epochs=5))
>>> result = compute_dcam(model, dataset.X[-1], class_id=1, k=10)
>>> result.dcam.shape == (dataset.n_dimensions, dataset.length)
True
"""

from . import core, data, eval, explain, models, nn, runtime
from .core import (
    DCAMResult,
    build_cube,
    class_activation_map,
    compute_dcam,
    compute_dcam_batch,
    grad_cam,
    mtex_explanation,
)
from .data import (
    MultivariateDataset,
    SyntheticConfig,
    make_jigsaws_dataset,
    make_type1_dataset,
    make_type2_dataset,
    make_uea_dataset,
)
from .eval import classification_accuracy, dr_acc, pr_auc
from .explain import (
    Explanation,
    ExplanationReport,
    evaluate_explainer,
    get_explainer,
    registered_families,
)
from .models import TrainingConfig, available_models, create_model
from .runtime import (
    ExperimentSpec,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    WorkUnit,
    run,
)

__version__ = "1.0.0"

__all__ = [
    "nn",
    "models",
    "core",
    "data",
    "eval",
    "explain",
    "runtime",
    "run",
    "ExperimentSpec",
    "WorkUnit",
    "ResultCache",
    "SerialExecutor",
    "ParallelExecutor",
    "__version__",
    "Explanation",
    "ExplanationReport",
    "get_explainer",
    "evaluate_explainer",
    "registered_families",
    "build_cube",
    "class_activation_map",
    "compute_dcam",
    "compute_dcam_batch",
    "DCAMResult",
    "grad_cam",
    "mtex_explanation",
    "MultivariateDataset",
    "SyntheticConfig",
    "make_type1_dataset",
    "make_type2_dataset",
    "make_uea_dataset",
    "make_jigsaws_dataset",
    "classification_accuracy",
    "dr_acc",
    "pr_auc",
    "TrainingConfig",
    "create_model",
    "available_models",
]
