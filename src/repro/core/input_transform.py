"""Input data organisation for the dimension-wise architectures (Section 4.2).

The dCNN / dResNet / dInceptionTime architectures do not consume the raw
multivariate series ``T ∈ R^(D, n)``; they consume the cube ``C(T) ∈
R^(D, D, n)`` in which every row contains *all* dimensions, each row using a
different rotation of the dimension order, so that a given dimension is never
at the same position in two different rows.

With the convolutional layers of :mod:`repro.models`, the cube is presented as
a 2D "image" of height ``D`` (the rows of ``C(T)``) and width ``n`` (time),
with ``D`` channels (the dimensions at each position of a row).

This module also provides the machinery for the random dimension permutations
used by dCAM (Section 4.4.1): generating permutations, applying them, and
mapping back from cube rows to (dimension, position) pairs — the ``idx``
function of Definition 1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def rotation_order(n_dimensions: int, shift: int) -> np.ndarray:
    """Dimension order of row ``shift`` of the cube: rotate left by ``shift``."""
    return (np.arange(n_dimensions) + shift) % n_dimensions


def build_cube(series: np.ndarray, order: Optional[Sequence[int]] = None) -> np.ndarray:
    """Build ``C(T)`` for one multivariate series.

    Parameters
    ----------
    series:
        Array of shape ``(D, n)``.
    order:
        Optional permutation of the dimensions applied *before* building the
        cube (``S_T`` in the paper).  ``order[k]`` is the original dimension
        placed at slot ``k``.

    Returns
    -------
    cube:
        Array of shape ``(D, D, n)``: ``cube[row, position]`` is the dimension
        at ``position`` in row ``row``, i.e. permuted dimension
        ``(row + position) mod D``.
    """
    series = np.asarray(series)
    if series.ndim != 2:
        raise ValueError(f"series must be (D, n), got shape {series.shape}")
    n_dimensions = series.shape[0]
    if order is not None:
        order = np.asarray(order)
        if sorted(order.tolist()) != list(range(n_dimensions)):
            raise ValueError("order must be a permutation of range(D)")
    return build_cube_batch(series[None], order)[0]


def build_cube_batch(batch: np.ndarray, order: Optional[Sequence[int]] = None) -> np.ndarray:
    """Vectorised :func:`build_cube` for a batch of shape ``(B, D, n)``.

    Returns an array of shape ``(B, D_rows, D_positions, n)`` in which axis 1
    indexes the cube rows and axis 2 the position within the row.  Because the
    rotation matrix ``(row + position) mod D`` is symmetric, the cube is
    invariant under swapping those two axes, so the convolutional models can
    consume it directly as a channels-first ``(B, D, D, n)`` image (see
    :class:`repro.models.conv_common.CubeInputMixin`).
    """
    batch = np.asarray(batch)
    if batch.ndim != 3:
        raise ValueError(f"batch must be (B, D, n), got shape {batch.shape}")
    n_dimensions = batch.shape[1]
    if order is not None:
        order = np.asarray(order)
        batch = batch[:, order, :]
    # shifts[row, position] = (row + position) mod D; one gather builds every
    # rotation at once.  Note the matrix is symmetric, so the cube equals its
    # own (row, position) transpose.
    shifts = (np.arange(n_dimensions)[:, None] + np.arange(n_dimensions)[None, :]) % n_dimensions
    return batch[:, shifts, :]


def roll_cube_batch(cubes: np.ndarray, new_columns: np.ndarray) -> np.ndarray:
    """Slide a batch of cubes forward in time, rewriting only the new columns.

    ``cubes`` is a ``(B, D, D, n)`` stack previously produced by
    :func:`build_cube_batch`; ``new_columns`` is the ``(B, D, hop)`` block of
    (already permuted) series columns that just entered the window.  Because
    ``cube[row, pos, t]`` depends only on column ``t`` of the underlying
    series, a window slide of ``hop`` timesteps shifts the cube's time axis
    left by ``hop`` and rewrites exactly the trailing ``hop`` columns — the
    other ``n - hop`` columns are reused bitwise.  This is the rolling
    ``C(T)`` update of the streaming workload (:mod:`repro.stream`).

    Mutates and returns ``cubes``.
    """
    cubes = np.asarray(cubes)
    new_columns = np.asarray(new_columns)
    if cubes.ndim != 4 or cubes.shape[1] != cubes.shape[2]:
        raise ValueError(f"cubes must be (B, D, D, n), got shape {cubes.shape}")
    if new_columns.ndim != 3:
        raise ValueError(f"new_columns must be (B, D, hop), got shape {new_columns.shape}")
    if new_columns.shape[:2] != cubes.shape[:2]:
        raise ValueError(
            f"new_columns batch/dimensions {new_columns.shape[:2]} do not match "
            f"cubes {cubes.shape[:2]}"
        )
    length = cubes.shape[-1]
    hop = new_columns.shape[-1]
    if hop >= length:
        cubes[...] = build_cube_batch(new_columns[..., -length:])
        return cubes
    # NumPy copies overlapping same-array slice assignments safely.
    cubes[..., : length - hop] = cubes[..., hop:]
    cubes[..., length - hop :] = build_cube_batch(new_columns)
    return cubes


def row_for_slot(slot: int, position: int, n_dimensions: int) -> int:
    """Row of the cube holding permuted slot ``slot`` at ``position``.

    Row ``i`` places permuted slot ``(i + p) mod D`` at position ``p``; hence
    the row containing slot ``slot`` at position ``position`` is
    ``(slot - position) mod D``.
    """
    return int((slot - position) % n_dimensions)


def idx(original_dimension: int, position: int, order: Optional[Sequence[int]],
        n_dimensions: int) -> int:
    """The ``idx`` function of Definition 1.

    Returns the row index of ``C(S_T)`` that contains ``T^(original_dimension)``
    at ``position``, where ``S_T`` is the permutation described by ``order``.
    """
    if order is None:
        slot = original_dimension
    else:
        order = np.asarray(order)
        slot = int(np.flatnonzero(order == original_dimension)[0])
    return row_for_slot(slot, position, n_dimensions)


def inverse_order(order: Sequence[int]) -> np.ndarray:
    """Map original dimension -> slot for a permutation ``order``."""
    order = np.asarray(order)
    inverse = np.empty_like(order)
    inverse[order] = np.arange(len(order))
    return inverse


def random_permutations(n_dimensions: int, k: int,
                        rng: Optional[np.random.Generator] = None,
                        include_identity: bool = True) -> List[np.ndarray]:
    """Draw ``k`` random dimension permutations (``Σ_T`` subset, Section 4.4.2).

    The identity permutation is included first by default, matching the
    intuition that the original dimension order should always be evaluated.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = rng or np.random.default_rng()
    permutations: List[np.ndarray] = []
    if include_identity:
        permutations.append(np.arange(n_dimensions))
    while len(permutations) < k:
        permutations.append(rng.permutation(n_dimensions))
    return permutations[:k]
