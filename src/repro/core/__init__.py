"""The paper's contribution: input cube, CAM, grad-CAM and dCAM."""

from .aggregate import (
    activation_per_segment,
    max_activation_per_dimension,
    mean_activation_per_dimension,
    mean_activation_per_segment,
    top_discriminant_dimensions,
    top_discriminant_segments,
)
from .cam import cam_as_multivariate, class_activation_map, predicted_class
from .dcam import (
    DCAMResult,
    compute_dcam,
    compute_dcam_batch,
    explanation_quality_proxy,
    extract_dcam,
    merge_permutation_cams,
    permutation_rows,
)
from .gradcam import grad_cam, mtex_explanation, mtex_grad_cam
from .input_transform import (
    build_cube,
    build_cube_batch,
    idx,
    inverse_order,
    random_permutations,
    roll_cube_batch,
    rotation_order,
    row_for_slot,
)

__all__ = [
    "build_cube",
    "build_cube_batch",
    "roll_cube_batch",
    "rotation_order",
    "row_for_slot",
    "idx",
    "inverse_order",
    "random_permutations",
    "class_activation_map",
    "cam_as_multivariate",
    "predicted_class",
    "grad_cam",
    "mtex_grad_cam",
    "mtex_explanation",
    "DCAMResult",
    "compute_dcam",
    "compute_dcam_batch",
    "merge_permutation_cams",
    "permutation_rows",
    "extract_dcam",
    "explanation_quality_proxy",
    "max_activation_per_dimension",
    "mean_activation_per_dimension",
    "activation_per_segment",
    "mean_activation_per_segment",
    "top_discriminant_dimensions",
    "top_discriminant_segments",
]
