"""Dataset-level aggregation of dCAM explanations (Sections 4.6 and 5.8).

When analysing a whole class of instances (e.g. every novice surgeon in the
JIGSAWS use case), the paper computes dCAM for each instance independently and
then aggregates the per-instance maps into global statistics:

* the maximal activation per sensor/dimension (Figure 13(c)), and
* the average activation per sensor and per gesture/segment (Figure 13(d)),

which together reveal *which dimensions during which temporal segments*
discriminate the class.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .dcam import DCAMResult

Segment = Tuple[str, int, int]


def max_activation_per_dimension(results: Sequence[DCAMResult]) -> np.ndarray:
    """Maximal dCAM activation per dimension, per instance.

    Returns an array of shape ``(n_instances, D)`` — the data behind the
    per-sensor box plots of Figure 13(c).
    """
    if not results:
        raise ValueError("at least one dCAM result is required")
    return np.stack([result.dcam.max(axis=1) for result in results])


def mean_activation_per_dimension(results: Sequence[DCAMResult]) -> np.ndarray:
    """Mean dCAM activation per dimension, averaged over instances (``(D,)``)."""
    if not results:
        raise ValueError("at least one dCAM result is required")
    return np.stack([result.dcam.mean(axis=1) for result in results]).mean(axis=0)


def activation_per_segment(result: DCAMResult, segments: Sequence[Segment]) -> Dict[str, np.ndarray]:
    """Average activation per dimension inside each labelled temporal segment.

    ``segments`` is a list of ``(label, start, end)``; segments sharing a label
    (e.g. a gesture repeated several times) are averaged together.
    """
    sums: Dict[str, np.ndarray] = {}
    counts: Dict[str, int] = {}
    for label, start, end in segments:
        if not 0 <= start < end <= result.length:
            raise ValueError(f"segment {label!r} [{start}, {end}) outside the series")
        segment_mean = result.dcam[:, start:end].mean(axis=1)
        if label in sums:
            sums[label] += segment_mean
            counts[label] += 1
        else:
            sums[label] = segment_mean.copy()
            counts[label] = 1
    return {label: sums[label] / counts[label] for label in sums}


def mean_activation_per_segment(results: Sequence[DCAMResult],
                                segments_per_instance: Sequence[Sequence[Segment]]
                                ) -> Dict[str, np.ndarray]:
    """Average activation per dimension per segment label across instances.

    This is the data behind Figure 13(d): e.g. the average dCAM activation of
    every sensor during every gesture, over all novice-class instances.
    """
    if len(results) != len(segments_per_instance):
        raise ValueError("results and segments_per_instance must align")
    sums: Dict[str, np.ndarray] = {}
    counts: Dict[str, int] = {}
    for result, segments in zip(results, segments_per_instance):
        per_segment = activation_per_segment(result, segments)
        for label, values in per_segment.items():
            if label in sums:
                sums[label] += values
                counts[label] += 1
            else:
                sums[label] = values.copy()
                counts[label] = 1
    return {label: sums[label] / counts[label] for label in sums}


def top_discriminant_dimensions(results: Sequence[DCAMResult], top_k: int = 5) -> List[int]:
    """Dimensions with the highest median maximal activation across instances."""
    per_instance = max_activation_per_dimension(results)
    medians = np.median(per_instance, axis=0)
    order = np.argsort(medians)[::-1]
    return order[:top_k].tolist()


def top_discriminant_segments(results: Sequence[DCAMResult],
                              segments_per_instance: Sequence[Sequence[Segment]],
                              top_k: int = 3) -> List[Tuple[str, float]]:
    """Segment labels ranked by their maximal per-dimension average activation."""
    per_segment = mean_activation_per_segment(results, segments_per_instance)
    scored = [(label, float(values.max())) for label, values in per_segment.items()]
    scored.sort(key=lambda item: item[1], reverse=True)
    return scored[:top_k]
