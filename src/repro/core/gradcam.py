"""Gradient-based class activation maps (grad-CAM) — used for MTEX-CNN.

grad-CAM (Selvaraju et al., 2017) generalises CAM to architectures without a
GAP + dense head: the kernel weights ``w_m`` are replaced by the average
gradient of the class score with respect to each feature map.  The paper uses
grad-CAM to obtain the explanation of the MTEX-CNN baseline ("MTEX-grad"),
which produces the per-dimension attribution from block 1 and the temporal
attribution from block 2.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..nn import Tensor
from ..nn import functional as F


def gradcam_batch_from(features: Tensor, relu: bool = True) -> np.ndarray:
    """Per-instance grad-CAM maps from batched features with gradients.

    ``features`` must have been part of a graph on which ``backward`` was
    already called, so its ``grad`` attribute holds ``∂y_c / ∂A`` — with one
    leading batch axis.  Each instance's maps are combined independently, so
    this is the batch generalisation of the classic grad-CAM weight/combine
    step (used by :class:`repro.explain.GradCAMExplainer`'s batch engine).
    """
    if features.grad is None:
        raise RuntimeError("features have no gradient; call backward() on the class score first")
    maps = features.data             # (batch, filters, ...) spatial maps
    grads = features.grad            # same shape
    spatial_axes = tuple(range(2, maps.ndim))
    weights = grads.mean(axis=spatial_axes)  # (batch, filters)
    cams = np.einsum("bf,bf...->b...", weights, maps)
    if relu:
        cams = np.maximum(cams, 0.0)
    return cams


def _gradcam_from(features: Tensor, relu: bool = True) -> np.ndarray:
    """One instance's grad-CAM heatmap (batch-size-1 graphs)."""
    return gradcam_batch_from(features, relu=relu)[0]


def mtex_forward(model: "MTEXCNNClassifier", prepared: Tensor
                 ) -> Tuple[Tensor, Tensor, Tensor]:
    """MTEX-CNN forward pass exposing both explainable feature blocks.

    Returns ``(block1, block2, logits)`` — the per-dimension maps, the
    temporal maps after the dimension merge, and the class logits.  Shared by
    the per-instance grad-CAM below and the batched explain engine so the
    explanation always follows the architecture's one forward definition.
    """
    block1 = model.block1_features(prepared)
    merged = model.merge(block1).squeeze(axis=2)
    block2 = model.block2(merged)
    pooled = F.global_average_pool(block2)
    logits = model.output(model.hidden(pooled).relu())
    return block1, block2, logits


def combine_mtex_maps(dimension_map: np.ndarray, temporal_map: np.ndarray) -> np.ndarray:
    """Modulate the block-1 dimension map by the normalised temporal map.

    The temporal map is max-normalised (or all-ones when identically zero) so
    that both the "which dimension" and "which time window" answers
    contribute to the combined ``(D, n)`` explanation.
    """
    if temporal_map.max() > 0:
        temporal_map = temporal_map / temporal_map.max()
    else:
        temporal_map = np.ones_like(temporal_map)
    return dimension_map * temporal_map[None, :]


def grad_cam(model: "ConvBackboneClassifier", series: np.ndarray, class_id: int,
             relu: bool = True) -> np.ndarray:
    """grad-CAM for any GAP-headed architecture (sanity baseline).

    Returns a heatmap with the same spatial shape as the architecture's last
    convolutional feature maps.
    """
    series = np.asarray(series, dtype=np.float64)
    model.eval()
    prepared = model.prepare_input(series[None])
    features = model.features(prepared)
    logits = model.classifier(model.gap(features))
    score = logits[0, class_id]
    score.backward()
    return _gradcam_from(features, relu=relu)


def mtex_grad_cam(model: "MTEXCNNClassifier", series: np.ndarray, class_id: int
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """The two grad-CAM maps of MTEX-CNN.

    Returns
    -------
    dimension_map:
        ``(D, n)`` attribution from block 1 (which dimension, which time).
    temporal_map:
        ``(n,)`` attribution from block 2 (which time window).
    """
    series = np.asarray(series, dtype=np.float64)
    model.eval()
    prepared = model.prepare_input(series[None])
    block1, block2, logits = mtex_forward(model, prepared)
    score = logits[0, class_id]
    score.backward()
    dimension_map = _gradcam_from(block1, relu=True)
    temporal_map = _gradcam_from(block2, relu=True)
    return dimension_map, temporal_map


def mtex_explanation(model: "MTEXCNNClassifier", series: np.ndarray, class_id: int) -> np.ndarray:
    """Combined MTEX-grad explanation used for Dr-acc (a ``(D, n)`` map).

    The per-dimension map of block 1 is modulated by the temporal map of
    block 2 so that both the "which dimension" and "which time window"
    answers contribute, mirroring how the paper scores MTEX-grad against the
    ground-truth masks.
    """
    dimension_map, temporal_map = mtex_grad_cam(model, series, class_id)
    return combine_mtex_maps(dimension_map, temporal_map)
