"""Gradient-based class activation maps (grad-CAM) — used for MTEX-CNN.

grad-CAM (Selvaraju et al., 2017) generalises CAM to architectures without a
GAP + dense head: the kernel weights ``w_m`` are replaced by the average
gradient of the class score with respect to each feature map.  The paper uses
grad-CAM to obtain the explanation of the MTEX-CNN baseline ("MTEX-grad"),
which produces the per-dimension attribution from block 1 and the temporal
attribution from block 2.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..nn import Tensor, inference_mode
from ..nn import functional as F


def gradcam_maps(maps: np.ndarray, grads: np.ndarray, relu: bool = True) -> np.ndarray:
    """The grad-CAM weight/combine step on plain arrays (batched).

    ``maps`` holds the feature maps ``A`` with a leading batch axis and
    ``grads`` the class-score gradients ``∂y_c / ∂A`` of the same shape; each
    instance's filters are weighted by its spatially averaged gradients and
    combined with one per-row einsum.
    """
    spatial_axes = tuple(range(2, maps.ndim))
    weights = grads.mean(axis=spatial_axes)  # (batch, filters)
    cams = np.einsum("bf,bf...->b...", weights, maps)
    if relu:
        cams = np.maximum(cams, 0.0)
    return cams


def gradcam_batch_from(features: Tensor, relu: bool = True) -> np.ndarray:
    """Per-instance grad-CAM maps from batched features with gradients.

    ``features`` must have been part of a graph on which ``backward`` was
    already called, so its ``grad`` attribute holds ``∂y_c / ∂A`` — with one
    leading batch axis.  Each instance's maps are combined independently, so
    this is the batch generalisation of the classic grad-CAM weight/combine
    step (the recorded-graph reference the VJP engine is pinned against).
    """
    if features.grad is None:
        raise RuntimeError("features have no gradient; call backward() on the class score first")
    return gradcam_maps(features.data, features.grad, relu=relu)


def _gradcam_from(features: Tensor, relu: bool = True) -> np.ndarray:
    """One instance's grad-CAM heatmap (batch-size-1 graphs)."""
    return gradcam_batch_from(features, relu=relu)[0]


def mtex_forward(model: "MTEXCNNClassifier", prepared: Tensor
                 ) -> Tuple[Tensor, Tensor, Tensor]:
    """MTEX-CNN forward pass exposing both explainable feature blocks.

    Returns ``(block1, block2, logits)`` — the per-dimension maps, the
    temporal maps after the dimension merge, and the class logits.  Shared by
    the per-instance grad-CAM below and the batched explain engine so the
    explanation always follows the architecture's one forward definition.
    """
    block1 = model.block1_features(prepared)
    merged = model.merge(block1).squeeze(axis=2)
    block2 = model.block2(merged)
    pooled = F.global_average_pool(block2)
    logits = model.output(model.hidden(pooled).relu())
    return block1, block2, logits


def combine_mtex_maps(dimension_map: np.ndarray, temporal_map: np.ndarray) -> np.ndarray:
    """Modulate the block-1 dimension map by the normalised temporal map.

    The temporal map is max-normalised (or all-ones when identically zero) so
    that both the "which dimension" and "which time window" answers
    contribute to the combined ``(D, n)`` explanation.
    """
    if temporal_map.max() > 0:
        temporal_map = temporal_map / temporal_map.max()
    else:
        temporal_map = np.ones_like(temporal_map)
    return dimension_map * temporal_map[None, :]


def mtex_vjp_maps(model: "MTEXCNNClassifier", X: np.ndarray,
                  class_ids: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Graph-free MTEX-grad maps for a raw batch: explicit VJP, no autograd.

    The recorded-graph path (:func:`mtex_grad_cam`) re-runs the forward with
    gradient tracking and walks the tape; this twin computes the same two
    gradients directly, so the forward runs under ``inference_mode`` (fused
    eval kernels, no graph) and the backward is four dense/scatter kernels:

    * head: the one-hot class gradient through the dense layers is a row
      gather of the output weights, masked by the hidden ReLU and contracted
      back through the hidden weights (per-row einsums);
    * GAP: the class-score gradient at block 2 is the pooled gradient spread
      uniformly over time (``g_pooled / n``) — which is also directly the
      spatially averaged grad-CAM weight of the temporal map;
    * block 2: ReLU mask, eval BatchNorm folded scale, conv1d input VJP;
    * merge: conv2d input VJP back to the block-1 maps.

    No gradient ever flows through block 1's internals or into any weight —
    the recorded path computes (and discards) both.  Every kernel touches
    rows independently (einsum contractions, elementwise masks, the
    :func:`~repro.nn.functional._col2im` scatter), so the maps are candidates
    for the serving layer's bit-exact coalescing (probed per artifact).
    Agreement with the recorded path is float round-off only (≤ 1e-10,
    pinned by tests).

    Returns ``(dimension_maps, temporal_maps)`` of shapes ``(B, D, n)`` and
    ``(B, n)``, already ReLU-clamped.
    """
    class_ids = np.asarray(class_ids, dtype=np.int64)
    was_training = model.training
    try:
        model.eval()
        with inference_mode():
            prepared = model.prepare_input(X)
            block1 = model.block1_features(prepared)
            merged = model.merge(block1).squeeze(axis=2)
            block2 = model.block2(merged)
    finally:
        if was_training:
            model.train()
    b1, b2 = block1.data, block2.data
    conv, bn = model.block2[0], model.block2[1]
    n = b2.shape[-1]

    # Head VJP.  ascontiguousarray canonicalises the (layout-dependent) mean
    # output so einsum's stride-sensitive accumulation is width-invariant.
    pooled = np.ascontiguousarray(b2.mean(axis=2))
    hidden_w = np.ascontiguousarray(model.hidden.weight.data)
    h_pre = np.einsum("bf,hf->bh", pooled, hidden_w) + model.hidden.bias.data
    g_h = model.output.weight.data[class_ids] * (h_pre > 0)
    g_pooled = np.einsum("bh,hf->bf", g_h, hidden_w)

    # GAP VJP: constant over time, so it is both the block-2 gradient and the
    # temporal grad-CAM weight vector.
    weights2 = g_pooled * (1.0 / n)
    temporal_maps = np.maximum(np.einsum("bf,bfn->bn", weights2, b2), 0.0)

    # Block-2 VJP: ReLU mask (block 2's output is post-ReLU, so its sign is
    # the mask), folded eval BatchNorm scale, conv input gradient.
    g = np.broadcast_to(weights2[:, :, None], b2.shape) * (b2 > 0)
    g = g * (bn.weight.data / (bn.running_var + bn.eps) ** 0.5)[None, :, None]
    g_merged = F.conv1d_input_grad(g, conv.weight.data, merged.shape,
                                   conv.stride, conv.padding)
    g_b1 = F.conv2d_input_grad(g_merged[:, :, None, :], model.merge.weight.data,
                               b1.shape, model.merge.stride, model.merge.padding)
    dimension_maps = gradcam_maps(b1, g_b1, relu=True)
    return dimension_maps, temporal_maps


def grad_cam(model: "ConvBackboneClassifier", series: np.ndarray, class_id: int,
             relu: bool = True) -> np.ndarray:
    """grad-CAM for any GAP-headed architecture (sanity baseline).

    Returns a heatmap with the same spatial shape as the architecture's last
    convolutional feature maps.
    """
    series = np.asarray(series, dtype=np.float64)
    model.eval()
    prepared = model.prepare_input(series[None])
    features = model.features(prepared)
    logits = model.classifier(model.gap(features))
    score = logits[0, class_id]
    score.backward()
    return _gradcam_from(features, relu=relu)


def mtex_grad_cam(model: "MTEXCNNClassifier", series: np.ndarray, class_id: int
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """The two grad-CAM maps of MTEX-CNN.

    Returns
    -------
    dimension_map:
        ``(D, n)`` attribution from block 1 (which dimension, which time).
    temporal_map:
        ``(n,)`` attribution from block 2 (which time window).
    """
    series = np.asarray(series, dtype=np.float64)
    model.eval()
    prepared = model.prepare_input(series[None])
    block1, block2, logits = mtex_forward(model, prepared)
    score = logits[0, class_id]
    score.backward()
    dimension_map = _gradcam_from(block1, relu=True)
    temporal_map = _gradcam_from(block2, relu=True)
    return dimension_map, temporal_map


def mtex_explanation(model: "MTEXCNNClassifier", series: np.ndarray, class_id: int) -> np.ndarray:
    """Combined MTEX-grad explanation used for Dr-acc (a ``(D, n)`` map).

    The per-dimension map of block 1 is modulated by the temporal map of
    block 2 so that both the "which dimension" and "which time window"
    answers contribute, mirroring how the paper scores MTEX-grad against the
    ground-truth masks.
    """
    dimension_map, temporal_map = mtex_grad_cam(model, series, class_id)
    return combine_mtex_maps(dimension_map, temporal_map)
