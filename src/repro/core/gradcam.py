"""Gradient-based class activation maps (grad-CAM) — used for MTEX-CNN.

grad-CAM (Selvaraju et al., 2017) generalises CAM to architectures without a
GAP + dense head: the kernel weights ``w_m`` are replaced by the average
gradient of the class score with respect to each feature map.  The paper uses
grad-CAM to obtain the explanation of the MTEX-CNN baseline ("MTEX-grad"),
which produces the per-dimension attribution from block 1 and the temporal
attribution from block 2.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..nn import Tensor
from ..nn import functional as F


def _gradcam_from(features: Tensor, relu: bool = True) -> np.ndarray:
    """Combine feature maps with their gradients into a grad-CAM heatmap.

    ``features`` must have been part of a graph on which ``backward`` was
    already called, so its ``grad`` attribute holds ``∂y_c / ∂A``.
    """
    if features.grad is None:
        raise RuntimeError("features have no gradient; call backward() on the class score first")
    maps = features.data[0]          # (filters, ...) spatial maps
    grads = features.grad[0]         # same shape
    spatial_axes = tuple(range(1, maps.ndim))
    weights = grads.mean(axis=spatial_axes)  # (filters,)
    cam = np.tensordot(weights, maps, axes=(0, 0))
    if relu:
        cam = np.maximum(cam, 0.0)
    return cam


def grad_cam(model: "ConvBackboneClassifier", series: np.ndarray, class_id: int,
             relu: bool = True) -> np.ndarray:
    """grad-CAM for any GAP-headed architecture (sanity baseline).

    Returns a heatmap with the same spatial shape as the architecture's last
    convolutional feature maps.
    """
    series = np.asarray(series, dtype=np.float64)
    model.eval()
    prepared = model.prepare_input(series[None])
    features = model.features(prepared)
    logits = model.classifier(model.gap(features))
    score = logits[0, class_id]
    score.backward()
    return _gradcam_from(features, relu=relu)


def mtex_grad_cam(model: "MTEXCNNClassifier", series: np.ndarray, class_id: int
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """The two grad-CAM maps of MTEX-CNN.

    Returns
    -------
    dimension_map:
        ``(D, n)`` attribution from block 1 (which dimension, which time).
    temporal_map:
        ``(n,)`` attribution from block 2 (which time window).
    """
    series = np.asarray(series, dtype=np.float64)
    model.eval()
    prepared = model.prepare_input(series[None])
    block1 = model.block1_features(prepared)
    merged = model.merge(block1).squeeze(axis=2)
    block2 = model.block2(merged)
    pooled = F.global_average_pool(block2)
    logits = model.output(model.hidden(pooled).relu())
    score = logits[0, class_id]
    score.backward()
    dimension_map = _gradcam_from(block1, relu=True)
    temporal_map = _gradcam_from(block2, relu=True)
    return dimension_map, temporal_map


def mtex_explanation(model: "MTEXCNNClassifier", series: np.ndarray, class_id: int) -> np.ndarray:
    """Combined MTEX-grad explanation used for Dr-acc (a ``(D, n)`` map).

    The per-dimension map of block 1 is modulated by the temporal map of
    block 2 so that both the "which dimension" and "which time window"
    answers contribute, mirroring how the paper scores MTEX-grad against the
    ground-truth masks.
    """
    dimension_map, temporal_map = mtex_grad_cam(model, series, class_id)
    if temporal_map.max() > 0:
        temporal_map = temporal_map / temporal_map.max()
    else:
        temporal_map = np.ones_like(temporal_map)
    return dimension_map * temporal_map[None, :]
