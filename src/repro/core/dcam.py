"""dCAM: Dimension-wise Class Activation Map (Section 4.4 of the paper).

Given a trained d-architecture (dCNN / dResNet / dInceptionTime), dCAM

1. draws ``k`` random permutations of the input dimensions (Section 4.4.1),
2. computes the CAM of the ``C(S_T)`` cube for each permutation and
   re-indexes it by (original dimension, position-within-row) — the ``M``
   transformation of Definition 2,
3. averages the ``M`` transformations into ``M̄`` (Section 4.4.2), and
4. extracts the final ``(D, n)`` map as the per-position variance of ``M̄``
   multiplied by the average activation over all dimensions/positions
   (Definition 3) — high variance across positions marks discriminant
   subsequences, while the average filters out irrelevant temporal windows.

The number ``n_g`` of permutations that the model classifies correctly is also
recorded; ``n_g / k`` is the paper's label-free proxy for explanation quality
(Sections 4.6 and 5.6).

Execution strategy
------------------
Explanation only needs activations, never gradients, so the hot path runs the
``k`` permuted cubes through the model in micro-batches under
:func:`repro.nn.inference_mode`: no autograd graph is recorded, the im2col
buffers of the convolutions are released immediately, and the per-permutation
``M`` transformations are materialised by one fancy-indexed gather over the
stacked ``(k, D, n)`` CAM array instead of a Python loop of ``(D, D, n)``
temporaries.  :func:`_permutation_cam` retains the legacy one-permutation
graph-recording path as a numerical reference for tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn import inference_mode
from .input_transform import inverse_order, random_permutations

__all__ = [
    "DCAMResult",
    "compute_dcam",
    "compute_dcam_batch",
    "merge_permutation_cams",
    "permutation_rows",
    "extract_dcam",
    "explanation_quality_proxy",
]

#: Default number of permuted cubes per forward pass.  Bounds the peak im2col
#: footprint (which grows linearly with the micro-batch size) while keeping
#: the matrix multiplications large enough to amortise Python dispatch.
DEFAULT_BATCH_SIZE = 32

#: Soft cap on the scratch memory of the vectorised ``M``-transform gather;
#: above it the gather falls back to chunking over permutations.
_MERGE_SCRATCH_BYTES = 128 * 1024 * 1024

#: Soft cap on the permuted-series + CAM arrays materialised at once by
#: :func:`compute_dcam_batch`; above it instances are processed in groups
#: (micro-batching still crosses instance boundaries within a group).
#: Tuned at paper scale (D=40, n=100, k=100, ~6.4 MB/instance): throughput
#: plateaus once a group holds ~20 instances, so 128 MB matches the 256 MB
#: setting's speed at half the peak transient footprint (sweep recorded in
#: docs/benchmarks.md).
_BATCH_MATERIALIZE_BYTES = 128 * 1024 * 1024


@dataclass
class DCAMResult:
    """Output of :func:`compute_dcam`.

    Attributes
    ----------
    dcam:
        The dimension-wise class activation map, shape ``(D, n)``.
    m_bar:
        The averaged ``M`` transformation ``M̄``, shape ``(D, D, n)`` indexed by
        (original dimension, position within a cube row, time).
    averaged_cam:
        ``μ(M̄)`` per timestamp, shape ``(n,)`` — the approximation of the
        standard (univariate) CAM described in Section 4.4.3.
    class_id:
        Class the map explains.
    k:
        Number of permutations evaluated.
    n_correct:
        ``n_g`` — how many permutations the model classified as ``class_id``.
    """

    dcam: np.ndarray
    m_bar: np.ndarray
    averaged_cam: np.ndarray
    class_id: int
    k: int
    n_correct: int

    @property
    def success_ratio(self) -> float:
        """``n_g / k``: the label-free proxy for explanation quality."""
        return self.n_correct / self.k if self.k else 0.0

    @property
    def n_dimensions(self) -> int:
        return self.dcam.shape[0]

    @property
    def length(self) -> int:
        return self.dcam.shape[1]


def _permutation_cam(model: "ConvBackboneClassifier", series: np.ndarray, class_id: int,
                     order: np.ndarray) -> tuple[np.ndarray, int]:
    """CAM over the cube rows for one permutation, plus the predicted class.

    Legacy batch-size-1, graph-recording path.  The production pipeline is
    :func:`_permutation_cams_batched`; this function is kept as the
    independent numerical reference the equivalence tests compare against.
    """
    prepared = model.prepare_input(series[None], order)
    features = model.features(prepared)
    pooled = model.gap(features)
    logits = model.classifier(pooled)
    weights = model.class_weights[class_id]
    cam_rows = np.tensordot(weights, features.data[0], axes=(0, 0))  # (D, n)
    predicted = int(logits.data[0].argmax())
    return cam_rows, predicted


def _require_d_architecture(model: "ConvBackboneClassifier") -> None:
    if getattr(model, "input_kind", None) != "cube":
        raise TypeError(
            f"dCAM requires a d-architecture (dCNN/dResNet/dInceptionTime); "
            f"got {type(model).__name__}"
        )


def _stack_orders(permutations: Sequence[np.ndarray], n_dimensions: int) -> np.ndarray:
    """Validate and stack permutations into a ``(k, D)`` integer array."""
    try:
        orders = np.asarray([np.asarray(order) for order in permutations])
    except ValueError as error:
        raise ValueError(
            f"permutations must all have length {n_dimensions} to match the "
            f"series dimensions"
        ) from error
    if orders.ndim != 2 or orders.shape[1] != n_dimensions:
        raise ValueError(
            f"permutations must have shape (k, {n_dimensions}), got {orders.shape}"
        )
    if not np.issubdtype(orders.dtype, np.integer):
        raise ValueError(
            f"permutations must contain integer dimension indices, got dtype {orders.dtype}"
        )
    valid = np.sort(orders, axis=1) == np.arange(n_dimensions)[None, :]
    if not valid.all():
        index = int(np.flatnonzero(~valid.all(axis=1))[0])
        raise ValueError(f"permutation #{index} is not a permutation of range({n_dimensions})")
    return orders.astype(np.intp, copy=False)


def _permutation_cams_batched(model: "ConvBackboneClassifier", permuted: np.ndarray,
                              class_weights: np.ndarray,
                              batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Forward pre-permuted series through the model in graph-free micro-batches.

    Parameters
    ----------
    permuted:
        Stack of dimension-permuted series, shape ``(N, D, n)``.
    class_weights:
        Per-row dense-layer weight vectors ``w^{C}`` of shape ``(N, F)`` —
        rows may differ when explaining several instances/classes at once.
    batch_size:
        Number of cubes per forward pass (peak-memory knob).

    Returns
    -------
    cams:
        Stacked CAM rows, shape ``(N, D, n)``.
    predicted:
        Predicted class per permuted series, shape ``(N,)``.
    """
    n_total, n_dimensions, length = permuted.shape
    cams = np.empty((n_total, n_dimensions, length))
    predicted = np.empty(n_total, dtype=np.int64)
    batch_size = max(1, int(batch_size))
    with inference_mode():
        for start in range(0, n_total, batch_size):
            stop = min(start + batch_size, n_total)
            prepared = model.prepare_input(permuted[start:stop])
            features = model.features(prepared)
            logits = model.classifier(model.gap(features))
            cams[start:stop] = np.einsum(
                "bf,bfdn->bdn", class_weights[start:stop], features.data
            )
            predicted[start:stop] = logits.data.argmax(axis=1)
    return cams, predicted


def _m_transform(cam_rows: np.ndarray, order: np.ndarray) -> np.ndarray:
    """The ``M`` transformation (Definition 2) for one permutation.

    ``M[d, p, :]`` is the CAM row that contained original dimension ``d`` at
    position ``p`` of the permuted cube ``C(S_T)``.
    """
    n_dimensions = cam_rows.shape[0]
    slots = inverse_order(order)  # original dimension -> slot in the permuted series
    positions = np.arange(n_dimensions)
    # Row containing slot s at position p is (s - p) mod D.
    rows = (slots[:, None] - positions[None, :]) % n_dimensions  # (D, D)
    return cam_rows[rows]  # (D, D, n)


def permutation_rows(orders: np.ndarray) -> np.ndarray:
    """``rows[p, d, q]`` = cube row holding dimension ``d`` at position ``q``.

    The vectorised ``idx`` function of Definition 1 over a ``(k, D)``
    permutation stack: gathering ``cams[p, rows[p]]`` materialises every
    permutation's ``M`` transform at once.  Shared by the batched merge below
    and by the streaming engine's per-column ``M̄`` delta updates
    (:mod:`repro.stream`), which gather only the window columns a slide
    touched.
    """
    k, n_dimensions = orders.shape
    # slots[p, d] = position of original dimension d under permutation p.
    slots = np.empty_like(orders)
    slots[np.arange(k)[:, None], orders] = np.arange(n_dimensions)[None, :]
    positions = np.arange(n_dimensions)
    return (slots[:, :, None] - positions[None, None, :]) % n_dimensions  # (k, D, D)


def _merge_cam_stack(cams: np.ndarray, orders: np.ndarray) -> np.ndarray:
    """Average the ``M`` transformations of stacked permutation CAMs.

    ``cams`` has shape ``(k, D, n)`` and ``orders`` shape ``(k, D)``.  The
    ``M`` transforms of all permutations are materialised by a single
    fancy-indexed gather ``cams[perm, row]`` (chunked over ``k`` when the
    ``(k, D, D, n)`` scratch array would exceed the soft memory cap).
    """
    k, n_dimensions, length = cams.shape
    rows = permutation_rows(orders)  # (k, D, D)
    bytes_per_perm = n_dimensions * n_dimensions * length * cams.itemsize
    chunk = max(1, _MERGE_SCRATCH_BYTES // max(1, bytes_per_perm))
    if chunk >= k:
        return cams[np.arange(k)[:, None, None], rows].sum(axis=0) / k
    total = np.zeros((n_dimensions, n_dimensions, length), dtype=cams.dtype)
    for start in range(0, k, chunk):
        stop = min(start + chunk, k)
        index = np.arange(start, stop)[:, None, None]
        total += cams[index, rows[start:stop]].sum(axis=0)
    return total / k


def merge_permutation_cams(cams_and_orders: Sequence[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
    """Average the ``M`` transformations of several permutations into ``M̄``.

    Every entry must be a ``(cam_rows, order)`` pair whose ``cam_rows`` share
    one ``(D, n)`` shape and whose ``order`` is a permutation of ``range(D)``;
    mismatches raise :class:`ValueError` with the offending entry identified.
    """
    if not cams_and_orders:
        raise ValueError("at least one permutation CAM is required")
    expected_shape: Optional[tuple] = None
    cam_list: List[np.ndarray] = []
    order_list: List[np.ndarray] = []
    for index, (cam_rows, order) in enumerate(cams_and_orders):
        cam_rows = np.asarray(cam_rows, dtype=np.float64)
        order = np.asarray(order)
        if cam_rows.ndim != 2:
            raise ValueError(
                f"cam_rows #{index} must be a (D, n) array, got shape {cam_rows.shape}"
            )
        if expected_shape is None:
            expected_shape = cam_rows.shape
        elif cam_rows.shape != expected_shape:
            raise ValueError(
                f"cam_rows #{index} has shape {cam_rows.shape} but earlier entries "
                f"have shape {expected_shape}; all permutation CAMs must share one "
                f"(D, n) shape"
            )
        n_dimensions = cam_rows.shape[0]
        if order.shape != (n_dimensions,):
            raise ValueError(
                f"order #{index} has shape {order.shape} but cam_rows #{index} has "
                f"D={n_dimensions} rows; each order must list a permutation of range(D)"
            )
        if not np.array_equal(np.sort(order), np.arange(n_dimensions)):
            raise ValueError(f"order #{index} is not a permutation of range({n_dimensions})")
        cam_list.append(cam_rows)
        order_list.append(order.astype(np.intp))
    return _merge_cam_stack(np.stack(cam_list), np.stack(order_list))


def extract_dcam(m_bar: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Definition 3: combine per-position variance with the global average.

    Returns ``(dcam, averaged_cam)`` where ``dcam`` has shape ``(D, n)`` and
    ``averaged_cam`` (``μ(M̄)``, shape ``(n,)``) approximates the standard CAM.
    """
    if m_bar.ndim != 3 or m_bar.shape[0] != m_bar.shape[1]:
        raise ValueError("m_bar must have shape (D, D, n)")
    n_dimensions = m_bar.shape[0]
    averaged_cam = m_bar.sum(axis=(0, 1)) / (2.0 * n_dimensions)
    variance_per_dimension = m_bar.var(axis=1)  # (D, n)
    dcam = variance_per_dimension * averaged_cam[None, :]
    return dcam, averaged_cam


def _assemble_result(cams: np.ndarray, orders: np.ndarray, predicted: np.ndarray,
                     class_id: int, use_only_correct: bool) -> DCAMResult:
    """Merge the CAMs of one instance's permutations into a :class:`DCAMResult`."""
    correct_mask = predicted == class_id
    n_correct = int(correct_mask.sum())
    if use_only_correct and 0 < n_correct:
        m_bar = _merge_cam_stack(cams[correct_mask], orders[correct_mask])
    else:
        m_bar = _merge_cam_stack(cams, orders)
    dcam, averaged_cam = extract_dcam(m_bar)
    return DCAMResult(
        dcam=dcam,
        m_bar=m_bar,
        averaged_cam=averaged_cam,
        class_id=class_id,
        k=len(orders),
        n_correct=n_correct,
    )


def compute_dcam(model: "ConvBackboneClassifier", series: np.ndarray, class_id: int,
                 k: int = 100, rng: Optional[np.random.Generator] = None,
                 permutations: Optional[Sequence[np.ndarray]] = None,
                 use_only_correct: bool = False,
                 batch_size: int = DEFAULT_BATCH_SIZE) -> DCAMResult:
    """Compute dCAM for one multivariate series.

    The ``k`` permuted cubes are evaluated in graph-free micro-batches (see
    the module docstring), which is several times faster than ``k``
    independent autograd-recording forward passes while producing maps that
    agree with the legacy path to float round-off (≤ 1e-10).

    Parameters
    ----------
    model:
        A trained d-architecture (``input_kind == "cube"``).
    series:
        Multivariate series of shape ``(D, n)``.
    class_id:
        Class to explain (typically the predicted or ground-truth class).
    k:
        Number of random permutations (the paper uses ``k = 100``).
    rng:
        Random generator controlling the permutation draw.
    permutations:
        Explicit permutations to use instead of random ones (overrides ``k``).
    use_only_correct:
        If True, only permutations classified as ``class_id`` contribute to
        ``M̄`` (falling back to all permutations when none is correct).
    batch_size:
        Number of permuted cubes per forward pass.  Larger values amortise
        per-call overhead and enlarge the underlying matrix multiplications
        (faster), but peak memory — dominated by the im2col patch buffers of
        the convolutions — grows linearly with it.  The default of
        ``32`` is a good trade-off for the paper's scales; lower it for very
        long series or high-dimensional cubes, raise it for tiny problems.
        Results agree across ``batch_size`` values (and with the legacy
        per-permutation path) to within a few ulps of floating-point
        round-off — well under 1e-10 — not necessarily bit-for-bit.
    """
    _require_d_architecture(model)
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 2:
        raise ValueError(f"series must be (D, n), got shape {series.shape}")
    n_dimensions = series.shape[0]
    model.eval()
    if permutations is None:
        permutations = random_permutations(n_dimensions, k, rng)
    orders = _stack_orders(permutations, n_dimensions)
    k = len(orders)

    # Pre-permuting the series is equivalent to passing `order` to
    # `prepare_input` (the cube build permutes dimensions first), and lets all
    # k permutations share one stacked array.
    permuted = series[orders]  # (k, D, n)
    weights = model.class_weights[class_id]
    class_weights = np.broadcast_to(weights, (k, weights.shape[0]))
    cams, predicted = _permutation_cams_batched(model, permuted, class_weights, batch_size)
    return _assemble_result(cams, orders, predicted, class_id, use_only_correct)


def compute_dcam_batch(model: "ConvBackboneClassifier", X: np.ndarray,
                       class_ids: Sequence[int], k: int = 100,
                       rng: Optional[np.random.Generator] = None,
                       permutations: Optional[Sequence[Sequence[np.ndarray]]] = None,
                       use_only_correct: bool = False,
                       batch_size: int = DEFAULT_BATCH_SIZE) -> List[DCAMResult]:
    """Compute dCAM for every series of a batch ``(instances, D, n)``.

    The instances' permuted cubes share one micro-batched pipeline, so forward
    passes are never padded down to a single instance's leftover permutations
    and the model is driven at full batch width throughout.  Instances are
    processed in groups sized so that the materialised permuted-series and CAM
    arrays stay within a soft memory cap.

    ``permutations`` optionally supplies one explicit permutation sequence per
    instance (overriding ``k``/``rng``), mirroring :func:`compute_dcam`'s
    parameter.  The serving layer uses this to batch requests that each carry
    their own permutation seed: instance ``i``'s result then matches
    ``compute_dcam(model, X[i], class_ids[i], permutations=permutations[i])``.
    Instances may bring different permutation counts.
    """
    X = np.asarray(X, dtype=np.float64)
    if len(X) != len(class_ids):
        raise ValueError("X and class_ids must have the same length")
    if X.ndim != 3:
        raise ValueError(f"X must be (instances, D, n), got shape {X.shape}")
    _require_d_architecture(model)
    n_instances, n_dimensions, length = X.shape
    model.eval()

    if permutations is None:
        # Draw each instance's permutations in sequence (matching the legacy
        # one-instance-at-a-time behaviour for a given generator state).
        rng = rng or np.random.default_rng()
        per_instance_orders = [
            _stack_orders(random_permutations(n_dimensions, k, rng), n_dimensions)
            for _ in range(n_instances)
        ]
    else:
        if len(permutations) != n_instances:
            raise ValueError(
                f"permutations must supply one sequence per instance "
                f"({n_instances}), got {len(permutations)}"
            )
        per_instance_orders = [
            _stack_orders(orders, n_dimensions) for orders in permutations
        ]
    class_ids = [int(c) for c in class_ids]
    counts = [len(orders) for orders in per_instance_orders]

    # Permuted series + CAM stacks cost ~2 * k_i * D * n * 8 bytes per instance.
    max_count = max(counts) if counts else 0
    bytes_per_instance = 2 * max_count * n_dimensions * length * 8
    group = max(1, _BATCH_MATERIALIZE_BYTES // max(1, bytes_per_instance))

    results: List[DCAMResult] = []
    for first in range(0, n_instances, group):
        last = min(first + group, n_instances)
        orders_flat = np.concatenate(per_instance_orders[first:last], axis=0)
        instance_flat = np.repeat(np.arange(first, last), counts[first:last])
        permuted_flat = X[instance_flat[:, None], orders_flat]  # (sum k_i, D, n)
        weights_flat = model.class_weights[np.repeat(class_ids[first:last], counts[first:last])]
        cams_flat, predicted_flat = _permutation_cams_batched(
            model, permuted_flat, weights_flat, batch_size
        )
        start = 0
        for index in range(first, last):
            stop = start + counts[index]
            results.append(
                _assemble_result(cams_flat[start:stop], per_instance_orders[index],
                                 predicted_flat[start:stop], class_ids[index],
                                 use_only_correct)
            )
            start = stop
    return results


def explanation_quality_proxy(result: DCAMResult) -> float:
    """``n_g / k`` — usable without labels to estimate explanation quality."""
    return result.success_ratio
