"""dCAM: Dimension-wise Class Activation Map (Section 4.4 of the paper).

Given a trained d-architecture (dCNN / dResNet / dInceptionTime), dCAM

1. draws ``k`` random permutations of the input dimensions (Section 4.4.1),
2. computes the CAM of the ``C(S_T)`` cube for each permutation and
   re-indexes it by (original dimension, position-within-row) — the ``M``
   transformation of Definition 2,
3. averages the ``M`` transformations into ``M̄`` (Section 4.4.2), and
4. extracts the final ``(D, n)`` map as the per-position variance of ``M̄``
   multiplied by the average activation over all dimensions/positions
   (Definition 3) — high variance across positions marks discriminant
   subsequences, while the average filters out irrelevant temporal windows.

The number ``n_g`` of permutations that the model classifies correctly is also
recorded; ``n_g / k`` is the paper's label-free proxy for explanation quality
(Sections 4.6 and 5.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .input_transform import inverse_order, random_permutations

__all__ = [
    "DCAMResult",
    "compute_dcam",
    "compute_dcam_batch",
    "merge_permutation_cams",
    "extract_dcam",
    "explanation_quality_proxy",
]


@dataclass
class DCAMResult:
    """Output of :func:`compute_dcam`.

    Attributes
    ----------
    dcam:
        The dimension-wise class activation map, shape ``(D, n)``.
    m_bar:
        The averaged ``M`` transformation ``M̄``, shape ``(D, D, n)`` indexed by
        (original dimension, position within a cube row, time).
    averaged_cam:
        ``μ(M̄)`` per timestamp, shape ``(n,)`` — the approximation of the
        standard (univariate) CAM described in Section 4.4.3.
    class_id:
        Class the map explains.
    k:
        Number of permutations evaluated.
    n_correct:
        ``n_g`` — how many permutations the model classified as ``class_id``.
    """

    dcam: np.ndarray
    m_bar: np.ndarray
    averaged_cam: np.ndarray
    class_id: int
    k: int
    n_correct: int

    @property
    def success_ratio(self) -> float:
        """``n_g / k``: the label-free proxy for explanation quality."""
        return self.n_correct / self.k if self.k else 0.0

    @property
    def n_dimensions(self) -> int:
        return self.dcam.shape[0]

    @property
    def length(self) -> int:
        return self.dcam.shape[1]


def _permutation_cam(model: "ConvBackboneClassifier", series: np.ndarray, class_id: int,
                     order: np.ndarray) -> tuple[np.ndarray, int]:
    """CAM over the cube rows for one permutation, plus the predicted class."""
    prepared = model.prepare_input(series[None], order)
    features = model.features(prepared)
    pooled = model.gap(features)
    logits = model.classifier(pooled)
    weights = model.class_weights[class_id]
    cam_rows = np.tensordot(weights, features.data[0], axes=(0, 0))  # (D, n)
    predicted = int(logits.data[0].argmax())
    return cam_rows, predicted


def _m_transform(cam_rows: np.ndarray, order: np.ndarray) -> np.ndarray:
    """The ``M`` transformation (Definition 2) for one permutation.

    ``M[d, p, :]`` is the CAM row that contained original dimension ``d`` at
    position ``p`` of the permuted cube ``C(S_T)``.
    """
    n_dimensions = cam_rows.shape[0]
    slots = inverse_order(order)  # original dimension -> slot in the permuted series
    positions = np.arange(n_dimensions)
    # Row containing slot s at position p is (s - p) mod D.
    rows = (slots[:, None] - positions[None, :]) % n_dimensions  # (D, D)
    return cam_rows[rows]  # (D, D, n)


def merge_permutation_cams(cams_and_orders: Sequence[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
    """Average the ``M`` transformations of several permutations into ``M̄``."""
    if not cams_and_orders:
        raise ValueError("at least one permutation CAM is required")
    total = None
    for cam_rows, order in cams_and_orders:
        transformed = _m_transform(cam_rows, np.asarray(order))
        total = transformed if total is None else total + transformed
    return total / len(cams_and_orders)


def extract_dcam(m_bar: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Definition 3: combine per-position variance with the global average.

    Returns ``(dcam, averaged_cam)`` where ``dcam`` has shape ``(D, n)`` and
    ``averaged_cam`` (``μ(M̄)``, shape ``(n,)``) approximates the standard CAM.
    """
    if m_bar.ndim != 3 or m_bar.shape[0] != m_bar.shape[1]:
        raise ValueError("m_bar must have shape (D, D, n)")
    n_dimensions = m_bar.shape[0]
    averaged_cam = m_bar.sum(axis=(0, 1)) / (2.0 * n_dimensions)
    variance_per_dimension = m_bar.var(axis=1)  # (D, n)
    dcam = variance_per_dimension * averaged_cam[None, :]
    return dcam, averaged_cam


def compute_dcam(model: "ConvBackboneClassifier", series: np.ndarray, class_id: int,
                 k: int = 100, rng: Optional[np.random.Generator] = None,
                 permutations: Optional[Sequence[np.ndarray]] = None,
                 use_only_correct: bool = False) -> DCAMResult:
    """Compute dCAM for one multivariate series.

    Parameters
    ----------
    model:
        A trained d-architecture (``input_kind == "cube"``).
    series:
        Multivariate series of shape ``(D, n)``.
    class_id:
        Class to explain (typically the predicted or ground-truth class).
    k:
        Number of random permutations (the paper uses ``k = 100``).
    rng:
        Random generator controlling the permutation draw.
    permutations:
        Explicit permutations to use instead of random ones (overrides ``k``).
    use_only_correct:
        If True, only permutations classified as ``class_id`` contribute to
        ``M̄`` (falling back to all permutations when none is correct).
    """
    if getattr(model, "input_kind", None) != "cube":
        raise TypeError(
            f"dCAM requires a d-architecture (dCNN/dResNet/dInceptionTime); "
            f"got {type(model).__name__}"
        )
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 2:
        raise ValueError(f"series must be (D, n), got shape {series.shape}")
    n_dimensions = series.shape[0]
    model.eval()
    if permutations is None:
        permutations = random_permutations(n_dimensions, k, rng)
    else:
        permutations = [np.asarray(p) for p in permutations]
    k = len(permutations)

    collected: List[tuple[np.ndarray, np.ndarray]] = []
    correct: List[tuple[np.ndarray, np.ndarray]] = []
    n_correct = 0
    for order in permutations:
        cam_rows, predicted = _permutation_cam(model, series, class_id, order)
        collected.append((cam_rows, order))
        if predicted == class_id:
            n_correct += 1
            correct.append((cam_rows, order))

    used = correct if (use_only_correct and correct) else collected
    m_bar = merge_permutation_cams(used)
    dcam, averaged_cam = extract_dcam(m_bar)
    return DCAMResult(
        dcam=dcam,
        m_bar=m_bar,
        averaged_cam=averaged_cam,
        class_id=class_id,
        k=k,
        n_correct=n_correct,
    )


def compute_dcam_batch(model: "ConvBackboneClassifier", X: np.ndarray,
                       class_ids: Sequence[int], k: int = 100,
                       rng: Optional[np.random.Generator] = None,
                       use_only_correct: bool = False) -> List[DCAMResult]:
    """Compute dCAM for every series of a batch ``(instances, D, n)``."""
    X = np.asarray(X, dtype=np.float64)
    if len(X) != len(class_ids):
        raise ValueError("X and class_ids must have the same length")
    rng = rng or np.random.default_rng()
    return [
        compute_dcam(model, X[index], int(class_ids[index]), k=k, rng=rng,
                     use_only_correct=use_only_correct)
        for index in range(len(X))
    ]


def explanation_quality_proxy(result: DCAMResult) -> float:
    """``n_g / k`` — usable without labels to estimate explanation quality."""
    return result.success_ratio
