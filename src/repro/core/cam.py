"""Class Activation Map (CAM) computation — Section 2.2 of the paper.

The CAM of class ``C_j`` for an input ``T`` is ``Σ_m w_m^{C_j} A_m(T)`` where
``A_m`` is the output of the last convolutional layer for kernel ``m`` and
``w_m^{C_j}`` the dense-layer weight connecting kernel ``m`` (after global
average pooling) to the class-``C_j`` neuron.

* For the plain 1D architectures (CNN / ResNet / InceptionTime) the CAM is a
  univariate series of length ``n`` — the paper's key limitation for
  multivariate inputs.
* For the c-architectures the CAM is a ``(D, n)`` map (cCAM).
* For the d-architectures the same computation over the ``C(T)`` cube yields a
  ``(D, n)`` map whose rows correspond to cube rows — the raw ingredient of
  dCAM (see :mod:`repro.core.dcam`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np



def _check_model(model) -> None:
    if not getattr(model, "supports_cam", False):
        raise TypeError(
            f"{type(model).__name__} does not end with GAP + dense and therefore "
            "cannot produce a Class Activation Map"
        )


def class_activation_map(model: "ConvBackboneClassifier", series: np.ndarray, class_id: int,
                         order: Optional[np.ndarray] = None,
                         relu: bool = False) -> np.ndarray:
    """Compute the CAM of ``class_id`` for one multivariate series.

    Parameters
    ----------
    model:
        A trained GAP-headed classifier.
    series:
        One multivariate series of shape ``(D, n)``.
    class_id:
        The class whose activation map is requested.
    order:
        Optional dimension permutation; only valid for the d-architectures
        (forwarded to the cube construction).
    relu:
        If True, negative contributions are clipped to zero (the common CAM
        visualisation convention).  The paper's Dr-acc uses the raw values, so
        the default is False.

    Returns
    -------
    cam:
        ``(n,)`` for 1D architectures, ``(D, n)`` for c/d architectures (rows
        of the ``C(T)`` cube for the d-architectures).
    """
    _check_model(model)
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 2:
        raise ValueError(f"series must be (D, n), got shape {series.shape}")
    model.eval()
    if model.input_kind == "cube":
        prepared = model.prepare_input(series[None], order)
    else:
        if order is not None:
            raise ValueError("dimension permutations only apply to d-architectures")
        prepared = model.prepare_input(series[None])
    features = model.features(prepared).data[0]  # (nf, n) or (nf, D, n)
    weights = model.class_weights[class_id]  # (nf,)
    cam = np.tensordot(weights, features, axes=(0, 0))
    if relu:
        cam = np.maximum(cam, 0.0)
    return cam


def cam_as_multivariate(cam: np.ndarray, n_dimensions: int) -> np.ndarray:
    """Broadcast a univariate CAM to all dimensions.

    The paper (Section 5.1.2) evaluates the Dr-acc of CNN/ResNet/InceptionTime
    "by assuming that their (univariate) CAM values are the same for all
    dimensions"; this helper implements that convention.
    """
    cam = np.asarray(cam)
    if cam.ndim != 1:
        raise ValueError("cam_as_multivariate expects a univariate CAM")
    return np.tile(cam, (n_dimensions, 1))


def predicted_class(model, series: np.ndarray) -> int:
    """Convenience helper: class predicted for one series."""
    series = np.asarray(series, dtype=np.float64)
    return int(model.predict(series[None])[0])
