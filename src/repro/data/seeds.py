"""Synthetic stand-ins for the UCR seed datasets used by the paper.

The paper builds its synthetic Type 1 / Type 2 benchmarks by concatenating
instances from two classes of the UCR datasets *StarLightCurves*, *ShapesAll*
and *Fish* (Section 5.1.1).  The real archive is not available offline, so this
module generates univariate series with the same character:

* ``starlight`` — smooth, periodic light-curve-like series.  Class 0 resembles
  a sinusoidal pulsating variable star; class 1 resembles an eclipsing binary
  with sharp periodic dips.
* ``shapes`` — radial contour profiles of polygon-like shapes.  Class 0 uses a
  low number of lobes, class 1 a higher number, giving clearly different local
  patterns.
* ``fish`` — smooth closed-outline profiles with class-dependent asymmetric
  bumps (dorsal-fin-like vs tail-heavy shapes).

Only two classes per seed are generated, mirroring the paper's use of two
classes from each UCR dataset.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

SEED_NAMES = ("starlight", "shapes", "fish")


def _smooth_noise(length: int, rng: np.random.Generator, scale: float = 0.05,
                  smoothing: int = 5) -> np.ndarray:
    """Low-pass-filtered Gaussian noise, to avoid perfectly clean series."""
    noise = rng.normal(0.0, scale, size=length + smoothing)
    kernel = np.ones(smoothing) / smoothing
    return np.convolve(noise, kernel, mode="same")[:length]


def starlight(class_id: int, length: int, rng: np.random.Generator) -> np.ndarray:
    """Star-light-curve-like series (smooth periodic brightness curves)."""
    t = np.linspace(0.0, 2.0 * np.pi, length)
    phase = rng.uniform(0.0, 2.0 * np.pi)
    period = rng.uniform(1.5, 2.5)
    if class_id == 0:
        # Pulsating variable: smooth asymmetric sinusoidal oscillation.
        curve = np.sin(period * t + phase) + 0.3 * np.sin(2 * period * t + phase)
    elif class_id == 1:
        # Eclipsing binary: baseline brightness with sharp periodic dips.
        curve = 0.2 * np.sin(period * t + phase)
        dip_centers = np.arange(phase % np.pi, 2.0 * np.pi, np.pi / period)
        width = 0.25
        for center in dip_centers:
            curve -= 1.2 * np.exp(-((t - center) ** 2) / (2 * width ** 2))
    else:
        raise ValueError("starlight seed has exactly two classes (0 and 1)")
    return curve + _smooth_noise(length, rng)


def shapes(class_id: int, length: int, rng: np.random.Generator) -> np.ndarray:
    """Shape-contour-like series (radial profiles of lobed shapes)."""
    t = np.linspace(0.0, 2.0 * np.pi, length)
    phase = rng.uniform(0.0, 2.0 * np.pi)
    if class_id == 0:
        lobes = rng.integers(3, 5)
        profile = 1.0 + 0.35 * np.cos(lobes * t + phase)
    elif class_id == 1:
        lobes = rng.integers(7, 10)
        profile = 1.0 + 0.25 * np.cos(lobes * t + phase) + 0.15 * np.sin(2 * t + phase)
    else:
        raise ValueError("shapes seed has exactly two classes (0 and 1)")
    return profile - profile.mean() + _smooth_noise(length, rng)


def fish(class_id: int, length: int, rng: np.random.Generator) -> np.ndarray:
    """Fish-outline-like series (smooth contours with localized bumps)."""
    t = np.linspace(0.0, 1.0, length)
    base = np.sin(np.pi * t)  # body outline envelope
    jitter = rng.uniform(-0.05, 0.05)
    if class_id == 0:
        # Dorsal-fin-heavy outline: bump near the front third.
        bump_center = 0.3 + jitter
        bump = 0.8 * np.exp(-((t - bump_center) ** 2) / (2 * 0.03 ** 2))
    elif class_id == 1:
        # Tail-heavy outline: wider bump near the end plus a notch.
        bump_center = 0.8 + jitter
        bump = 0.6 * np.exp(-((t - bump_center) ** 2) / (2 * 0.06 ** 2))
        bump -= 0.4 * np.exp(-((t - 0.55 - jitter) ** 2) / (2 * 0.02 ** 2))
    else:
        raise ValueError("fish seed has exactly two classes (0 and 1)")
    series = base + bump
    return series - series.mean() + _smooth_noise(length, rng)


_GENERATORS: Dict[str, Callable[[int, int, np.random.Generator], np.ndarray]] = {
    "starlight": starlight,
    "shapes": shapes,
    "fish": fish,
}


def seed_instance(seed_name: str, class_id: int, length: int,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Generate one univariate instance from the named seed dataset.

    Parameters
    ----------
    seed_name:
        One of ``"starlight"``, ``"shapes"``, ``"fish"``.
    class_id:
        Seed class, 0 or 1.
    length:
        Series length.
    """
    if seed_name not in _GENERATORS:
        raise KeyError(f"unknown seed dataset {seed_name!r}; choose from {sorted(_GENERATORS)}")
    rng = rng or np.random.default_rng()
    return _GENERATORS[seed_name](class_id, length, rng)


def seed_background(seed_name: str, class_id: int, total_length: int,
                    instance_length: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Concatenate random seed instances until ``total_length`` is reached.

    This is the "concatenating random instances from one class" step of the
    Type 1 / Type 2 dataset construction (Section 5.1.1).
    """
    rng = rng or np.random.default_rng()
    pieces = []
    generated = 0
    while generated < total_length:
        piece = seed_instance(seed_name, class_id, instance_length, rng)
        pieces.append(piece)
        generated += instance_length
    return np.concatenate(pieces)[:total_length]
