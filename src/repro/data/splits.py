"""Train / validation / test splitting utilities.

The paper (Section 5.2) splits every dataset into 80% training and 20%
validation, class-balanced, and generates fresh test data for the synthetic
benchmarks.  These helpers implement the class-stratified splits.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .datasets import MultivariateDataset


def stratified_indices(y: np.ndarray, fraction: float,
                       rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """Split indices into two class-stratified groups of sizes ``fraction`` / rest."""
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    first, second = [], []
    for label in np.unique(y):
        label_indices = np.flatnonzero(y == label)
        label_indices = rng.permutation(label_indices)
        cut = max(1, int(round(fraction * len(label_indices))))
        cut = min(cut, len(label_indices) - 1) if len(label_indices) > 1 else cut
        first.extend(label_indices[:cut])
        second.extend(label_indices[cut:])
    return np.asarray(sorted(first)), np.asarray(sorted(second))


def train_validation_split(dataset: MultivariateDataset, train_fraction: float = 0.8,
                           random_state: Optional[int] = None
                           ) -> Tuple[MultivariateDataset, MultivariateDataset]:
    """Class-stratified split into training and validation datasets."""
    rng = np.random.default_rng(random_state)
    train_idx, val_idx = stratified_indices(dataset.y, train_fraction, rng)
    return dataset.subset(train_idx, "-train"), dataset.subset(val_idx, "-val")


def train_validation_test_split(dataset: MultivariateDataset,
                                train_fraction: float = 0.6,
                                validation_fraction: float = 0.2,
                                random_state: Optional[int] = None
                                ) -> Tuple[MultivariateDataset, MultivariateDataset, MultivariateDataset]:
    """Three-way class-stratified split."""
    if train_fraction + validation_fraction >= 1.0:
        raise ValueError("train_fraction + validation_fraction must be < 1")
    rng = np.random.default_rng(random_state)
    train_idx, rest_idx = stratified_indices(dataset.y, train_fraction, rng)
    rest = dataset.subset(rest_idx)
    relative_fraction = validation_fraction / (1.0 - train_fraction)
    val_rel, test_rel = stratified_indices(rest.y, relative_fraction, rng)
    return (
        dataset.subset(train_idx, "-train"),
        rest.subset(val_rel, "-val"),
        rest.subset(test_rel, "-test"),
    )
